"""Local RPC between real OS processes (the NT-RPC analogue, Table 2).

A server process listens on a Unix-domain socket and dispatches framed
requests to registered handlers; a client makes synchronous calls.  Every
call crosses a genuine process boundary twice — the cost the paper's
Table 2 contrasts with in-process calls (a factor of ~3000).
"""

from __future__ import annotations

import os
import socket
import tempfile
import threading
import uuid

from .wire import WireError, recv_frame, send_frame

_OK = 0
_ERR = 1


class RpcError(Exception):
    """Remote handler raised, or the transport failed."""


def _serve_connection(conn, handlers):
    try:
        while True:
            frame = recv_frame(conn)
            sep = frame.index(b"\x00")
            method = frame[:sep].decode("utf-8")
            payload = frame[sep + 1:]
            handler = handlers.get(method)
            if handler is None:
                send_frame(conn, bytes([_ERR]) +
                           f"no such method {method}".encode())
                continue
            try:
                reply = handler(payload)
            except Exception as exc:
                send_frame(conn, bytes([_ERR]) + repr(exc).encode())
                continue
            send_frame(conn, bytes([_OK]) + (reply or b""))
    except (WireError, OSError):
        pass
    finally:
        conn.close()


def serve_forever(path, handlers, ready_event=None):
    """Accept loop (runs in the server process)."""
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(16)
    if ready_event is not None:
        ready_event.set()
    try:
        while True:
            conn, _ = listener.accept()
            worker = threading.Thread(
                target=_serve_connection, args=(conn, handlers), daemon=True
            )
            worker.start()
    finally:
        listener.close()


class RpcServerProcess:
    """Forks a child process serving ``handlers`` on a fresh socket path.

    ``handlers`` maps method name -> ``fn(bytes) -> bytes`` and must be
    picklable-free: we fork, so closures are fine.
    """

    def __init__(self, handlers):
        self.path = os.path.join(
            tempfile.gettempdir(), f"repro-rpc-{uuid.uuid4().hex[:12]}.sock"
        )
        self._handlers = handlers
        self._pid = None

    def start(self):
        pid = os.fork()
        if pid == 0:
            # Child: serve until killed.
            try:
                serve_forever(self.path, self._handlers)
            finally:
                os._exit(0)
        self._pid = pid
        self._wait_for_socket()
        return self

    def _wait_for_socket(self, timeout=5.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(self.path):
                try:
                    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    probe.connect(self.path)
                    probe.close()
                    return
                except OSError:
                    pass
            time.sleep(0.01)
        raise RpcError("server socket did not appear")

    def stop(self):
        if self._pid is not None:
            try:
                os.kill(self._pid, 9)
                os.waitpid(self._pid, 0)
            except OSError:
                pass
            self._pid = None
        if os.path.exists(self.path):
            os.unlink(self.path)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


class RpcClient:
    """Synchronous client for one server socket."""

    def __init__(self, path):
        self.path = path
        self._sock = None

    def connect(self):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(self.path)
        return self

    def call(self, method, payload=b""):
        send_frame(self._sock, method.encode("utf-8") + b"\x00" + payload)
        reply = recv_frame(self._sock)
        if reply[:1] == bytes([_ERR]):
            raise RpcError(reply[1:].decode("utf-8", "replace"))
        return reply[1:]

    def close(self):
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def null_server():
    """An RPC server whose ``null`` method does nothing (Table 2 workload)."""
    return RpcServerProcess({"null": lambda payload: b"",
                             "echo": lambda payload: payload})
