"""Local RPC between real OS processes (the NT-RPC analogue, Table 2).

A server process listens on a Unix-domain socket and dispatches framed
requests to registered handlers; a client makes synchronous calls.  Every
call crosses a genuine process boundary twice — the cost the paper's
Table 2 contrasts with in-process calls (a factor of ~3000).

Beyond the Table 2 microbenchmark, this transport is what the fleet
coordinator (``repro.fleet``) speaks to remote hosts, so it carries the
same hardening the cross-process LRMI client grew in PR 6:

* **typed errors** — every failure surfaces as an :class:`RpcError`
  subclass: :class:`RpcTransportError` (dial/framing/connection loss),
  :class:`RpcDeadlineError` (whole-call deadline expiry),
  :class:`RpcMethodNotFound` and :class:`RpcHandlerError` (the remote
  handler raised).  Nothing is silently swallowed: the server counts and
  reports transport failures instead of ``pass``-ing them.
* **per-call deadlines** — ``call_deadline=`` (or a per-call
  ``deadline=``) bounds the whole round trip; expiry raises
  :class:`RpcDeadlineError`, never a hang.
* **checkout health + bounded retry** — the client re-validates its
  pooled socket before each call (EOF or unexpected bytes on an idle
  strict request/reply connection mean the peer died) and, when
  configured, retries transport failures with exponential backoff —
  the same machinery :class:`repro.ipc.lrmi.DomainClient` uses to
  bridge host respawns.
* **heartbeat liveness** — every server answers :data:`PING_METHOD`
  (``__ping__``) from the serve loop itself, so a ping proves the
  dispatch path is alive, not merely that the process holds the socket.
* **graceful stop** — :meth:`RpcServer.stop` closes the listener and
  every live connection, joins the serving threads, and unlinks the
  socket path (binding also unlinks a stale path left by a crashed
  predecessor, mirroring ``DomainHostProcess.start``).

Fault injection: the chaos harness (``repro.testing.chaos``) installs
``_chaos`` here to model network **partitions** between named endpoints
(both directions refused at the calling edge) and **heartbeat loss**
(pings dropped while data calls still flow); see
``ChaosConfig.partition`` / ``JK_CHAOS_PARTITION``.
"""

from __future__ import annotations

import os
import select
import socket
import tempfile
import threading
import time
import uuid

from .wire import MAX_FRAME, WireError, recv_exact, recv_frame, send_frame

_OK = 0
_ERR = 1

#: Error kinds carried inside an ``_ERR`` payload as ``kind\x00detail``.
_KIND_APP = b"app"
_KIND_UNKNOWN = b"unknown"

#: Reserved liveness method every :class:`RpcServer` answers itself.
PING_METHOD = "__ping__"

#: Default per-socket-operation timeout: generous enough for a loaded
#: host, small enough that a wedged peer cannot hang its callers.
CALL_TIMEOUT = 30.0

#: Fault-injection hook (``repro.testing.chaos``); None in production.
_chaos = None


class RpcError(Exception):
    """Remote handler raised, or the transport failed (base class)."""


class RpcTransportError(RpcError):
    """The transport failed: dial refused, framing violated, or the
    connection died mid-call.  Retryable when the caller opted in."""


class RpcDeadlineError(RpcTransportError):
    """The whole-call deadline expired.  Never retried internally: the
    deadline bounds the *total* time the caller is willing to wait."""


class RpcMethodNotFound(RpcError):
    """The server has no handler registered under the requested name."""


class RpcHandlerError(RpcError):
    """The remote handler raised; the message carries its ``repr``."""


def _error_frame(kind, detail):
    return bytes([_ERR]) + kind + b"\x00" + detail.encode("utf-8", "replace")


def _recv_request(conn):
    """Receive one framed request, or None on a clean EOF *between*
    frames — a normal disconnect, unlike an EOF mid-frame (WireError)."""
    header = b""
    while len(header) < 4:
        chunk = conn.recv(4 - len(header))
        if not chunk:
            if header:
                raise WireError("connection closed mid-frame")
            return None
        header += chunk
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME:
        raise WireError(f"frame too large: {length}")
    return recv_exact(conn, length) if length else b""


def _serve_connection(conn, handlers, server=None):
    """Dispatch loop for one accepted connection.

    A transport failure is surfaced to ``server`` (counted and passed to
    its ``on_error`` callback as a typed :class:`RpcTransportError`),
    never silently swallowed; a clean disconnect is not an error.
    """
    try:
        while True:
            frame = _recv_request(conn)
            if frame is None:
                break  # clean disconnect between frames
            sep = frame.index(b"\x00")
            method = frame[:sep].decode("utf-8")
            payload = frame[sep + 1:]
            handler = handlers.get(method)
            if handler is None:
                if method == PING_METHOD:
                    # Liveness built into the serve loop itself: a pong
                    # proves dispatch works, not just that the process
                    # holds the socket open.
                    send_frame(conn, bytes([_OK]) + b"pong")
                    continue
                send_frame(conn, _error_frame(
                    _KIND_UNKNOWN, f"no such method {method}"))
                continue
            try:
                reply = handler(payload)
            except Exception as exc:
                send_frame(conn, _error_frame(_KIND_APP, repr(exc)))
                continue
            send_frame(conn, bytes([_OK]) + (reply or b""))
    except (WireError, OSError) as exc:
        if server is not None and not server.stopping:
            server._note_transport_error(RpcTransportError(
                f"connection failed mid-dispatch: {exc}"))
    finally:
        conn.close()
        if server is not None:
            server._forget_connection(conn)


class RpcServer:
    """A supervised ntrpc server: bind, serve, stop — all explicit.

    ``handlers`` maps method name -> ``fn(bytes) -> bytes``.  Transport
    failures on serving connections are collected in
    :attr:`transport_errors` (bounded) and reported through ``on_error``
    when given; :data:`PING_METHOD` is always answered.
    """

    MAX_RECORDED_ERRORS = 64

    def __init__(self, path=None, handlers=None, *, on_error=None):
        self.path = path or os.path.join(
            tempfile.gettempdir(), f"repro-rpc-{uuid.uuid4().hex[:12]}.sock"
        )
        self.handlers = dict(handlers or {})
        self.on_error = on_error
        self.stopping = False
        self.transport_errors = []
        self._listener = None
        self._lock = threading.Lock()
        self._conns = set()
        self._threads = []

    def bind(self):
        if os.path.exists(self.path):
            # A crashed predecessor leaves its socket file behind and
            # would make this bind fail (mirror DomainHostProcess.start).
            try:
                os.unlink(self.path)
            except OSError:
                pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(self.path)
        except OSError as exc:
            listener.close()
            raise RpcTransportError(
                f"cannot bind {self.path}: {exc}") from None
        listener.listen(16)
        self._listener = listener
        return self

    def serve(self, ready_event=None):
        """Accept loop; returns after :meth:`stop` (or listener death)."""
        if self._listener is None:
            self.bind()
        if ready_event is not None:
            ready_event.set()
        try:
            while not self.stopping:
                try:
                    conn, _ = self._listener.accept()
                except OSError:
                    break  # stop() closed the listener under us
                with self._lock:
                    if self.stopping:
                        conn.close()
                        break
                    self._conns.add(conn)
                worker = threading.Thread(
                    target=_serve_connection,
                    args=(conn, self.handlers, self), daemon=True,
                )
                self._threads.append(worker)
                worker.start()
        finally:
            self._cleanup()

    def stop(self, timeout=2.0):
        """Graceful stop: close the listener and every live connection,
        join the serving threads, unlink the socket path."""
        self.stopping = True
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for worker in self._threads:
            worker.join(timeout)
        self._cleanup()

    def _cleanup(self):
        # Unlink on every exit path: serve_forever historically leaked
        # the bound path, breaking the next bind on the same address.
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def _forget_connection(self, conn):
        with self._lock:
            self._conns.discard(conn)

    def _note_transport_error(self, error):
        with self._lock:
            if len(self.transport_errors) < self.MAX_RECORDED_ERRORS:
                self.transport_errors.append(error)
        if self.on_error is not None:
            try:
                self.on_error(error)
            except Exception:
                pass  # a broken observer must not take the server down


def serve_forever(path, handlers, ready_event=None):
    """Accept loop (runs in the server process) until the listener dies.

    Thin wrapper over :class:`RpcServer` kept for the Table 2 fixtures:
    stale socket paths are unlinked on bind and the path is removed on
    exit instead of leaking.
    """
    RpcServer(path, handlers).serve(ready_event)


class RpcServerProcess:
    """Forks a child process serving ``handlers`` on a fresh socket path.

    ``handlers`` maps method name -> ``fn(bytes) -> bytes`` and must be
    picklable-free: we fork, so closures are fine.
    """

    def __init__(self, handlers):
        self.path = os.path.join(
            tempfile.gettempdir(), f"repro-rpc-{uuid.uuid4().hex[:12]}.sock"
        )
        self._handlers = handlers
        self._pid = None

    @property
    def pid(self):
        return self._pid

    def start(self):
        pid = os.fork()
        if pid == 0:
            # Child: serve until killed.
            try:
                serve_forever(self.path, self._handlers)
            finally:
                os._exit(0)
        self._pid = pid
        self._wait_for_socket()
        return self

    def _wait_for_socket(self, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive():
                raise RpcTransportError("server died during startup")
            if os.path.exists(self.path):
                try:
                    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    probe.connect(self.path)
                    probe.close()
                    return
                except OSError:
                    pass
            time.sleep(0.01)
        raise RpcTransportError("server socket did not appear")

    def alive(self):
        if self._pid is None:
            return False
        try:
            pid, _status = os.waitpid(self._pid, os.WNOHANG)
        except ChildProcessError:
            return False
        if pid == self._pid:
            self._pid = None
            return False
        return True

    def stop(self):
        if self._pid is not None:
            try:
                os.kill(self._pid, 9)
                os.waitpid(self._pid, 0)
            except OSError:
                pass
            self._pid = None
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def kill(self):
        """SIGKILL without unlinking the socket path — a *crash*, not a
        clean stop: the stale path is exactly what a restarted server
        must cope with (see :meth:`RpcServer.bind`)."""
        if self._pid is not None:
            try:
                os.kill(self._pid, 9)
                os.waitpid(self._pid, 0)
            except OSError:
                pass
            self._pid = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


class RpcClient:
    """Synchronous client for one server socket.

    Robustness knobs (all off by default, preserving the Table 2 path):

    * ``call_deadline`` — seconds bounding each whole round trip;
      expiry raises :class:`RpcDeadlineError`.
    * ``retries``/``backoff`` — bounded exponential-backoff retry after
      a transport failure.  ntrpc is strict request/reply, so a retried
      request may execute twice on the server — enable only for
      idempotent method sets (the fleet control verbs are).
    * ``endpoint``/``remote_endpoint`` — names for the chaos harness's
      partition model; unnamed clients are never partitioned.
    """

    def __init__(self, path, *, timeout=CALL_TIMEOUT, call_deadline=None,
                 retries=0, backoff=0.05, endpoint=None,
                 remote_endpoint=None):
        if call_deadline is not None and call_deadline <= 0:
            raise ValueError("call_deadline must be positive or None")
        self.path = path
        self.timeout = timeout
        self.call_deadline = call_deadline
        self.retries = retries
        self.backoff = backoff
        self.endpoint = endpoint
        self.remote_endpoint = remote_endpoint
        self._sock = None
        self._lock = threading.Lock()

    def connect(self):
        self._sock = self._dial()
        return self

    def _dial(self):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.path)
        except OSError as exc:
            sock.close()
            raise RpcTransportError(
                f"cannot reach rpc server at {self.path}: {exc}"
            ) from None
        return sock

    def _checkout(self):
        """Validate the pooled socket before use (DomainClient-style).

        ntrpc is strict request/reply: an idle connection must have
        nothing to read.  Readable means the peer died (EOF) or broke
        protocol — either way the socket is dropped and redialed.
        Returns ``(sock, reused)``; ``reused`` marks a pooled socket,
        whose validation is only a snapshot (see :meth:`_once`).
        """
        sock = self._sock
        if sock is None:
            sock = self._sock = self._dial()
            return sock, False
        try:
            readable, _, _ = select.select([sock], [], [], 0)
            if readable:
                self._drop()
                return self._checkout()
        except (OSError, ValueError):
            self._drop()
            return self._checkout()
        return sock, True

    def _drop(self):
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _check_chaos(self, method):
        if _chaos is None:
            return
        if self.endpoint is not None and self.remote_endpoint is not None:
            if _chaos.partitioned(self.endpoint, self.remote_endpoint):
                raise RpcTransportError(
                    f"chaos: partition between {self.endpoint} and "
                    f"{self.remote_endpoint}"
                )
            if (method == PING_METHOD
                    and _chaos.heartbeat_lost(self.endpoint,
                                              self.remote_endpoint)):
                raise RpcDeadlineError(
                    f"chaos: heartbeat lost between {self.endpoint} and "
                    f"{self.remote_endpoint}"
                )

    @staticmethod
    def _remaining(deadline_at):
        if deadline_at is None:
            return None
        remaining = deadline_at - time.monotonic()
        if remaining <= 0:
            raise RpcDeadlineError("call deadline exceeded")
        return remaining

    def _apply_deadline(self, sock, deadline_at):
        remaining = self._remaining(deadline_at)
        if remaining is None:
            sock.settimeout(self.timeout)
        elif self.timeout is None or remaining < self.timeout:
            sock.settimeout(remaining)
        else:
            sock.settimeout(self.timeout)

    def _once(self, method, payload, deadline_at):
        self._check_chaos(method)
        sock, reused = self._checkout()
        try:
            return self._exchange(sock, method, payload, deadline_at)
        except RpcTransportError:
            if not reused:
                raise
            # The select() probe in _checkout is only a snapshot: a
            # peer that died just before this call can pass it and
            # reset the socket mid-exchange.  Like an HTTP keep-alive
            # client, a request that failed on a REUSED connection is
            # retried once on a fresh dial — independent of the
            # ``retries`` knob, still inside the deadline.
            self._remaining(deadline_at)
            sock, _ = self._checkout()  # _drop() ran: dials fresh
            return self._exchange(sock, method, payload, deadline_at)

    def _exchange(self, sock, method, payload, deadline_at):
        try:
            self._apply_deadline(sock, deadline_at)
            send_frame(sock, method.encode("utf-8") + b"\x00" + payload)
            self._apply_deadline(sock, deadline_at)
            reply = recv_frame(sock)
        except socket.timeout:
            self._drop()
            raise RpcDeadlineError(
                f"call {method!r} exceeded its deadline") from None
        except RpcDeadlineError:
            self._drop()
            raise
        except (OSError, WireError) as exc:
            self._drop()
            raise RpcTransportError(
                f"transport failed calling {method!r}: {exc}") from None
        return self._decode(reply)

    @staticmethod
    def _decode(reply):
        if reply[:1] == bytes([_OK]):
            return reply[1:]
        kind, _, detail = reply[1:].partition(b"\x00")
        text = detail.decode("utf-8", "replace")
        if kind == _KIND_UNKNOWN:
            raise RpcMethodNotFound(text)
        return RpcClient._raise_handler_error(text)

    @staticmethod
    def _raise_handler_error(text):
        raise RpcHandlerError(text)

    def call(self, method, payload=b"", *, deadline=None):
        """One round trip; the reply body on success, typed errors else.

        ``deadline`` (seconds) overrides the client's ``call_deadline``
        for this call.  Transport failures retry up to ``retries`` times
        with exponential backoff — each attempt redials, so retries
        bridge a server restart — but never past the deadline, and a
        deadline expiry itself is terminal.
        """
        limit = deadline if deadline is not None else self.call_deadline
        deadline_at = (time.monotonic() + limit
                       if limit is not None else None)
        delay = self.backoff
        with self._lock:
            for attempt in range(1 + self.retries):
                try:
                    return self._once(method, payload, deadline_at)
                except RpcDeadlineError:
                    raise
                except RpcTransportError:
                    if attempt >= self.retries:
                        raise
                    if deadline_at is not None:
                        remaining = deadline_at - time.monotonic()
                        if remaining <= 0:
                            raise
                        time.sleep(min(delay, remaining, 1.0))
                    else:
                        time.sleep(min(delay, 1.0))
                    delay *= 2

    def ping(self, *, deadline=None):
        """Heartbeat round trip; True when the serve loop answered."""
        return self.call(PING_METHOD, deadline=deadline) == b"pong"

    def close(self):
        self._drop()

    def __enter__(self):
        return self.connect()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def null_server():
    """An RPC server whose ``null`` method does nothing (Table 2 workload)."""
    return RpcServerProcess({"null": lambda payload: b"",
                             "echo": lambda payload: payload})
