"""Cross-process LRMI: capabilities whose targets live in another process.

The in-process J-Kernel passes capabilities by reference and copies
everything else (paper §3.1); this module extends exactly that calling
convention across a real OS process boundary — the Remote-Playground
deployment style (Malkhi & Reiter): untrusted code runs in a separate
*domain host* process, and the capability the parent holds is a generated
proxy that marshals each invocation through the compiled serializer
(``repro.core.serial``) over a UNIX-socket wire (``repro.ipc.wire``).

Architecture
------------

* :class:`DomainHostProcess` — forks a child that runs ``setup()`` (which
  builds domains/servlets and returns ``{name: Capability}`` bindings),
  then serves LRMI traffic on a fresh UNIX socket.  Each accepted
  connection gets a serving thread; dispatch goes *through the real
  in-process capability stub*, so every in-process guarantee (segment
  switch, argument copying, revocation and termination checks,
  accounting) holds unchanged inside the host.
* :class:`DomainClient` — the parent-side peer: a small pool of
  connections, ``lookup(name)`` returning remote-capability proxies, and
  kernel control verbs (``revoke``/``terminate``/``stats``/``shutdown``).
* Proxies — per-method generated classes (mirroring the in-process stub
  generator): each method marshals the call and re-raises the callee's
  exception in the caller's process.  Capabilities inside
  arguments/results ride the serializer's capability side table: a real
  capability is *exported* (a descriptor crosses, a proxy materializes on
  the other side), and a proxy sent back to its owning side collapses to
  the original capability object — so callbacks and the
  revoke-your-own-argument idiom work across the boundary.
* Revocation broadcast — the host kernel owns the export table and a
  broadcast channel over every live connection.  After each dispatch
  (and from a periodic sweeper), exports whose capability has been
  revoked are dropped and ``OP_REVOKED`` frames fan out, flipping the
  remote proxies to fail-fast local :class:`RevokedException`; a client
  that has not yet processed the broadcast still fails correctly,
  because the host-side stub rejects the call at dispatch.

Wire format (the compiled cross-process wire)
---------------------------------------------

Every frame is ``opcode(1) + call_id(4) + payload``; the payload's first
byte names its marshal format:

* ``MF_INLINE``   — one serializer stream, no capabilities crossed.
* ``MF_TABLED``   — ``dumps(descriptors)`` then the value stream; the
  reader resolves the descriptors into the capability side table before
  reading the value.  Descriptors are the PR-5 shapes unchanged:
  ``("back", export_id)`` and ``("export", export_id, label, methods)``.
* ``MF_CALL``     — the compiled fast path: ``export_id(4) +
  method_index(1)`` then the positional-args stream.  Emitted by
  generated proxy methods for keyword-free calls; the host dispatches
  through a method table *bound at export time* (the PR-2
  compile-at-registration strategy), so no method-name string crosses
  and no ``(export_id, method, args, kwargs)`` envelope is built.
* ``MF_CALL_TABLED`` — the compiled call with capability arguments:
  call header, then descriptors, then the args stream.
* ``MF_SHM``      — a bulk grant: ``(generation, offset, length)``
  naming bytes in the per-connection shared-memory ring
  (``repro.ipc.shm``); the granted bytes are themselves a payload in
  one of the formats above.  Payloads at or over :data:`SHM_THRESHOLD`
  ride the ring; the socket frame stays tiny.

The old nested ``dumps((payload, descriptors))`` envelope — a full
second serializer pass over the already-serialized payload bytes — is
gone on every path.  Outbound frames are composed into one reusable
per-connection buffer (``ObjectWriter.dumps_into``) and leave through
scatter-gather ``sendmsg``; inbound frames are sliced zero-copy out of a
buffered receive.  Set ``JK_LRMI_WIRE=generic`` (or flip
:data:`COMPILED_WIRE`) to force every call through the generic tagged
path — the differential matrix runs over both.

A dead host surfaces as :class:`DomainUnavailableException` (a
``RemoteException`` subclass the web layer maps to a retryable 503),
never as a hang: every *client-side* wire operation runs under a socket
timeout, and host-side broadcasts are non-blocking (a peer that stops
reading is closed, not waited on).  Host serving threads block reading
idle connections by design — they are daemons of a disposable process.
"""

from __future__ import annotations

import itertools
import keyword as _keyword
import os
import select
import socket
import struct
import tempfile
import threading
import time
import uuid

from repro.core import Capability, register_capref_type
from repro.core import convention as _convention
from repro.core import policy as _policy
from repro.core import segments as _segments
from repro.core.capability import _raise_revoked, _raise_terminated
from repro.core.errors import (
    DomainUnavailableException,
    JKernelError,
    NotSerializableError,
    RemoteException,
    RevokedException,
)
from repro.core.regions import (
    AttachmentCache,
    SealedRegion,
    purge_pid as _purge_regions,
)
from repro.core.remote import is_remote_interface
from repro.core.serial import ObjectReader, ObjectWriter, dumps, loads

from .shm import GRANT, BulkRing, RingError
from .wire import (
    MAX_FRAME,
    WireError,
    decode_fds,
    fd_ancillary_space,
    send_frame,
    send_frame_parts,
    send_prefixed,
)

OP_CALL = 1
OP_RESULT = 2
OP_ERROR = 3
OP_REVOKED = 4
OP_CONTROL = 5
OP_BYE = 6
OP_RING = 7  # bulk-ring announcement: dumps((name, size, generation))

# Marshal formats: the first byte of every CALL/RESULT/ERROR/CONTROL
# payload (OP_REVOKED broadcasts stay a bare dumps(list) — they carry no
# capabilities and predate the format byte).
MF_INLINE = 0
MF_TABLED = 1
MF_CALL = 2
MF_CALL_TABLED = 3
MF_SHM = 4

_CALL_HDR = struct.Struct(">IB")  # export_id, method_index

# Whole-prefix packers for the hot composers: one struct call emits the
# frame header and marshal-format byte (and, for calls, the call header)
# back to back.
_VALUE_PREFIX = struct.Struct(">BIB")    # opcode, call_id, fmt
_CALL_PREFIX = struct.Struct(">BIBIB")   # opcode, call_id, fmt, export, index

# Precomputed serializer streams for the two null-call constants: an
# empty argument tuple and a None result.  A no-arg MF_CALL frame and a
# None MF_INLINE reply are fully constant except the call id, so the hot
# composers splice these in (and the parsers compare against them)
# without touching the serializer at all.  Byte-identical to
# ``ObjectWriter.write(())`` / ``write(None)`` minus the memo entry the
# empty tuple would earn — nothing else in a call frame can back-
# reference it, so the entry was dead weight.
_EMPTY_ARGS_STREAM = b"\x0a\x00\x00\x00\x00"   # _T_TUPLE, count=0
_NONE_STREAM = b"\x00"                          # _T_NULL
_REPLY_I64 = struct.Struct(">q")                # _T_INT64 payload
_I64_BOUND = 2 ** 63

# Whole-frame packers (LENGTH PREFIX INCLUDED) for the constant-shaped
# hot frames; paired with ``wire.send_prefixed``, each is one struct
# call and one send.
_NULL_CALL_FRAME = struct.Struct(">IBIBIB5s")  # 16, op, id, fmt, exp, m, args
_NONE_REPLY_FRAME = struct.Struct(">IBIBB")    # 7, op, id, fmt, T_NULL
_INT_REPLY_FRAME = struct.Struct(">IBIBBq")    # 15, op, id, fmt, T_INT64, v

# One-shot header decode for buffered receive: length, opcode, call id.
_HDR9 = struct.Struct(">IBI")

#: A pooled connection released within this many seconds skips the
#: checkout health probe: the probe is a freshness snapshot anyway (see
#: the TOCTOU note on DomainClient), and probing a socket that was alive
#: microseconds ago spends a syscall to learn nothing.
PROBE_FRESH_S = 0.005

#: Payloads at/over this many bytes ride the shared-memory bulk ring
#: instead of the socket (read at send time, so tests can retune it).
#: The crossover is empirical: below it, one scatter-gather ``sendmsg``
#: ships the frame parts zero-copy and beats the ring's
#: assemble-into-shared-memory memcpy; above it, the ring wins (2.3x at
#: 256 KiB) because the socket path starts paying kernel buffer copies
#: and fragmented sends.
SHM_THRESHOLD = int(os.environ.get("JK_LRMI_SHM_THRESHOLD", "16384"))

#: Size of each per-connection bulk ring (one per send direction, lazily
#: created on the first over-threshold payload).
RING_SIZE = int(os.environ.get("JK_LRMI_RING_SIZE", str(1 << 20)))

#: Gate for the compiled MF_CALL fast path.  ``JK_LRMI_WIRE=generic``
#: (or monkeypatching this to False before a host forks) sends every
#: call through the generic tagged envelope — the differential suite
#: runs its whole matrix both ways.
COMPILED_WIRE = os.environ.get("JK_LRMI_WIRE", "compiled") != "generic"

#: Default per-operation wire timeout: generous enough for a slow
#: servlet, small enough that a wedged host cannot hang its callers.
CALL_TIMEOUT = 30.0

#: How often the host sweeps its export table for revoked capabilities.
SWEEP_INTERVAL = 0.02

#: Control verbs safe to retry after a transport failure: none of them
#: mutate host state in a way a duplicate delivery could corrupt.
IDEMPOTENT_CONTROL = frozenset({"lookup", "stats", "ping"})

#: Fault-injection hook (``repro.testing.chaos``); None in production.
_chaos = None


class ProtocolError(JKernelError):
    """Malformed or out-of-order cross-process LRMI frame."""


# Registered so a host-side protocol failure re-raises as itself in the
# caller's process instead of decaying to the nearest registered base.
from repro.core.serial import register_class as _register_class  # noqa: E402

_register_class(ProtocolError, name="jkernel.ProtocolError")


#: Per-dispatch context on host serving threads: the SCM_RIGHTS file
#: descriptors that arrived with the call frame, claimable by the callee
#: (reply streaming).  Unclaimed descriptors are closed after dispatch.
_dispatch_ctx = threading.local()


def claim_fd():
    """Take ownership of a file descriptor granted to the current
    dispatch (sent with the call via SCM_RIGHTS).  The caller owns the
    returned fd and must close it; fds never claimed are closed by the
    dispatch machinery."""
    fds = getattr(_dispatch_ctx, "fds", None)
    if not fds:
        raise ProtocolError("no file descriptor granted to this dispatch")
    return fds.pop(0)


def exported_methods(capability):
    """The remote-method names a capability exposes across the wire.

    For an in-process stub these are the methods of its remote
    interfaces; for a proxy, the method tuple it was built from.  The
    tuple's ORDER is the compiled wire's method numbering: proxy method
    ``i`` dispatches to the host-side binding at index ``i`` — both
    sides derive it from this one function, so they cannot disagree.
    """
    if isinstance(capability, RemoteCapability):
        return capability._methods
    names = set()
    for base in type(capability).__mro__:
        if is_remote_interface(base):
            for name, member in vars(base).items():
                if not name.startswith("_") and callable(member):
                    names.add(name)
    return tuple(sorted(names))


def _host_binding(capability, name):
    """Copy-free host-side dispatch binding for one exported method.

    Deserializing the call frame already performed the protection-domain
    copy — the arguments the host holds are private reconstructions no
    other domain references — so routing the dispatch through the
    in-process stub would deep-copy every payload a SECOND time.  This
    binding keeps the stub's crossing semantics exactly (termination
    check, revocation check, call accounting, segment switch) but
    invokes the target directly on the already-private arguments.
    Exceptions propagate raw: marshaling the reply is the copy, and
    unserializable ones degrade to RemoteException at the reply layer.
    """
    _enter = _segments._enter
    _exit = _segments._exit

    def invoke(*args):
        domain = capability._domain
        if domain.terminated:
            _raise_terminated(capability, domain)
        target = capability._target
        if target is None:
            _raise_revoked(capability)
        domain._lrmi_calls_in += 1
        stack, segment = _enter(domain)
        try:
            return getattr(target, name)(*args)
        finally:
            _exit(stack, segment)

    return invoke


class ExportTable:
    """Kernel-owned table of capabilities reachable from other processes."""

    def __init__(self):
        self._lock = threading.Lock()
        self._by_id = {}
        self._by_identity = {}
        self._dispatch = {}
        self._next = itertools.count(1).__next__

    def export(self, capability):
        """Register (or re-find) a capability; returns its export id.

        Registration is where the wire gets compiled: the method tuple
        is bound ONCE into an index-addressed dispatch table, so an
        MF_CALL frame goes straight from ``(export_id, method_index)``
        to a bound method — no getattr, no name decode.  The bound
        methods are the in-process stub's generated methods, which check
        revocation/termination on every call, so binding early never
        bypasses a later revoke (and a swept export disappears from this
        table entirely).
        """
        with self._lock:
            found = self._by_identity.get(id(capability))
            if found is not None:
                return found
            export_id = self._next()
            self._by_id[export_id] = capability
            self._by_identity[id(capability)] = export_id
            try:
                names = exported_methods(capability)
                if isinstance(capability, Capability):
                    bound = tuple(
                        _host_binding(capability, name) for name in names
                    )
                else:
                    bound = tuple(
                        getattr(capability, name, None) for name in names
                    )
            except Exception:
                bound = ()
            self._dispatch[export_id] = bound
            return export_id

    def get(self, export_id):
        return self._by_id.get(export_id)

    def entry(self, export_id):
        """``(capability, bound_methods)`` for a live export, else None."""
        capability = self._by_id.get(export_id)
        if capability is None:
            return None
        return capability, self._dispatch.get(export_id, ())

    def sweep(self):
        """Drop exports whose capability has been revoked; returns the
        dropped ids (the kernel broadcasts them)."""
        dropped = []
        with self._lock:
            for export_id, capability in list(self._by_id.items()):
                if getattr(capability, "revoked", False):
                    del self._by_id[export_id]
                    self._by_identity.pop(id(capability), None)
                    self._dispatch.pop(export_id, None)
                    dropped.append(export_id)
        return dropped

    def __len__(self):
        with self._lock:
            return len(self._by_id)


class RemoteCapability:
    """Base class of generated cross-process capability proxies."""

    _methods = ()

    def __init__(self, peer, export_id, label, methods):
        self._peer = peer
        self._export_id = export_id
        self._label = label
        self._methods = tuple(methods)
        self._revoked = False

    @property
    def revoked(self):
        return self._revoked

    @property
    def label(self):
        return self._label

    def revoke(self):
        """Ask the owning kernel to revoke the underlying capability.

        The host revokes the real stub, sweeps, and broadcasts; the
        local flag flips immediately so this process fails fast even
        before the broadcast round-trips.
        """
        self._revoked = True
        try:
            self._peer.control("revoke", self._export_id)
        except DomainUnavailableException:
            pass  # a dead host has revoked everything de facto

    def _invoke(self, method, args, kwargs):
        if self._revoked:
            raise RevokedException(
                f"{self._label}: capability revoked (remote)"
            )
        return self._peer.call(self._export_id, method, args, kwargs)

    def __repr__(self):
        state = "revoked" if self._revoked else "live"
        return f"<RemoteCapability {self._label} #{self._export_id} ({state})>"


_proxy_classes = {}

# Compiled per-method proxy body: keyword-free calls skip the
# (export_id, method, args, kwargs) envelope and go out as one flat
# MF_CALL frame addressed by method index.  Keyword calls, revoked
# proxies and policy-restricted callers fall back to the generic path
# (which raises RevokedException locally for revoked proxies, and
# carries the compressed access-control context in the envelope for
# restricted callers — the constant MF_CALL frame has no room for it).
_FAST_PROXY_TEMPLATE = """\
def {name}(self, *args, **kwargs):
    if kwargs or self._revoked or _policy_restricted():
        return self._invoke({name!r}, args, kwargs)
    return self._peer.call_fast(self._export_id, {index}, {name!r}, args)
"""

_PROXY_GLOBALS = {"_policy_restricted": _policy.restricted}


def _proxy_class(methods):
    """Generated proxy class for one remote-method tuple (cached)."""
    key = tuple(methods)
    found = _proxy_classes.get(key)
    if found is not None:
        return found

    body = {}
    for index, name in enumerate(key):
        if (index < 256 and name.isidentifier()
                and not _keyword.iskeyword(name)
                and not name.startswith("_")):
            namespace = {}
            exec(_FAST_PROXY_TEMPLATE.format(name=name, index=index),
                 _PROXY_GLOBALS, namespace)
            body[name] = namespace[name]
        else:
            # Exotic name or beyond the 1-byte index space: generic path.
            def method(self, *args, _jk_name=name, **kwargs):
                return self._invoke(_jk_name, args, kwargs)
            method.__name__ = name
            body[name] = method
    cls = type("RemoteCapabilityProxy", (RemoteCapability,), body)
    # Proxies cross in-process domain boundaries by reference (they ARE
    # the capability, as far as this process is concerned) and ride the
    # serializer's capability side table like real stubs.
    _convention.register_reference_type(cls)
    register_capref_type(cls)
    _proxy_classes[key] = cls
    return cls


# -- marshalling --------------------------------------------------------------
#
# Capability descriptors (the side table's wire shape):
#
#   ("back", export_id)                    -- the RECEIVER's own export
#   ("export", export_id, label, methods)  -- a fresh export of the sender
#   ("region", name, gen, offset, length)  -- a sealed shared-memory GRANT
#
# A SealedRegion rides the same side table capabilities do, but its
# descriptor is a *grant*, not an export: nothing is recorded in the
# export table — the shared segment's own header carries the revocation
# state, and the serving loop revokes per-call views when the call
# returns (see _serve_call).

def _call_envelope(export_id, method, args, kwargs):
    """The generic call envelope, with the caller's compressed
    access-control context appended as a fifth element when (and only
    when) something on the chain is restricted — unrestricted callers
    keep the 4-tuple, byte-identical to the pre-policy wire."""
    context = _policy.exported_wire_context()
    if context is None:
        return (export_id, method, args, kwargs)
    return (export_id, method, args, kwargs, context)


def _describe(peer, capability):
    if type(capability) is SealedRegion:
        return capability.grant_descriptor()
    if isinstance(capability, RemoteCapability):
        if capability._peer is not peer and capability._peer is not None:
            raise NotSerializableError(
                "cannot forward a remote capability to a third process"
            )
        return ("back", capability._export_id)
    export_id = peer.exports.export(capability)
    label = getattr(capability, "label", None) or type(capability).__name__
    return ("export", export_id, str(label), exported_methods(capability))


def _resolve(peer, descriptor):
    kind = descriptor[0]
    if kind == "back":
        capability = peer.exports.get(descriptor[1])
        if capability is None:
            raise RevokedException(
                f"export #{descriptor[1]} is gone (revoked or swept)"
            )
        return capability
    if kind == "export":
        _, export_id, label, methods = descriptor
        return peer.proxy_for(export_id, label, methods)
    if kind == "region":
        return peer.attach_region(descriptor)
    raise ProtocolError(f"unknown capability descriptor {descriptor!r}")


def marshal(peer, value):
    """One flat marshal payload (format byte + stream(s)) — the
    standalone entry point; connections compose the same bytes straight
    into their frame buffers."""
    table = []
    stream = dumps(value, capability_table=table)
    if not table:
        return bytes((MF_INLINE,)) + stream
    descriptors = tuple(_describe(peer, capability) for capability in table)
    return bytes((MF_TABLED,)) + dumps(descriptors) + stream


def _read_tabled(peer, view):
    """Parse ``dumps(descriptors) ++ value stream`` from one buffer."""
    reader = ObjectReader(view)
    descriptors = reader.read()
    reader.capability_table = [
        _resolve(peer, descriptor) for descriptor in descriptors
    ]
    value = reader.read()
    if reader._offset != len(reader._data):
        raise ProtocolError("trailing bytes after tabled value")
    return value


def unmarshal(peer, data):
    view = data if isinstance(data, memoryview) else memoryview(data)
    if len(view) == 0:
        raise ProtocolError("empty marshal payload")
    fmt = view[0]
    if fmt == MF_INLINE:
        return loads(view[1:])
    if fmt == MF_TABLED:
        return _read_tabled(peer, view[1:])
    raise ProtocolError(f"unexpected marshal format {fmt}")


class _Peer:
    """State shared by one side of the wire: the export table and the
    proxy cache (stable identity per export id)."""

    def __init__(self, exports=None):
        self.exports = exports if exports is not None else ExportTable()
        self._proxies = {}
        self._proxy_lock = threading.Lock()
        # Sealed-region attachment cache, created on the first inbound
        # grant; and the count of ring-close failures swallowed on this
        # peer's connections (a leaked view pinning a mapping — surfaced
        # in stats instead of silently passed).
        self._regions = None
        self.ring_close_failures = 0

    def attach_region(self, descriptor):
        """Resolve a ``("region", ...)`` grant into a view region,
        recording it in the active dispatch's grant segment (if any) so
        the kernel can revoke it when the call returns."""
        cache = self._regions
        if cache is None:
            cache = self._regions = AttachmentCache()
        region = cache.resolve(descriptor)
        grants = getattr(_dispatch_ctx, "region_grants", None)
        if grants is not None:
            grants.append(region)
        return region

    def close_regions(self):
        """Drop the attachment cache (peer teardown); returns the count
        of close failures (for connection stats)."""
        cache, self._regions = self._regions, None
        if cache is None:
            return 0
        return cache.close()

    def note_ring_close_failures(self, count):
        if count:
            self.ring_close_failures += count

    def proxy_for(self, export_id, label, methods):
        with self._proxy_lock:
            proxy = self._proxies.get(export_id)
            if proxy is None:
                proxy = _proxy_class(methods)(self, export_id, label, methods)
                self._proxies[export_id] = proxy
            return proxy

    def mark_revoked(self, export_ids):
        with self._proxy_lock:
            for export_id in export_ids:
                proxy = self._proxies.get(export_id)
                if proxy is not None:
                    proxy._revoked = True

    # Overridden by the concrete peers.
    def call(self, export_id, method, args, kwargs):
        raise NotImplementedError

    def call_fast(self, export_id, method_index, method, args):
        # Peers without a compiled transport route through the generic
        # path; DomainClient/_ConnectionPeer override with MF_CALL.
        return self.call(export_id, method, args, {})

    def control(self, verb, *args):
        raise NotImplementedError


class _Connection:
    """One framed socket shared by both protocol directions.

    Strictly nested use: while a caller awaits its reply it dispatches
    any incoming ``OP_CALL`` on its own thread (cross-process re-entry,
    the A→B→A LRMI idiom), and applies revocation broadcasts that arrive
    interleaved with the reply.  That strict nesting is also what makes
    the bulk ring's bump allocator safe — see ``repro.ipc.shm``.
    """

    def __init__(self, sock, peer, dispatcher=None, recv_fds=False):
        self.sock = sock
        self.peer = peer
        self.dispatcher = dispatcher  # host-side: handles CALL/CONTROL
        self._send_lock = threading.Lock()
        self._call_ids = itertools.count(1).__next__
        self.closed = False
        self.last_released = 0.0  # pool-release stamp (probe freshness)
        # Outbound frame assembly: one long-lived writer bound to one
        # reusable buffer; the capability side table is rebuilt per
        # frame.  The writer's buffer/memo/table are managed here
        # directly (not via dumps_into save/restore) — the writer is
        # exclusive to this connection, and a *nested* serialization
        # mid-write goes through ObjectWriter.dumps, which saves and
        # restores around its own pooled buffer.
        self._writer = ObjectWriter()
        self._obuf = bytearray()
        self._table = []
        self._writer.capability_table = self._table
        # Inbound buffering: immutable bytes + offset, so zero-copy
        # memoryview slices of parsed frames survive buffer compaction.
        self._rbuf = b""
        self._roff = 0
        # Pooled reader for plain (untabled) streams, reset per frame —
        # the receive-side twin of the pooled writer above.  Its _data
        # is dropped after every parse so it never pins a receive
        # buffer or a shared-memory ring view.
        self._reader = ObjectReader(b"")
        # Bulk rings, one per direction, lazily created/attached.
        self._send_ring = None
        self._peer_ring = None
        self._ring_failed = False
        # Sealed regions referenced by the last outbound REPLY: the
        # replier may hold no other reference (a response body sealed on
        # the fly), and a GC finalizer poisoning the segment before the
        # caller reads the grant would turn a valid reply into a typed
        # revocation.  Strict nesting per connection guarantees the
        # previous reply is fully consumed before the next composes, so
        # replacing the held list at each reply is the release point.
        self._held_regions = None
        # SCM_RIGHTS receive side (host connections only).
        self._recv_fds = recv_fds
        self._in_fds = []
        self._anc_space = fd_ancillary_space() if recv_fds else 0
        # Post-dispatch hook, resolved once: peers define it as a class
        # method (the host kernel's revocation sweep), never per call.
        self._after_dispatch = getattr(peer, "after_dispatch", None)

    # -- framing ----------------------------------------------------------
    def _send(self, opcode, call_id, payload):
        frame = bytes((opcode,)) + call_id.to_bytes(4, "big") + payload
        with self._send_lock:
            send_frame(self.sock, frame)

    def _frame_buffer(self):
        frame = self._obuf
        try:
            del frame[:]
        except BufferError:
            # A view of the previous frame is still alive somewhere (an
            # exception traceback, typically): abandon that buffer.
            frame = self._obuf = bytearray()
        writer = self._writer
        writer._buffer = frame
        writer._memo.clear()
        del self._table[:]
        return frame

    def _send_value(self, opcode, call_id, value, fds=()):
        """Compose and send one frame carrying a marshalled value."""
        frame = self._frame_buffer()
        frame += _VALUE_PREFIX.pack(opcode, call_id, MF_INLINE)
        self._writer.write(value)
        table = self._table
        descriptors = None
        if table:
            frame[5] = MF_TABLED
            descriptors = dumps(
                tuple(_describe(self.peer, capability) for capability in table)
            )
            if opcode != OP_CALL:
                # Reply direction: pin granted regions until the next
                # reply on this connection (see __init__).
                held = [c for c in table if type(c) is SealedRegion]
                self._held_regions = held or None
        self._send_built(frame, 6, descriptors, fds)

    def _send_call(self, call_id, export_id, method_index, args):
        """Compose and send one compiled MF_CALL frame."""
        if not args:
            # A no-arg call is constant but for the ids: one pack, no
            # frame buffer, no serializer.
            frame = _NULL_CALL_FRAME.pack(16, OP_CALL, call_id, MF_CALL,
                                          export_id, method_index,
                                          _EMPTY_ARGS_STREAM)
            with self._send_lock:
                send_prefixed(self.sock, frame)
            return
        frame = self._frame_buffer()
        frame += _CALL_PREFIX.pack(OP_CALL, call_id, MF_CALL,
                                   export_id, method_index)
        self._writer.write(args)
        table = self._table
        descriptors = None
        if table:
            frame[5] = MF_CALL_TABLED
            descriptors = dumps(
                tuple(_describe(self.peer, capability) for capability in table)
            )
        self._send_built(frame, 6 + _CALL_HDR.size, descriptors)

    def _send_built(self, frame, splice_at, descriptors, fds=()):
        """Ship a composed frame: over the bulk ring when large, else as
        a scatter-gather socket frame.  ``descriptors`` (when present)
        splice in at ``splice_at`` — they were computed AFTER the value
        stream was written (the side table fills during the write), but
        the reader needs them FIRST; scattering the parts avoids ever
        rebuilding the frame to reorder it."""
        payload_length = len(frame) - 5 + (len(descriptors) if descriptors else 0)
        if payload_length >= SHM_THRESHOLD and not fds:
            grant = self._grant(frame, splice_at, descriptors)
            if grant is not None:
                small = frame[:5] + bytes((MF_SHM,)) + grant
                with self._send_lock:
                    send_frame(self.sock, small)
                return
        if descriptors is None:
            with self._send_lock:
                send_frame(self.sock, frame, fds=fds)
            return
        view = memoryview(frame)
        parts = (view[:splice_at], descriptors, view[splice_at:])
        with self._send_lock:
            send_frame_parts(self.sock, parts, fds=fds)

    def _grant(self, frame, splice_at, descriptors):
        ring = self._ensure_send_ring()
        if ring is None:
            return None
        view = memoryview(frame)
        if descriptors is None:
            return ring.grant(view[5:])
        return ring.grant_parts(
            (view[5:splice_at], descriptors, view[splice_at:])
        )

    def _ensure_send_ring(self):
        """The outbound bulk ring, creating and announcing it on first
        use; None when ring setup failed once (inline frames forever)."""
        if self._send_ring is not None:
            return self._send_ring
        if self._ring_failed:
            return None
        try:
            ring = BulkRing.create(RING_SIZE)
        except Exception:
            self._ring_failed = True
            return None
        announcement = (
            bytes((OP_RING,))
            + (0).to_bytes(4, "big")
            + dumps((ring.name, ring.size, ring.generation))
        )
        try:
            with self._send_lock:
                send_frame(self.sock, announcement)
        except (OSError, WireError):
            ring.close()
            raise
        self._send_ring = ring
        return ring

    def _fill(self):
        """One socket read into the inbound buffer (with SCM_RIGHTS
        collection on fd-receiving connections)."""
        if self._recv_fds:
            chunk, ancdata, _flags, _addr = self.sock.recvmsg(
                65536, self._anc_space
            )
            if ancdata:
                self._in_fds.extend(decode_fds(ancdata))
        else:
            chunk = self.sock.recv(65536)
        if not chunk:
            raise WireError("connection closed mid-frame")
        if self._roff:
            rest = self._rbuf[self._roff:]
            # Steady state: the previous frame was fully consumed, so
            # the new chunk IS the buffer — no copy, no concat.
            self._rbuf = rest + chunk if rest else chunk
            self._roff = 0
        elif self._rbuf:
            self._rbuf += chunk
        else:
            self._rbuf = chunk

    def _recv_raw(self):
        """Next ``(opcode, call_id, payload_view)`` from the buffered
        stream — typically one recv() per frame, and the payload is a
        zero-copy view into the receive buffer."""
        while True:
            buf, off = self._rbuf, self._roff
            available = len(buf) - off
            if available >= 9:
                # Every valid frame is >= 9 bytes on the wire, so the
                # whole header decodes in one unpack.
                length, opcode, call_id = _HDR9.unpack_from(buf, off)
                if length > MAX_FRAME:
                    raise WireError(f"frame too large: {length}")
                if length < 5:
                    raise WireError(f"short frame ({length} bytes)")
                end = off + 4 + length
                if available >= 4 + length:
                    self._roff = end
                    return opcode, call_id, memoryview(buf)[off + 9:end]
            elif available >= 4:
                length = int.from_bytes(buf[off:off + 4], "big")
                if length > MAX_FRAME:
                    raise WireError(f"frame too large: {length}")
                if length < 5:
                    raise WireError(f"short frame ({length} bytes)")
            self._fill()

    def _recv(self):
        while True:
            opcode, call_id, payload = self._recv_raw()
            if opcode == OP_RING:
                self._attach_peer_ring(loads(payload))
                continue
            return opcode, call_id, payload

    def _attach_peer_ring(self, announcement):
        name, _size, generation = announcement
        previous, self._peer_ring = self._peer_ring, None
        if previous is not None and previous.close() and self.peer is not None:
            self.peer.note_ring_close_failures(1)
        try:
            self._peer_ring = BulkRing.attach(name, generation)
        except (OSError, ValueError) as exc:
            raise WireError(
                f"cannot attach bulk ring {name!r}: {exc}"
            ) from None

    def _open(self, payload):
        """Resolve a payload to ``(format, bytes, ring_view)`` —
        following an MF_SHM grant into the peer's ring when present.
        ``ring_view`` is the live ring export to release once the bytes
        are deserialized (None for inline payloads): deterministic
        release is what keeps ``shm.close()`` from hitting a pinned
        mapping (BufferError) at teardown."""
        if len(payload) == 0:
            raise ProtocolError("empty frame payload")
        fmt = payload[0]
        if fmt != MF_SHM:
            return fmt, payload, None
        if self._peer_ring is None:
            raise ProtocolError("bulk grant before ring announcement")
        generation, offset, length = GRANT.unpack_from(payload, 1)
        try:
            inner = self._peer_ring.view(generation, offset, length)
        except RingError as exc:
            raise ProtocolError(str(exc)) from None
        if len(inner) == 0:
            inner.release()
            raise ProtocolError("empty bulk grant")
        fmt = inner[0]
        if fmt == MF_SHM:
            inner.release()
            raise ProtocolError("nested bulk grant")
        return fmt, inner, inner

    @staticmethod
    def _release_ring_view(ring_view):
        """Release a consumed ring view; an in-flight exception traceback
        can still pin a derived sub-view, in which case the mapping
        unpins at GC and ``BulkRing.close`` counts the miss."""
        try:
            ring_view.release()
        except BufferError:
            pass

    _EMPTY_VIEW = memoryview(b"")

    def _parse(self, fmt, payload, offset=1):
        if fmt in (MF_INLINE, MF_CALL):
            reader = self._reader
            reader._data = memoryview(payload)[offset:]
            reader._offset = 0
            if reader._memo:
                del reader._memo[:]
            if reader.capability_table:
                del reader.capability_table[:]
            try:
                value = reader.read()
                if reader._offset != len(reader._data):
                    raise NotSerializableError("trailing bytes after value")
            finally:
                reader._data = self._EMPTY_VIEW
            return value
        return _read_tabled(self.peer, payload[offset:])

    def _read_value(self, payload):
        # Constant-shaped replies skip the reader entirely: a None
        # (MF_INLINE + T_NULL) and a single in-range int (MF_INLINE +
        # T_INT64 + 8 bytes) — the two dominant result shapes.
        size = len(payload)
        if size == 2 and payload[0] == MF_INLINE and payload[1] == 0x00:
            return None
        if size == 10 and payload[0] == MF_INLINE and payload[1] == 0x03:
            return _REPLY_I64.unpack_from(payload, 2)[0]
        fmt, payload, ring_view = self._open(payload)
        try:
            if fmt not in (MF_INLINE, MF_TABLED):
                raise ProtocolError(f"unexpected marshal format {fmt}")
            return self._parse(fmt, payload)
        finally:
            if ring_view is not None:
                self._release_ring_view(ring_view)

    def send_revoked(self, export_ids):
        """Broadcast revoked export ids WITHOUT ever blocking.

        The broadcaster (the host's sweeper, and after_dispatch on every
        serving thread) must not wedge fleet-wide behind one client that
        stopped reading: the frame goes out with ``MSG_DONTWAIT`` and a
        peer whose socket buffer cannot take it atomically is closed —
        a client not draining its socket while revocations queue is
        indistinguishable from a dead one, and the host-side dispatch
        check keeps revocation correct for it regardless.
        """
        payload = dumps(list(export_ids))
        frame = bytes((OP_REVOKED,)) + (0).to_bytes(4, "big") + payload
        data = len(frame).to_bytes(4, "big") + frame
        flags = getattr(socket, "MSG_DONTWAIT", 0)
        try:
            with self._send_lock:
                sent = self.sock.send(data, flags)
            if sent != len(data):
                self.close()  # partial frame would desync the stream
        except (BlockingIOError, InterruptedError, OSError):
            self.close()

    # -- caller side -------------------------------------------------------
    def call(self, opcode, request, deadline=None):
        """One synchronous round trip; serves nested work while waiting.

        ``deadline`` (a ``time.monotonic`` instant) bounds the WHOLE
        round trip, not just each socket operation: a host that drips
        broadcast frames fast enough to keep every individual recv
        under the socket timeout still cannot hold the caller past it.
        """
        call_id = self._call_ids()
        return self._round(
            lambda: self._send_value(opcode, call_id, request),
            call_id, deadline,
        )

    def call_fast(self, export_id, method_index, args, deadline=None):
        """One compiled round trip (MF_CALL frame, index dispatch)."""
        call_id = self._call_ids()
        return self._round(
            lambda: self._send_call(call_id, export_id, method_index, args),
            call_id, deadline,
        )

    def call_streamed(self, export_id, method, args, fd, deadline=None,
                      on_sent=None):
        """A call that grants ``fd`` to the callee via SCM_RIGHTS (reply
        streaming: the host writes the HTTP response to it directly).

        ``on_sent`` fires only after the call frame went out whole.  The
        host dispatches (and can write the granted fd) only on a
        *complete* frame — a failed or truncated send kills the host
        connection, which closes unclaimed fds without dispatching — so
        a send-phase exception means the callee never touched the fd and
        the caller may safely fall back to a marshalled reply.
        """
        call_id = self._call_ids()
        request = _call_envelope(export_id, method, args, {})

        def send():
            self._send_value(OP_CALL, call_id, request, fds=(fd,))
            if on_sent is not None:
                on_sent()

        return self._round(send, call_id, deadline)

    def _round(self, send, call_id, deadline):
        base_timeout = self.sock.gettimeout()
        try:
            self._apply_deadline(deadline, base_timeout)
            send()
            return self._await(call_id, deadline, base_timeout)
        except socket.timeout as exc:
            raise self._transport_error(exc, timed_out=True) from None
        except (OSError, WireError) as exc:
            raise self._transport_error(exc, timed_out=False) from None
        except ProtocolError:
            # A local parse failure means the stream may be desynced;
            # the connection cannot be trusted for another frame.
            self.close()
            raise
        finally:
            if deadline is not None and not self.closed:
                try:
                    self.sock.settimeout(base_timeout)
                except OSError:
                    pass

    def _transport_error(self, exc, timed_out):
        self.close()
        error = DomainUnavailableException(
            f"out-of-process domain unreachable: {exc}"
        )
        # Checkout-retry discriminator (see DomainClient._exchange): a
        # deadline expiry must never be retried — the time is spent —
        # while a connection reset on a pooled socket is the TOCTOU race.
        error.timed_out = timed_out
        return error

    def _apply_deadline(self, deadline, base_timeout):
        if deadline is None:
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise socket.timeout("call deadline exceeded")
        if base_timeout is None or remaining < base_timeout:
            self.sock.settimeout(remaining)

    def _await(self, call_id, deadline=None, base_timeout=None):
        while True:
            self._apply_deadline(deadline, base_timeout)
            opcode, reply_id, payload = self._recv()
            if opcode == OP_REVOKED:
                self.peer.mark_revoked(loads(payload))
                continue
            if opcode == OP_CALL and self.dispatcher is None:
                # Nested callback into this process while we wait.
                self._serve_call(reply_id, payload)
                continue
            if opcode in (OP_CALL, OP_CONTROL):
                self._dispatch(opcode, reply_id, payload)
                continue
            if reply_id != call_id:
                raise WireError(
                    f"reply {reply_id} does not match call {call_id}"
                )
            if opcode == OP_RESULT:
                return self._read_value(payload)
            if opcode == OP_ERROR:
                exc = self._read_value(payload)
                if isinstance(exc, BaseException):
                    raise exc
                raise RemoteException(f"remote failure: {exc!r}")
            raise WireError(f"unexpected opcode {opcode}")

    # -- callee side -------------------------------------------------------
    def _reply_result(self, call_id, value):
        # The two dominant result shapes — None and a small int — are
        # constant-sized MF_INLINE frames: one pack, no frame buffer,
        # no serializer (mirrored by the _read_value fast paths).
        if value is None:
            frame = _NONE_REPLY_FRAME.pack(7, OP_RESULT, call_id,
                                           MF_INLINE, 0x00)
            with self._send_lock:
                send_prefixed(self.sock, frame)
            return
        if type(value) is int and -_I64_BOUND <= value < _I64_BOUND:
            frame = _INT_REPLY_FRAME.pack(15, OP_RESULT, call_id,
                                          MF_INLINE, 0x03, value)
            with self._send_lock:
                send_prefixed(self.sock, frame)
            return
        self._send_value(OP_RESULT, call_id, value)

    def _reply_error(self, call_id, exc):
        try:
            self._send_value(OP_ERROR, call_id, exc)
        except (OSError, WireError):
            raise
        except Exception:
            # The exception itself would not serialize; nothing has hit
            # the socket yet (marshalling precedes the send), so degrade
            # to a typed wrapper on a still-synchronized stream.
            self._send_value(
                OP_ERROR, call_id,
                RemoteException(
                    f"{type(exc).__qualname__} in remote domain: {exc}"
                ),
            )

    def _invoke_payload(self, payload):
        # Inline the common non-grant case; _open handles MF_SHM (and
        # re-raises the empty-payload check it shares).  The ring view
        # (when any) is released as soon as the arguments are parsed —
        # the dispatch below can run arbitrarily long, and a view held
        # across it would pin the ring mapping for the duration.
        if len(payload) and payload[0] != MF_SHM:
            fmt = payload[0]
            ring_view = None
        else:
            fmt, payload, ring_view = self._open(payload)
        try:
            if fmt in (MF_CALL, MF_CALL_TABLED):
                compiled = True
                export_id, method_index = _CALL_HDR.unpack_from(payload, 1)
                if payload[1 + _CALL_HDR.size:] == _EMPTY_ARGS_STREAM:
                    args = ()  # the constant no-arg frame, no reader needed
                else:
                    args = self._parse(fmt, payload,
                                       offset=1 + _CALL_HDR.size)
            elif fmt in (MF_INLINE, MF_TABLED):
                compiled = False
                envelope = self._parse(fmt, payload)
                if len(envelope) == 5:
                    export_id, method, args, kwargs, wire_context = envelope
                else:
                    export_id, method, args, kwargs = envelope
                    wire_context = None
            else:
                raise ProtocolError(f"unexpected marshal format {fmt}")
        finally:
            if ring_view is not None:
                del payload  # drop the alias; args are private copies now
                self._release_ring_view(ring_view)
        if compiled:
            entry = self.peer.exports.entry(export_id)
            if entry is None:
                raise RevokedException(
                    f"export #{export_id} is gone (revoked or swept)"
                )
            _capability, bound = entry
            if not 0 <= method_index < len(bound) or bound[method_index] is None:
                raise ProtocolError(
                    f"export #{export_id} has no compiled method "
                    f"#{method_index}"
                )
            return bound[method_index](*args)
        capability = self.peer.exports.get(export_id)
        if capability is None:
            raise RevokedException(
                f"export #{export_id} is gone (revoked or swept)"
            )
        if wire_context is None:
            return getattr(capability, method)(*args, **kwargs)
        # The caller's compressed context joins this process's walk for
        # the duration of the dispatch (and of any nested call it makes)
        # — the effective-permission intersection spans the process
        # boundary.
        with _policy.imported_context(wire_context):
            return getattr(capability, method)(*args, **kwargs)

    def _serve_call(self, call_id, payload):
        fds = self._in_fds
        if fds:
            self._in_fds = []
            _dispatch_ctx.fds = fds
        # Per-call region grant segment: any sealed-region view resolved
        # while THIS call unmarshals (or during nested calls it makes)
        # is recorded and revoked when the call returns — the kernel's
        # grant-for-the-duration-of-the-call rule.  Armed only for
        # payloads that can carry a side table; the null-call hot path
        # never touches the thread-local.
        tracked = (len(payload) != 0
                   and payload[0] in (MF_TABLED, MF_CALL_TABLED, MF_SHM))
        if tracked:
            outer_grants = getattr(_dispatch_ctx, "region_grants", None)
            grants = _dispatch_ctx.region_grants = []
        try:
            try:
                result = self._invoke_payload(payload)
                if _chaos is not None:
                    # Chaos crash point: the host dies after executing
                    # the call but before replying — the worst spot for
                    # a caller, which must see a typed error, never a
                    # hang.
                    _chaos.crash_point("lrmi.host.dispatch")
            except Exception as exc:
                self._reply_error(call_id, exc)
            else:
                self._reply_result(call_id, result)
            after = self._after_dispatch
            if after is not None:
                after()
        finally:
            if tracked:
                # Revoke AFTER the reply went out: a granted region may
                # legitimately appear in the result (the callee handing
                # the same bytes back), and its descriptor must still
                # validate when the caller resolves it.
                _dispatch_ctx.region_grants = outer_grants
                for region in grants:
                    region.revoke()
            if fds:
                _dispatch_ctx.fds = []
                for fd in fds:  # whatever the callee did not claim_fd()
                    try:
                        os.close(fd)
                    except OSError:
                        pass

    def _dispatch(self, opcode, call_id, payload):
        if opcode == OP_CALL:
            self._serve_call(call_id, payload)
            return
        try:
            verb, args = self._read_value(payload)
            result = self.dispatcher(verb, args)
        except Exception as exc:
            self._reply_error(call_id, exc)
        else:
            self._reply_result(call_id, result)

    def serve_loop(self):
        """Host-side connection loop: serve until BYE/close."""
        try:
            while not self.closed:
                opcode, call_id, payload = self._recv()
                if opcode == OP_BYE:
                    break
                if opcode == OP_REVOKED:
                    self.peer.mark_revoked(loads(payload))
                    continue
                self._dispatch(opcode, call_id, payload)
        except (OSError, WireError):
            pass
        finally:
            self.close()

    def close(self):
        self.closed = True
        try:
            self.sock.close()
        except OSError:
            pass
        fds, self._in_fds = self._in_fds, []
        for fd in fds:
            try:
                os.close(fd)
            except OSError:
                pass
        failures = 0
        ring, self._send_ring = self._send_ring, None
        if ring is not None:
            failures += ring.close()
        ring, self._peer_ring = self._peer_ring, None
        if ring is not None:
            failures += ring.close()
        self._held_regions = None
        peer = self.peer
        if peer is not None:
            if failures:
                peer.note_ring_close_failures(failures)
            if self.dispatcher is not None:
                # Host-side connection: its per-connection peer (and the
                # attachment cache of every grant it resolved) dies with
                # it.  Client-side connections share the DomainClient
                # peer, whose cache closes with the client.
                peer.close_regions()


# -- the host process ---------------------------------------------------------

class _ConnectionPeer(_Peer):
    """Per-connection peer on the host side: shares the kernel's export
    table (any connection may invoke any export) but owns its proxy
    cache and routes outbound (callback) calls over its own socket."""

    def __init__(self, kernel, connection):
        super().__init__(exports=kernel.exports)
        self._kernel = kernel
        self._connection = connection

    def call(self, export_id, method, args, kwargs):
        return self._connection.call(
            OP_CALL, _call_envelope(export_id, method, args, kwargs)
        )

    def call_fast(self, export_id, method_index, method, args):
        if not COMPILED_WIRE:
            return self.call(export_id, method, args, {})
        return self._connection.call_fast(export_id, method_index, args)

    def control(self, verb, *args):
        raise ProtocolError("control verbs flow client -> host only")

    def after_dispatch(self):
        self._kernel.sweep_and_broadcast()

    def note_ring_close_failures(self, count):
        # Aggregate kernel-wide: connections come and go, the stats verb
        # reports one counter for the host.
        self._kernel.note_ring_close_failures(count)


class _HostKernel(_Peer):
    """The host-side kernel state: bindings, exports, broadcast bus."""

    def __init__(self, bindings):
        super().__init__()
        self.bindings = bindings
        self._connections = []
        self._conn_lock = threading.Lock()

    def register_connection(self, connection):
        with self._conn_lock:
            self._connections.append(connection)

    def unregister_connection(self, connection):
        with self._conn_lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def after_dispatch(self):
        self.sweep_and_broadcast()

    def sweep_and_broadcast(self):
        dropped = self.exports.sweep()
        if not dropped:
            return
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.send_revoked(dropped)

    def handle_control(self, verb, args):
        if verb == "lookup":
            (name,) = args
            capability = self.bindings.get(name)
            if capability is None:
                raise KeyError(f"no binding named {name!r}")
            return capability
        if verb == "revoke":
            (export_id,) = args
            capability = self.exports.get(export_id)
            if capability is not None:
                capability.revoke()
                self.sweep_and_broadcast()
            return True
        if verb == "terminate":
            (name,) = args
            capability = self.bindings.get(name)
            if capability is None:
                raise KeyError(f"no binding named {name!r}")
            domain = getattr(capability, "creator", None)
            if domain is not None:
                domain.terminate()
            self.sweep_and_broadcast()
            return True
        if verb == "stats":
            from repro.core import get_accountant

            domains = {}
            for name, capability in self.bindings.items():
                domain = getattr(capability, "creator", None)
                if domain is not None:
                    domains[name] = {"domain": domain.name,
                                     "terminated": domain.terminated,
                                     **domain.stats}
            return {
                "pid": os.getpid(),
                "bindings": sorted(self.bindings),
                "exports": len(self.exports),
                "accounts": get_accountant().report(),
                "domains": domains,
                "ring_close_failures": self.ring_close_failures,
            }
        if verb == "ping":
            return "pong"
        if verb == "shutdown":
            threading.Thread(
                target=lambda: (time.sleep(0.05), os._exit(0)),
                daemon=True,
            ).start()
            return True
        raise ProtocolError(f"unknown control verb {verb!r}")


def _host_main(path, setup, parent_pid):
    """Child-process entry: build bindings, serve LRMI forever."""
    bindings = setup()
    if not isinstance(bindings, dict) or not bindings:
        raise TypeError("setup() must return a non-empty {name: Capability}")
    kernel = _HostKernel(bindings)

    def sweeper():
        while True:
            time.sleep(SWEEP_INTERVAL)
            # Orphan check against the REAL parent pid captured at fork:
            # comparing against 1 would self-destruct every host when
            # the parent itself runs as PID 1 (containers).
            if os.getppid() != parent_pid:
                os._exit(0)  # orphaned: the parent died
            kernel.sweep_and_broadcast()

    threading.Thread(target=sweeper, daemon=True,
                     name="lrmi-host-sweeper").start()

    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(16)

    def serve(conn_sock):
        connection = _Connection(conn_sock, None,
                                 dispatcher=kernel.handle_control,
                                 recv_fds=True)
        connection.peer = _ConnectionPeer(kernel, connection)
        kernel.register_connection(connection)
        try:
            connection.serve_loop()
        finally:
            kernel.unregister_connection(connection)

    while True:
        conn_sock, _ = listener.accept()
        threading.Thread(target=serve, args=(conn_sock,), daemon=True,
                         name="lrmi-host-conn").start()


class DomainHostProcess:
    """Forks a child hosting out-of-process domains behind LRMI.

    ``setup`` runs **in the child** after fork and returns
    ``{name: Capability}`` — the host's published bindings (looked up by
    :meth:`DomainClient.lookup`).  Closures are fine; nothing is pickled.
    """

    def __init__(self, setup, name="domain-host"):
        self.name = name
        self.path = os.path.join(
            tempfile.gettempdir(),
            f"repro-lrmi-{uuid.uuid4().hex[:12]}.sock",
        )
        self._setup = setup
        self._pid = None
        # The last pid this process forked, remembered past alive()'s
        # reaping (which clears _pid) so stop() can purge the dead
        # host's region segments by name.
        self._spawned_pid = None

    @property
    def pid(self):
        return self._pid

    def start(self):
        if os.path.exists(self.path):
            # Restart-in-place after a crash: the dead host's socket
            # file survives it and would make the child's bind fail.
            try:
                os.unlink(self.path)
            except OSError:
                pass
        parent_pid = os.getpid()
        pid = os.fork()
        if pid == 0:
            status = 0
            try:
                _host_main(self.path, self._setup, parent_pid)
            except BaseException:
                # Print BEFORE exiting: a bare os._exit would swallow a
                # setup() failure entirely, leaving the parent's generic
                # "died during startup" as the only (useless) signal.
                import traceback

                traceback.print_exc()
                status = 1
            finally:
                os._exit(status)
        self._pid = pid
        self._spawned_pid = pid
        self._wait_for_socket()
        return self

    def _wait_for_socket(self, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive():
                raise DomainUnavailableException(
                    f"domain host {self.name!r} died during startup"
                )
            if os.path.exists(self.path):
                try:
                    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    probe.connect(self.path)
                    probe.close()
                    return
                except OSError:
                    pass
            time.sleep(0.005)
        raise DomainUnavailableException(
            f"domain host {self.name!r} socket did not appear"
        )

    def alive(self):
        if self._pid is None:
            return False
        try:
            pid, _status = os.waitpid(self._pid, os.WNOHANG)
        except ChildProcessError:
            return False
        if pid == self._pid:
            self._pid = None
            return False
        return True

    def stop(self):
        if self._pid is not None:
            try:
                os.kill(self._pid, 9)
                os.waitpid(self._pid, 0)
            except OSError:
                pass
            self._pid = None
        if self._spawned_pid is not None:
            # The host is dead (just killed, or reaped earlier by
            # alive()): reclaim whatever region segments it left in
            # /dev/shm — a SIGKILL gives its atexit hooks no chance, so
            # the supervisor's by-name purge is the cleanup of record.
            _purge_regions(self._spawned_pid)
            self._spawned_pid = None
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


# -- the client ---------------------------------------------------------------

class DomainClient(_Peer):
    """Parent-side peer: pooled connections to one domain host.

    Robustness knobs (all off by default, preserving PR-5 behaviour):

    * ``call_deadline`` — seconds bounding each whole round trip; on
      expiry the call raises :class:`DomainUnavailableException`
      instead of waiting out per-recv socket timeouts one by one.
    * ``retries``/``backoff`` — bounded retry with exponential backoff
      after a transport failure, applied ONLY to idempotent work:
      control verbs in :data:`IDEMPOTENT_CONTROL` and methods the
      caller declared via ``idempotent=``.  Each attempt acquires a
      fresh connection (the failed one was closed by the error path).

    Independent of both knobs, a transport failure on a REUSED pooled
    connection gets one immediate retry on a fresh dial: the checkout
    health probe (select + ``MSG_PEEK``) is a snapshot, and a host that
    restarted between probe and send leaves a socket that probes healthy
    but RSTs on use — the same TOCTOU race fixed for ``ntrpc.RpcClient``
    in PR 7.  A fresh dial either reaches the live (new) host or fails
    honestly; deadline expiries are never retried (the time is spent),
    and a call that went out on a FRESH dial failed against current
    state, so it surfaces immediately.
    """

    def __init__(self, path, timeout=CALL_TIMEOUT, pool_size=4, *,
                 call_deadline=None, retries=0, backoff=0.05,
                 idempotent=()):
        super().__init__()
        self.path = path
        self.timeout = timeout
        self.pool_size = pool_size
        self.call_deadline = call_deadline
        self.retries = retries
        self.backoff = backoff
        self._idempotent = frozenset(idempotent)
        self._free = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self._evicted = 0

    # -- connection pool ---------------------------------------------------
    def _connect(self):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.path)
        except OSError as exc:
            sock.close()
            raise DomainUnavailableException(
                f"cannot reach domain host at {self.path}: {exc}"
            ) from None
        return _Connection(sock, self)

    @staticmethod
    def _healthy(connection):
        """Checkout validation for a pooled idle connection.

        A dead peer shows up as a readable socket whose peek returns
        b"" (EOF).  A readable socket with pending *data* is healthy:
        it is a revocation broadcast queued while the connection sat
        in the pool, which the next ``_await`` loop consumes normally.
        """
        sock = connection.sock
        try:
            readable, _, _ = select.select([sock], [], [], 0)
            if not readable:
                return True
            return bool(sock.recv(1, socket.MSG_PEEK))
        except (OSError, ValueError):
            return False

    def _acquire(self):
        """Checkout: ``(connection, reused)`` — reused means it came out
        of the pool, so its health probe is subject to the TOCTOU race."""
        if self._closed:
            raise DomainUnavailableException("domain client closed")
        while True:
            with self._pool_lock:
                if not self._free:
                    break
                connection = self._free.pop()
            # A connection released moments ago skips the probe: back-
            # to-back calls on a hot pool would pay a select() each to
            # re-learn what the last call just proved, and the fresh-
            # dial retry in _exchange covers the (already racy) window
            # the probe would have covered.
            if (time.monotonic() - connection.last_released < PROBE_FRESH_S
                    or self._healthy(connection)):
                return connection, True
            with self._pool_lock:
                self._evicted += 1
            connection.close()
        return self._connect(), False

    @property
    def evicted(self):
        """Half-dead pooled connections dropped at checkout (for tests)."""
        with self._pool_lock:
            return self._evicted

    def _release(self, connection):
        if connection.closed:
            return
        connection.last_released = time.monotonic()
        with self._pool_lock:
            if not self._closed and len(self._free) < self.pool_size:
                self._free.append(connection)
                return
        connection.close()

    def _exchange(self, connection, reused, deadline, invoke):
        """One call over a checked-out connection, with the one-shot
        fresh-dial retry closing the pooled-socket TOCTOU window.  Only
        a non-timeout transport failure on a REUSED connection retries,
        and only while the deadline (if any) has time left."""
        try:
            try:
                return invoke(connection)
            except DomainUnavailableException as exc:
                if not reused or getattr(exc, "timed_out", True):
                    raise
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                connection = self._connect()
                return invoke(connection)
        finally:
            self._release(connection)

    def _deadline(self):
        if self.call_deadline is None:
            return None
        return time.monotonic() + self.call_deadline

    def _round_trip(self, opcode, request, retry=False):
        deadline = self._deadline()
        attempts = 1 + (self.retries if retry else 0)
        delay = self.backoff
        for attempt in range(attempts):
            try:
                # _acquire is inside the retry: during a host outage the
                # failure IS the dial (connection refused), and retrying
                # only the round trip would never bridge a restart.
                connection, reused = self._acquire()
                return self._exchange(
                    connection, reused, deadline,
                    lambda conn: conn.call(opcode, request,
                                           deadline=deadline),
                )
            except DomainUnavailableException:
                if attempt + 1 >= attempts or self._closed:
                    raise
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                time.sleep(min(delay, 1.0))
                delay *= 2

    # -- peer interface ----------------------------------------------------
    def call(self, export_id, method, args, kwargs):
        return self._round_trip(
            OP_CALL, _call_envelope(export_id, method, args, kwargs),
            retry=method in self._idempotent,
        )

    def call_fast(self, export_id, method_index, method, args):
        # Idempotent-declared methods keep the generic path: its retry
        # loop is keyed on the method name.
        if not COMPILED_WIRE or method in self._idempotent:
            return self.call(export_id, method, args, {})
        deadline = self._deadline()
        connection, reused = self._acquire()
        return self._exchange(
            connection, reused, deadline,
            lambda conn: conn.call_fast(export_id, method_index, args,
                                        deadline=deadline),
        )

    def call_streamed(self, export_id, method, args, fd, *, on_grant=None):
        """Invoke ``method`` granting ``fd`` to the host via SCM_RIGHTS.

        No retries of any kind: once the descriptor crosses, the callee
        may have written bytes to it, and a duplicate delivery could
        interleave output.  ``on_grant`` (when given) runs the moment
        the call frame has gone out whole — the point of no return,
        after which the fd is (possibly) in foreign hands.  A send-phase
        failure raises *without* firing it: the host only dispatches a
        complete frame, so the fd was never written and the caller may
        fall back to an ordinary marshalled reply.
        """
        deadline = self._deadline()
        connection, _reused = self._acquire()
        try:
            return connection.call_streamed(export_id, method, args, fd,
                                            deadline=deadline,
                                            on_sent=on_grant)
        finally:
            self._release(connection)

    def control(self, verb, *args):
        return self._round_trip(
            OP_CONTROL, (verb, args), retry=verb in IDEMPOTENT_CONTROL,
        )

    # -- convenience -------------------------------------------------------
    def lookup(self, name):
        """Proxy for a host binding (a cross-process capability)."""
        capability = self.control("lookup", name)
        if not isinstance(capability, RemoteCapability):
            raise ProtocolError(
                f"lookup({name!r}) did not yield a capability"
            )
        return capability

    def stats(self):
        return self.control("stats")

    def terminate(self, name):
        """Terminate the domain behind a binding (revokes its exports)."""
        return self.control("terminate", name)

    def close(self):
        with self._pool_lock:
            self._closed = True
            connections, self._free = self._free, []
        for connection in connections:
            try:
                connection._send(OP_BYE, 0, b"")
            except (OSError, WireError):
                pass
            connection.close()
        self.close_regions()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def connect(host, **kwargs):
    """Client for a started :class:`DomainHostProcess`; keyword options
    are forwarded to :class:`DomainClient` (deadline/retry knobs)."""
    return DomainClient(host.path, **kwargs)
