"""Cross-process LRMI: capabilities whose targets live in another process.

The in-process J-Kernel passes capabilities by reference and copies
everything else (paper §3.1); this module extends exactly that calling
convention across a real OS process boundary — the Remote-Playground
deployment style (Malkhi & Reiter): untrusted code runs in a separate
*domain host* process, and the capability the parent holds is a generated
proxy that marshals each invocation through the compiled serializer
(``repro.core.serial``) over a UNIX-socket wire (``repro.ipc.wire``).

Architecture
------------

* :class:`DomainHostProcess` — forks a child that runs ``setup()`` (which
  builds domains/servlets and returns ``{name: Capability}`` bindings),
  then serves LRMI traffic on a fresh UNIX socket.  Each accepted
  connection gets a serving thread; dispatch goes *through the real
  in-process capability stub*, so every in-process guarantee (segment
  switch, argument copying, revocation and termination checks,
  accounting) holds unchanged inside the host.
* :class:`DomainClient` — the parent-side peer: a small pool of
  connections, ``lookup(name)`` returning remote-capability proxies, and
  kernel control verbs (``revoke``/``terminate``/``stats``/``shutdown``).
* Proxies — per-method generated classes (mirroring the in-process stub
  generator): each method marshals ``(export_id, method, args, kwargs)``
  and re-raises the callee's exception in the caller's process.
  Capabilities inside arguments/results ride the serializer's capability
  side table: a real capability is *exported* (a descriptor crosses, a
  proxy materializes on the other side), and a proxy sent back to its
  owning side collapses to the original capability object — so callbacks
  and the revoke-your-own-argument idiom work across the boundary.
* Revocation broadcast — the host kernel owns the export table and a
  broadcast channel over every live connection.  After each dispatch
  (and from a periodic sweeper), exports whose capability has been
  revoked are dropped and ``OP_REVOKED`` frames fan out, flipping the
  remote proxies to fail-fast local :class:`RevokedException`; a client
  that has not yet processed the broadcast still fails correctly,
  because the host-side stub rejects the call at dispatch.

A dead host surfaces as :class:`DomainUnavailableException` (a
``RemoteException`` subclass the web layer maps to a retryable 503),
never as a hang: every *client-side* wire operation runs under a socket
timeout, and host-side broadcasts are non-blocking (a peer that stops
reading is closed, not waited on).  Host serving threads block reading
idle connections by design — they are daemons of a disposable process.
"""

from __future__ import annotations

import itertools
import os
import select
import socket
import tempfile
import threading
import time
import uuid

from repro.core import Capability, register_capref_type
from repro.core import convention as _convention
from repro.core.errors import (
    DomainUnavailableException,
    JKernelError,
    NotSerializableError,
    RemoteException,
    RevokedException,
)
from repro.core.remote import is_remote_interface
from repro.core.serial import dumps, loads

from .wire import WireError, recv_frame, send_frame

OP_CALL = 1
OP_RESULT = 2
OP_ERROR = 3
OP_REVOKED = 4
OP_CONTROL = 5
OP_BYE = 6

#: Default per-operation wire timeout: generous enough for a slow
#: servlet, small enough that a wedged host cannot hang its callers.
CALL_TIMEOUT = 30.0

#: How often the host sweeps its export table for revoked capabilities.
SWEEP_INTERVAL = 0.02

#: Control verbs safe to retry after a transport failure: none of them
#: mutate host state in a way a duplicate delivery could corrupt.
IDEMPOTENT_CONTROL = frozenset({"lookup", "stats", "ping"})

#: Fault-injection hook (``repro.testing.chaos``); None in production.
_chaos = None


class ProtocolError(JKernelError):
    """Malformed or out-of-order cross-process LRMI frame."""


# Registered so a host-side protocol failure re-raises as itself in the
# caller's process instead of decaying to the nearest registered base.
from repro.core.serial import register_class as _register_class  # noqa: E402

_register_class(ProtocolError, name="jkernel.ProtocolError")


def exported_methods(capability):
    """The remote-method names a capability exposes across the wire.

    For an in-process stub these are the methods of its remote
    interfaces; for a proxy, the method tuple it was built from.
    """
    if isinstance(capability, RemoteCapability):
        return capability._methods
    names = set()
    for base in type(capability).__mro__:
        if is_remote_interface(base):
            for name, member in vars(base).items():
                if not name.startswith("_") and callable(member):
                    names.add(name)
    return tuple(sorted(names))


class ExportTable:
    """Kernel-owned table of capabilities reachable from other processes."""

    def __init__(self):
        self._lock = threading.Lock()
        self._by_id = {}
        self._by_identity = {}
        self._next = itertools.count(1).__next__

    def export(self, capability):
        """Register (or re-find) a capability; returns its export id."""
        with self._lock:
            found = self._by_identity.get(id(capability))
            if found is not None:
                return found
            export_id = self._next()
            self._by_id[export_id] = capability
            self._by_identity[id(capability)] = export_id
            return export_id

    def get(self, export_id):
        return self._by_id.get(export_id)

    def sweep(self):
        """Drop exports whose capability has been revoked; returns the
        dropped ids (the kernel broadcasts them)."""
        dropped = []
        with self._lock:
            for export_id, capability in list(self._by_id.items()):
                if getattr(capability, "revoked", False):
                    del self._by_id[export_id]
                    self._by_identity.pop(id(capability), None)
                    dropped.append(export_id)
        return dropped

    def __len__(self):
        with self._lock:
            return len(self._by_id)


class RemoteCapability:
    """Base class of generated cross-process capability proxies."""

    _methods = ()

    def __init__(self, peer, export_id, label, methods):
        self._peer = peer
        self._export_id = export_id
        self._label = label
        self._methods = tuple(methods)
        self._revoked = False

    @property
    def revoked(self):
        return self._revoked

    @property
    def label(self):
        return self._label

    def revoke(self):
        """Ask the owning kernel to revoke the underlying capability.

        The host revokes the real stub, sweeps, and broadcasts; the
        local flag flips immediately so this process fails fast even
        before the broadcast round-trips.
        """
        self._revoked = True
        try:
            self._peer.control("revoke", self._export_id)
        except DomainUnavailableException:
            pass  # a dead host has revoked everything de facto

    def _invoke(self, method, args, kwargs):
        if self._revoked:
            raise RevokedException(
                f"{self._label}: capability revoked (remote)"
            )
        return self._peer.call(self._export_id, method, args, kwargs)

    def __repr__(self):
        state = "revoked" if self._revoked else "live"
        return f"<RemoteCapability {self._label} #{self._export_id} ({state})>"


_proxy_classes = {}


def _proxy_class(methods):
    """Generated proxy class for one remote-method tuple (cached)."""
    key = tuple(methods)
    found = _proxy_classes.get(key)
    if found is not None:
        return found

    body = {}
    for name in key:
        def method(self, *args, _jk_name=name, **kwargs):
            return self._invoke(_jk_name, args, kwargs)
        method.__name__ = name
        body[name] = method
    cls = type("RemoteCapabilityProxy", (RemoteCapability,), body)
    # Proxies cross in-process domain boundaries by reference (they ARE
    # the capability, as far as this process is concerned) and ride the
    # serializer's capability side table like real stubs.
    _convention.register_reference_type(cls)
    register_capref_type(cls)
    _proxy_classes[key] = cls
    return cls


# -- marshalling --------------------------------------------------------------
#
# A wire value is ``dumps((payload_bytes, descriptors))`` where
# ``payload_bytes`` came from ``dumps(value, capability_table=table)`` and
# ``descriptors`` describe each capability in table order:
#
#   ("back", export_id)                    -- the RECEIVER's own export
#   ("export", export_id, label, methods)  -- a fresh export of the sender

def _describe(peer, capability):
    if isinstance(capability, RemoteCapability):
        if capability._peer is not peer and capability._peer is not None:
            raise NotSerializableError(
                "cannot forward a remote capability to a third process"
            )
        return ("back", capability._export_id)
    export_id = peer.exports.export(capability)
    label = getattr(capability, "label", None) or type(capability).__name__
    return ("export", export_id, str(label), exported_methods(capability))


def _resolve(peer, descriptor):
    kind = descriptor[0]
    if kind == "back":
        capability = peer.exports.get(descriptor[1])
        if capability is None:
            raise RevokedException(
                f"export #{descriptor[1]} is gone (revoked or swept)"
            )
        return capability
    if kind == "export":
        _, export_id, label, methods = descriptor
        return peer.proxy_for(export_id, label, methods)
    raise ProtocolError(f"unknown capability descriptor {descriptor!r}")


def marshal(peer, value):
    table = []
    payload = dumps(value, capability_table=table)
    descriptors = tuple(_describe(peer, capability) for capability in table)
    return dumps((payload, descriptors))


def unmarshal(peer, data):
    payload, descriptors = loads(data)
    table = [_resolve(peer, descriptor) for descriptor in descriptors]
    return loads(payload, capability_table=table)


class _Peer:
    """State shared by one side of the wire: the export table and the
    proxy cache (stable identity per export id)."""

    def __init__(self, exports=None):
        self.exports = exports if exports is not None else ExportTable()
        self._proxies = {}
        self._proxy_lock = threading.Lock()

    def proxy_for(self, export_id, label, methods):
        with self._proxy_lock:
            proxy = self._proxies.get(export_id)
            if proxy is None:
                proxy = _proxy_class(methods)(self, export_id, label, methods)
                self._proxies[export_id] = proxy
            return proxy

    def mark_revoked(self, export_ids):
        with self._proxy_lock:
            for export_id in export_ids:
                proxy = self._proxies.get(export_id)
                if proxy is not None:
                    proxy._revoked = True

    # Overridden by the concrete peers.
    def call(self, export_id, method, args, kwargs):
        raise NotImplementedError

    def control(self, verb, *args):
        raise NotImplementedError


class _Connection:
    """One framed socket shared by both protocol directions.

    Strictly nested use: while a caller awaits its reply it dispatches
    any incoming ``OP_CALL`` on its own thread (cross-process re-entry,
    the A→B→A LRMI idiom), and applies revocation broadcasts that arrive
    interleaved with the reply.
    """

    def __init__(self, sock, peer, dispatcher=None):
        self.sock = sock
        self.peer = peer
        self.dispatcher = dispatcher  # host-side: handles CALL/CONTROL
        self._send_lock = threading.Lock()
        self._call_ids = itertools.count(1).__next__
        self.closed = False

    # -- framing ----------------------------------------------------------
    def _send(self, opcode, call_id, payload):
        frame = bytes((opcode,)) + call_id.to_bytes(4, "big") + payload
        with self._send_lock:
            send_frame(self.sock, frame)

    def _recv(self):
        frame = recv_frame(self.sock)
        if len(frame) < 5:
            raise WireError(f"short frame ({len(frame)} bytes)")
        return frame[0], int.from_bytes(frame[1:5], "big"), frame[5:]

    def send_revoked(self, export_ids):
        """Broadcast revoked export ids WITHOUT ever blocking.

        The broadcaster (the host's sweeper, and after_dispatch on every
        serving thread) must not wedge fleet-wide behind one client that
        stopped reading: the frame goes out with ``MSG_DONTWAIT`` and a
        peer whose socket buffer cannot take it atomically is closed —
        a client not draining its socket while revocations queue is
        indistinguishable from a dead one, and the host-side dispatch
        check keeps revocation correct for it regardless.
        """
        payload = dumps(list(export_ids))
        frame = bytes((OP_REVOKED,)) + (0).to_bytes(4, "big") + payload
        data = len(frame).to_bytes(4, "big") + frame
        flags = getattr(socket, "MSG_DONTWAIT", 0)
        try:
            with self._send_lock:
                sent = self.sock.send(data, flags)
            if sent != len(data):
                self.close()  # partial frame would desync the stream
        except (BlockingIOError, InterruptedError, OSError):
            self.close()

    # -- caller side -------------------------------------------------------
    def call(self, opcode, request, deadline=None):
        """One synchronous round trip; serves nested work while waiting.

        ``deadline`` (a ``time.monotonic`` instant) bounds the WHOLE
        round trip, not just each socket operation: a host that drips
        broadcast frames fast enough to keep every individual recv
        under the socket timeout still cannot hold the caller past it.
        """
        call_id = self._call_ids()
        payload = marshal(self.peer, request)
        base_timeout = self.sock.gettimeout()
        try:
            self._apply_deadline(deadline, base_timeout)
            self._send(opcode, call_id, payload)
            return self._await(call_id, deadline, base_timeout)
        except (OSError, WireError) as exc:
            self.close()
            raise DomainUnavailableException(
                f"out-of-process domain unreachable: {exc}"
            ) from None
        finally:
            if deadline is not None and not self.closed:
                try:
                    self.sock.settimeout(base_timeout)
                except OSError:
                    pass

    def _apply_deadline(self, deadline, base_timeout):
        if deadline is None:
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise socket.timeout("call deadline exceeded")
        if base_timeout is None or remaining < base_timeout:
            self.sock.settimeout(remaining)

    def _await(self, call_id, deadline=None, base_timeout=None):
        while True:
            self._apply_deadline(deadline, base_timeout)
            opcode, reply_id, payload = self._recv()
            if opcode == OP_REVOKED:
                self.peer.mark_revoked(loads(payload))
                continue
            if opcode == OP_CALL and self.dispatcher is None:
                # Nested callback into this process while we wait.
                self._serve_call(reply_id, payload)
                continue
            if opcode in (OP_CALL, OP_CONTROL):
                self._dispatch(opcode, reply_id, payload)
                continue
            if reply_id != call_id:
                raise WireError(
                    f"reply {reply_id} does not match call {call_id}"
                )
            if opcode == OP_RESULT:
                return unmarshal(self.peer, payload)
            if opcode == OP_ERROR:
                exc = unmarshal(self.peer, payload)
                if isinstance(exc, BaseException):
                    raise exc
                raise RemoteException(f"remote failure: {exc!r}")
            raise WireError(f"unexpected opcode {opcode}")

    # -- callee side -------------------------------------------------------
    def _reply_result(self, call_id, value):
        self._send(OP_RESULT, call_id, marshal(self.peer, value))

    def _reply_error(self, call_id, exc):
        try:
            payload = marshal(self.peer, exc)
        except Exception:
            payload = marshal(
                self.peer,
                RemoteException(
                    f"{type(exc).__qualname__} in remote domain: {exc}"
                ),
            )
        self._send(OP_ERROR, call_id, payload)

    def _serve_call(self, call_id, payload):
        try:
            export_id, method, args, kwargs = unmarshal(self.peer, payload)
            capability = self.peer.exports.get(export_id)
            if capability is None:
                raise RevokedException(
                    f"export #{export_id} is gone (revoked or swept)"
                )
            result = getattr(capability, method)(*args, **kwargs)
            if _chaos is not None:
                # Chaos crash point: the host dies after executing the
                # call but before replying — the worst spot for a
                # caller, which must see a typed error, never a hang.
                _chaos.crash_point("lrmi.host.dispatch")
        except Exception as exc:
            self._reply_error(call_id, exc)
        else:
            self._reply_result(call_id, result)
        after = getattr(self.peer, "after_dispatch", None)
        if after is not None:
            after()

    def _dispatch(self, opcode, call_id, payload):
        if opcode == OP_CALL:
            self._serve_call(call_id, payload)
            return
        try:
            verb, args = unmarshal(self.peer, payload)
            result = self.dispatcher(verb, args)
        except Exception as exc:
            self._reply_error(call_id, exc)
        else:
            self._reply_result(call_id, result)

    def serve_loop(self):
        """Host-side connection loop: serve until BYE/close."""
        try:
            while not self.closed:
                opcode, call_id, payload = self._recv()
                if opcode == OP_BYE:
                    break
                if opcode == OP_REVOKED:
                    self.peer.mark_revoked(loads(payload))
                    continue
                self._dispatch(opcode, call_id, payload)
        except (OSError, WireError):
            pass
        finally:
            self.close()

    def close(self):
        self.closed = True
        try:
            self.sock.close()
        except OSError:
            pass


# -- the host process ---------------------------------------------------------

class _ConnectionPeer(_Peer):
    """Per-connection peer on the host side: shares the kernel's export
    table (any connection may invoke any export) but owns its proxy
    cache and routes outbound (callback) calls over its own socket."""

    def __init__(self, kernel, connection):
        super().__init__(exports=kernel.exports)
        self._kernel = kernel
        self._connection = connection

    def call(self, export_id, method, args, kwargs):
        return self._connection.call(
            OP_CALL, (export_id, method, args, kwargs)
        )

    def control(self, verb, *args):
        raise ProtocolError("control verbs flow client -> host only")

    def after_dispatch(self):
        self._kernel.sweep_and_broadcast()


class _HostKernel(_Peer):
    """The host-side kernel state: bindings, exports, broadcast bus."""

    def __init__(self, bindings):
        super().__init__()
        self.bindings = bindings
        self._connections = []
        self._conn_lock = threading.Lock()

    def register_connection(self, connection):
        with self._conn_lock:
            self._connections.append(connection)

    def unregister_connection(self, connection):
        with self._conn_lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def after_dispatch(self):
        self.sweep_and_broadcast()

    def sweep_and_broadcast(self):
        dropped = self.exports.sweep()
        if not dropped:
            return
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.send_revoked(dropped)

    def handle_control(self, verb, args):
        if verb == "lookup":
            (name,) = args
            capability = self.bindings.get(name)
            if capability is None:
                raise KeyError(f"no binding named {name!r}")
            return capability
        if verb == "revoke":
            (export_id,) = args
            capability = self.exports.get(export_id)
            if capability is not None:
                capability.revoke()
                self.sweep_and_broadcast()
            return True
        if verb == "terminate":
            (name,) = args
            capability = self.bindings.get(name)
            if capability is None:
                raise KeyError(f"no binding named {name!r}")
            domain = getattr(capability, "creator", None)
            if domain is not None:
                domain.terminate()
            self.sweep_and_broadcast()
            return True
        if verb == "stats":
            from repro.core import get_accountant

            domains = {}
            for name, capability in self.bindings.items():
                domain = getattr(capability, "creator", None)
                if domain is not None:
                    domains[name] = {"domain": domain.name,
                                     "terminated": domain.terminated,
                                     **domain.stats}
            return {
                "pid": os.getpid(),
                "bindings": sorted(self.bindings),
                "exports": len(self.exports),
                "accounts": get_accountant().report(),
                "domains": domains,
            }
        if verb == "ping":
            return "pong"
        if verb == "shutdown":
            threading.Thread(
                target=lambda: (time.sleep(0.05), os._exit(0)),
                daemon=True,
            ).start()
            return True
        raise ProtocolError(f"unknown control verb {verb!r}")


def _host_main(path, setup, parent_pid):
    """Child-process entry: build bindings, serve LRMI forever."""
    bindings = setup()
    if not isinstance(bindings, dict) or not bindings:
        raise TypeError("setup() must return a non-empty {name: Capability}")
    kernel = _HostKernel(bindings)

    def sweeper():
        while True:
            time.sleep(SWEEP_INTERVAL)
            # Orphan check against the REAL parent pid captured at fork:
            # comparing against 1 would self-destruct every host when
            # the parent itself runs as PID 1 (containers).
            if os.getppid() != parent_pid:
                os._exit(0)  # orphaned: the parent died
            kernel.sweep_and_broadcast()

    threading.Thread(target=sweeper, daemon=True,
                     name="lrmi-host-sweeper").start()

    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(16)

    def serve(conn_sock):
        connection = _Connection(conn_sock, None,
                                 dispatcher=kernel.handle_control)
        connection.peer = _ConnectionPeer(kernel, connection)
        kernel.register_connection(connection)
        try:
            connection.serve_loop()
        finally:
            kernel.unregister_connection(connection)

    while True:
        conn_sock, _ = listener.accept()
        threading.Thread(target=serve, args=(conn_sock,), daemon=True,
                         name="lrmi-host-conn").start()


class DomainHostProcess:
    """Forks a child hosting out-of-process domains behind LRMI.

    ``setup`` runs **in the child** after fork and returns
    ``{name: Capability}`` — the host's published bindings (looked up by
    :meth:`DomainClient.lookup`).  Closures are fine; nothing is pickled.
    """

    def __init__(self, setup, name="domain-host"):
        self.name = name
        self.path = os.path.join(
            tempfile.gettempdir(),
            f"repro-lrmi-{uuid.uuid4().hex[:12]}.sock",
        )
        self._setup = setup
        self._pid = None

    @property
    def pid(self):
        return self._pid

    def start(self):
        if os.path.exists(self.path):
            # Restart-in-place after a crash: the dead host's socket
            # file survives it and would make the child's bind fail.
            try:
                os.unlink(self.path)
            except OSError:
                pass
        parent_pid = os.getpid()
        pid = os.fork()
        if pid == 0:
            status = 0
            try:
                _host_main(self.path, self._setup, parent_pid)
            except BaseException:
                # Print BEFORE exiting: a bare os._exit would swallow a
                # setup() failure entirely, leaving the parent's generic
                # "died during startup" as the only (useless) signal.
                import traceback

                traceback.print_exc()
                status = 1
            finally:
                os._exit(status)
        self._pid = pid
        self._wait_for_socket()
        return self

    def _wait_for_socket(self, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive():
                raise DomainUnavailableException(
                    f"domain host {self.name!r} died during startup"
                )
            if os.path.exists(self.path):
                try:
                    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    probe.connect(self.path)
                    probe.close()
                    return
                except OSError:
                    pass
            time.sleep(0.005)
        raise DomainUnavailableException(
            f"domain host {self.name!r} socket did not appear"
        )

    def alive(self):
        if self._pid is None:
            return False
        try:
            pid, _status = os.waitpid(self._pid, os.WNOHANG)
        except ChildProcessError:
            return False
        if pid == self._pid:
            self._pid = None
            return False
        return True

    def stop(self):
        if self._pid is not None:
            try:
                os.kill(self._pid, 9)
                os.waitpid(self._pid, 0)
            except OSError:
                pass
            self._pid = None
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


# -- the client ---------------------------------------------------------------

class DomainClient(_Peer):
    """Parent-side peer: pooled connections to one domain host.

    Robustness knobs (all off by default, preserving PR-5 behaviour):

    * ``call_deadline`` — seconds bounding each whole round trip; on
      expiry the call raises :class:`DomainUnavailableException`
      instead of waiting out per-recv socket timeouts one by one.
    * ``retries``/``backoff`` — bounded retry with exponential backoff
      after a transport failure, applied ONLY to idempotent work:
      control verbs in :data:`IDEMPOTENT_CONTROL` and methods the
      caller declared via ``idempotent=``.  Each attempt acquires a
      fresh connection (the failed one was closed by the error path).
    """

    def __init__(self, path, timeout=CALL_TIMEOUT, pool_size=4, *,
                 call_deadline=None, retries=0, backoff=0.05,
                 idempotent=()):
        super().__init__()
        self.path = path
        self.timeout = timeout
        self.pool_size = pool_size
        self.call_deadline = call_deadline
        self.retries = retries
        self.backoff = backoff
        self._idempotent = frozenset(idempotent)
        self._free = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self._evicted = 0

    # -- connection pool ---------------------------------------------------
    def _connect(self):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.path)
        except OSError as exc:
            sock.close()
            raise DomainUnavailableException(
                f"cannot reach domain host at {self.path}: {exc}"
            ) from None
        return _Connection(sock, self)

    @staticmethod
    def _healthy(connection):
        """Checkout validation for a pooled idle connection.

        A dead peer shows up as a readable socket whose peek returns
        b"" (EOF).  A readable socket with pending *data* is healthy:
        it is a revocation broadcast queued while the connection sat
        in the pool, which the next ``_await`` loop consumes normally.
        """
        sock = connection.sock
        try:
            readable, _, _ = select.select([sock], [], [], 0)
            if not readable:
                return True
            return bool(sock.recv(1, socket.MSG_PEEK))
        except (OSError, ValueError):
            return False

    def _acquire(self):
        if self._closed:
            raise DomainUnavailableException("domain client closed")
        while True:
            with self._pool_lock:
                if not self._free:
                    break
                connection = self._free.pop()
            if self._healthy(connection):
                return connection
            with self._pool_lock:
                self._evicted += 1
            connection.close()
        return self._connect()

    @property
    def evicted(self):
        """Half-dead pooled connections dropped at checkout (for tests)."""
        with self._pool_lock:
            return self._evicted

    def _release(self, connection):
        if connection.closed:
            return
        with self._pool_lock:
            if not self._closed and len(self._free) < self.pool_size:
                self._free.append(connection)
                return
        connection.close()

    def _round_trip(self, opcode, request, retry=False):
        deadline = None
        if self.call_deadline is not None:
            deadline = time.monotonic() + self.call_deadline
        attempts = 1 + (self.retries if retry else 0)
        delay = self.backoff
        for attempt in range(attempts):
            try:
                # _acquire is inside the retry: during a host outage the
                # failure IS the dial (connection refused), and retrying
                # only the round trip would never bridge a restart.
                connection = self._acquire()
                try:
                    return connection.call(opcode, request,
                                           deadline=deadline)
                finally:
                    self._release(connection)
            except DomainUnavailableException:
                if attempt + 1 >= attempts or self._closed:
                    raise
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                time.sleep(min(delay, 1.0))
                delay *= 2

    # -- peer interface ----------------------------------------------------
    def call(self, export_id, method, args, kwargs):
        return self._round_trip(
            OP_CALL, (export_id, method, args, kwargs),
            retry=method in self._idempotent,
        )

    def control(self, verb, *args):
        return self._round_trip(
            OP_CONTROL, (verb, args), retry=verb in IDEMPOTENT_CONTROL,
        )

    # -- convenience -------------------------------------------------------
    def lookup(self, name):
        """Proxy for a host binding (a cross-process capability)."""
        capability = self.control("lookup", name)
        if not isinstance(capability, RemoteCapability):
            raise ProtocolError(
                f"lookup({name!r}) did not yield a capability"
            )
        return capability

    def stats(self):
        return self.control("stats")

    def terminate(self, name):
        """Terminate the domain behind a binding (revokes its exports)."""
        return self.control("terminate", name)

    def close(self):
        with self._pool_lock:
            self._closed = True
            connections, self._free = self._free, []
        for connection in connections:
            try:
                connection._send(OP_BYE, 0, b"")
            except (OSError, WireError):
                pass
            connection.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def connect(host, **kwargs):
    """Client for a started :class:`DomainHostProcess`; keyword options
    are forwarded to :class:`DomainClient` (deadline/retry knobs)."""
    return DomainClient(host.path, **kwargs)
