"""OS IPC substrate for Table 2: local RPC between real processes and a
COM-like component model with in-proc and out-of-proc activation."""

from .com import (
    IN_PROC,
    OUT_OF_PROC,
    ComError,
    ComHost,
    ComInterface,
    ComRegistry,
    InterfacePointer,
    connect_proxy,
    create_instance,
)
from .ntrpc import RpcClient, RpcError, RpcServerProcess, null_server
from .wire import WireError, recv_frame, send_frame

__all__ = [
    "ComError",
    "ComHost",
    "ComInterface",
    "ComRegistry",
    "IN_PROC",
    "InterfacePointer",
    "OUT_OF_PROC",
    "RpcClient",
    "RpcError",
    "RpcServerProcess",
    "WireError",
    "connect_proxy",
    "create_instance",
    "null_server",
    "recv_frame",
    "send_frame",
]
