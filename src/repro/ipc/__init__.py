"""OS IPC substrate: local RPC between real processes, a COM-like
component model with in-proc and out-of-proc activation (Table 2), and
the cross-process LRMI transport that deploys whole J-Kernel domains
out-of-process behind marshalling capability proxies."""

from .com import (
    IN_PROC,
    OUT_OF_PROC,
    ComError,
    ComHost,
    ComInterface,
    ComRegistry,
    InterfacePointer,
    connect_proxy,
    create_instance,
)
from .lrmi import (
    DomainClient,
    DomainHostProcess,
    ExportTable,
    ProtocolError,
    RemoteCapability,
    connect,
    exported_methods,
)
from .ntrpc import (
    PING_METHOD,
    RpcClient,
    RpcDeadlineError,
    RpcError,
    RpcHandlerError,
    RpcMethodNotFound,
    RpcServer,
    RpcServerProcess,
    RpcTransportError,
    null_server,
)
from .wire import WireError, recv_frame, send_frame

__all__ = [
    "ComError",
    "ComHost",
    "ComInterface",
    "ComRegistry",
    "DomainClient",
    "DomainHostProcess",
    "ExportTable",
    "IN_PROC",
    "InterfacePointer",
    "OUT_OF_PROC",
    "PING_METHOD",
    "ProtocolError",
    "RemoteCapability",
    "RpcClient",
    "RpcDeadlineError",
    "RpcError",
    "RpcHandlerError",
    "RpcMethodNotFound",
    "RpcServer",
    "RpcServerProcess",
    "RpcTransportError",
    "WireError",
    "connect",
    "connect_proxy",
    "create_instance",
    "exported_methods",
    "null_server",
    "recv_frame",
    "send_frame",
]
