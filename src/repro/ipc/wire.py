"""Length-prefixed message framing over stream sockets.

The shared wire layer of the NT-RPC and COM out-of-proc analogues: a frame
is a 4-byte big-endian length followed by that many payload bytes.
"""

from __future__ import annotations

import struct

_LEN = struct.Struct(">I")

MAX_FRAME = 64 * 1024 * 1024

#: Fault-injection hook (``repro.testing.chaos``): None in production —
#: one pointer test per send — or a ChaosConfig whose ``before_send``
#: may delay, truncate or drop the frame.  Installed by the chaos
#: harness, inherited by forked workers/hosts.
_chaos = None


class WireError(Exception):
    """Framing violation or unexpected connection close."""


def send_frame(sock, payload):
    if len(payload) > MAX_FRAME:
        raise WireError(f"frame too large: {len(payload)}")
    data = _LEN.pack(len(payload)) + payload
    if _chaos is not None:
        data = _chaos.before_send(sock, data)
    sock.sendall(data)


def recv_exact(sock, count):
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock):
    header = recv_exact(sock, 4)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame too large: {length}")
    if length == 0:
        return b""
    return recv_exact(sock, length)
