"""Length-prefixed message framing over stream sockets.

The shared wire layer of the NT-RPC and COM out-of-proc analogues: a frame
is a 4-byte big-endian length followed by that many payload bytes.

Hot-path shape (the compiled-xproc-wire rework):

* sends are **scatter-gather** — the header and payload (or several
  payload parts) go out through one ``sendmsg`` call without ever being
  concatenated into a fresh bytes object;
* receives fill **preallocated buffers** via ``recv_into`` instead of
  accumulating a chunk list and re-joining it;
* a frame may carry **file descriptors** (``SCM_RIGHTS`` over AF_UNIX),
  delivered with the first byte of the frame's segment — the transport
  behind reply streaming, where a domain host writes an HTTP response
  straight to the client socket the master passed it.

The chaos hook still sees the *logical frame* (header + payload as one
byte string): when fault injection is armed the parts are joined first,
so truncation/drop faults cut the frame exactly where they always did.
"""

from __future__ import annotations

import socket
import struct

_LEN = struct.Struct(">I")

MAX_FRAME = 64 * 1024 * 1024

#: Fault-injection hook (``repro.testing.chaos``): None in production —
#: one pointer test per send — or a ChaosConfig whose ``before_send``
#: may delay, truncate or drop the frame.  Installed by the chaos
#: harness, inherited by forked workers/hosts.
_chaos = None

#: Ancillary buffer sized for the most fds one frame may carry.
MAX_FDS = 16


class WireError(Exception):
    """Framing violation or unexpected connection close."""


def _sendmsg_all(sock, parts, fds=()):
    """One scatter-gather send of ``parts`` (bytes-like), short-write
    safe.  ``fds`` ride as SCM_RIGHTS ancillary data on the first
    segment, so the receiver gets them with the frame's first byte."""
    ancdata = ()
    if fds:
        import array

        ancdata = [(socket.SOL_SOCKET, socket.SCM_RIGHTS,
                    array.array("i", fds).tobytes())]
    sent = sock.sendmsg(parts, ancdata)
    total = sum(len(part) for part in parts)
    if sent >= total:
        return
    # Short write (kernel buffer boundary): finish with sendall over the
    # unsent suffix.  The fds went out with the first byte, so the
    # ancillary payload is never re-sent.
    rest = b"".join(bytes(part) for part in parts)[sent:]
    sock.sendall(rest)


def send_frame(sock, payload, *, fds=()):
    if len(payload) > MAX_FRAME:
        raise WireError(f"frame too large: {len(payload)}")
    header = _LEN.pack(len(payload))
    if _chaos is not None:
        data = _chaos.before_send(sock, header + bytes(payload))
        sock.sendall(data)
        return
    _sendmsg_all(sock, (header, payload), fds)


def send_prefixed(sock, data):
    """Send one frame whose 4-byte length prefix is ALREADY packed into
    ``data`` — for hot-path composers that build constant-shaped frames
    (header included) in a single struct pack.  The chaos hook still
    sees the identical logical frame."""
    if _chaos is not None:
        sock.sendall(_chaos.before_send(sock, bytes(data)))
        return
    sock.sendall(data)


def send_frame_parts(sock, parts, *, fds=()):
    """Send one logical frame whose payload is scattered across
    ``parts`` (a sequence of bytes-likes) without concatenating them."""
    total = sum(len(part) for part in parts)
    if total > MAX_FRAME:
        raise WireError(f"frame too large: {total}")
    header = _LEN.pack(total)
    if _chaos is not None:
        frame = bytearray(header)
        for part in parts:
            frame += part
        data = _chaos.before_send(sock, bytes(frame))
        sock.sendall(data)
        return
    _sendmsg_all(sock, (header, *parts), fds)


def recv_exact_into(sock, view):
    """Fill the whole memoryview from the socket (``recv_into`` loop)."""
    remaining = len(view)
    while remaining:
        received = sock.recv_into(view[len(view) - remaining:])
        if not received:
            raise WireError("connection closed mid-frame")
        remaining -= received


def recv_exact(sock, count, scratch=None):
    """``count`` bytes from the socket, as bytes.

    With ``scratch`` (a bytearray at least ``count`` long) the fill goes
    through the caller's preallocated buffer; otherwise a fresh
    bytearray of exactly ``count`` bytes is filled — either way a
    ``recv_into`` loop, never a chunk-list join.
    """
    if scratch is not None and len(scratch) >= count:
        view = memoryview(scratch)[:count]
        recv_exact_into(sock, view)
        return bytes(view)
    buffer = bytearray(count)
    recv_exact_into(sock, memoryview(buffer))
    return bytes(buffer)


def recv_frame(sock, scratch=None):
    header = recv_exact(sock, 4, scratch)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame too large: {length}")
    if length == 0:
        return b""
    return recv_exact(sock, length, scratch)


def decode_fds(ancdata):
    """File descriptors carried in ``recvmsg`` ancillary data."""
    import array

    fds = []
    for level, kind, data in ancdata:
        if level == socket.SOL_SOCKET and kind == socket.SCM_RIGHTS:
            received = array.array("i")
            received.frombytes(data[: len(data) - len(data) % received.itemsize])
            fds.extend(received)
    return fds


def fd_ancillary_space(max_fds=MAX_FDS):
    """Ancillary buffer size for ``recvmsg`` to accept up to ``max_fds``."""
    import array

    return socket.CMSG_SPACE(max_fds * array.array("i").itemsize)
