"""Length-prefixed message framing over stream sockets.

The shared wire layer of the NT-RPC and COM out-of-proc analogues: a frame
is a 4-byte big-endian length followed by that many payload bytes.
"""

from __future__ import annotations

import struct

_LEN = struct.Struct(">I")

MAX_FRAME = 64 * 1024 * 1024


class WireError(Exception):
    """Framing violation or unexpected connection close."""


def send_frame(sock, payload):
    if len(payload) > MAX_FRAME:
        raise WireError(f"frame too large: {len(payload)}")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def recv_exact(sock, count):
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock):
    header = recv_exact(sock, 4)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame too large: {length}")
    if length == 0:
        return b""
    return recv_exact(sock, length)
