"""Per-connection shared-memory bulk ring for the cross-process wire.

Payloads above the LRMI inline threshold do not ride the socket: the
sender serializes into a ``multiprocessing.shared_memory`` segment it
owns and sends a tiny *grant* frame — ``(generation, offset, length)``
— instead.  The receiver maps the same segment (announced once, by
name, over the socket) and deserializes straight out of it.

Why a bump allocator with wrap-around is enough
-----------------------------------------------

The LRMI protocol is strictly nested request/reply on each connection:
a peer fully *consumes* (deserializes, copying every byte into Python
objects) an inbound grant before it sends anything back.  So by the
time the granting side sees any inbound frame, its previous outbound
grant is dead — there is never more than one live grant per direction,
and reusing the region (including wrapping to offset 0 when the tail
is too short) can never overwrite bytes a peer still needs.

Failure handling
----------------

* **generation check** — every grant carries the ring's generation (a
  fresh value per created ring); a grant whose generation does not
  match the announced ring (a respawned host replaying state, a
  desynchronized stream) is refused with a typed error, never read.
* **too large** — a payload that cannot fit the ring at all falls back
  to the inline socket frame; the ring is an optimization, not a
  protocol requirement.
* **crash mid-grant** — both ends unlink the segment on close (POSIX
  ``shm_unlink`` by name is idempotent; the second call is a no-op),
  so whichever side survives a crash reclaims the name and the memory.

The segments are deliberately *not* managed by multiprocessing's
``resource_tracker``: the tracker assumes fork-inherited ownership and
would unlink live rings (or warn about already-unlinked ones) when any
one process exits.  Lifetime here is explicit — ``close()`` on both
ends — so registration is suppressed at construction.  (Register-then-
unregister does not work: creator and attacher share one forked tracker
whose cache is a *set*, so the two registrations collapse and the
second unregistration crashes the tracker thread with a KeyError.)
"""

from __future__ import annotations

import contextlib
import itertools
import os
import struct
import threading

GRANT = struct.Struct(">III")  # generation, offset, length

_generation = itertools.count(
    (os.getpid() & 0xFFFF) << 16 | 1
).__next__


class RingError(Exception):
    """A grant that cannot be honored (stale generation, bad bounds)."""


_tracker_lock = threading.Lock()


@contextlib.contextmanager
def _untracked():
    """Create/attach/unlink a SharedMemory without resource_tracker
    involvement.  Unregister must be silenced alongside register: an
    unlink of a never-registered segment would otherwise spawn a tracker
    process just to log a KeyError about a name it was told to forget."""
    from multiprocessing import resource_tracker

    noop = lambda name, rtype: None  # noqa: E731
    with _tracker_lock:
        original_register = resource_tracker.register
        original_unregister = resource_tracker.unregister
        resource_tracker.register = noop
        resource_tracker.unregister = noop
        try:
            yield
        finally:
            resource_tracker.register = original_register
            resource_tracker.unregister = original_unregister


class BulkRing:
    """One shared-memory segment with a bump allocator (sender side)
    or a validated read window (receiver side)."""

    __slots__ = ("shm", "name", "size", "generation", "_next", "_owner")

    def __init__(self, shm, generation, owner):
        self.shm = shm
        self.name = shm.name
        self.size = shm.size
        self.generation = generation
        self._next = 0
        self._owner = owner

    @classmethod
    def create(cls, size):
        from multiprocessing.shared_memory import SharedMemory

        with _untracked():
            shm = SharedMemory(create=True, size=size)
        return cls(shm, _generation() & 0xFFFFFFFF, owner=True)

    @classmethod
    def attach(cls, name, generation):
        from multiprocessing.shared_memory import SharedMemory

        with _untracked():
            shm = SharedMemory(name=name)
        return cls(shm, generation, owner=False)

    # -- sender ------------------------------------------------------------
    def grant(self, payload):
        """Copy ``payload`` into the ring; returns the packed grant
        header, or None when the payload cannot fit at all (caller
        falls back to an inline frame)."""
        length = len(payload)
        if length > self.size:
            return None
        offset = self._next
        if offset + length > self.size:
            offset = 0  # wrap: the tail is too short
        self._next = offset + length
        self.shm.buf[offset:offset + length] = payload
        return GRANT.pack(self.generation, offset, length)

    def grant_parts(self, parts):
        """Like :meth:`grant` but scatters several bytes-likes into one
        contiguous granted region, so callers never concatenate."""
        length = sum(len(part) for part in parts)
        if length > self.size:
            return None
        offset = self._next
        if offset + length > self.size:
            offset = 0  # wrap: the tail is too short
        self._next = offset + length
        cursor = offset
        buf = self.shm.buf
        for part in parts:
            buf[cursor:cursor + len(part)] = part
            cursor += len(part)
        return GRANT.pack(self.generation, offset, length)

    # -- receiver ----------------------------------------------------------
    def view(self, generation, offset, length):
        """The granted bytes as a zero-copy memoryview, after checking
        the grant against this ring's announced generation and bounds."""
        if generation != self.generation:
            raise RingError(
                f"grant generation {generation} does not match ring "
                f"generation {self.generation} (stale ring?)"
            )
        if offset + length > self.size:
            raise RingError(
                f"grant [{offset}:{offset + length}] exceeds ring size "
                f"{self.size}"
            )
        return self.shm.buf[offset:offset + length]

    # -- lifecycle ---------------------------------------------------------
    def close(self):
        """Unmap and unlink; returns the number of *swallowed* failures.

        Both ends call this; unlink-by-name is idempotent, so a crash on
        either side leaves no segment behind as long as the survivor
        closes.  A ``BufferError`` here means a consumer leaked a live
        :meth:`view` export — the mapping stays pinned until GC — so the
        count is surfaced in connection stats rather than silently
        ``pass``-ed.  (Unlink failures are *expected* — the peer usually
        unlinked first — and are not counted.)
        """
        failures = 0
        try:
            self.shm.close()
        except (OSError, BufferError):
            failures += 1
        with _untracked():
            try:
                self.shm.unlink()
            except OSError:  # includes FileNotFoundError: peer beat us
                pass
        return failures

    def __repr__(self):
        role = "owner" if self._owner else "attached"
        return (f"<BulkRing {self.name} {self.size}B "
                f"gen={self.generation} ({role})>")
