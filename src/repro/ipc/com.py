"""A COM-like component model (Table 2's in-proc / out-of-proc pair).

COM's essential mechanics, reproduced:

* components implement *interfaces* identified by IIDs; method dispatch is
  through a vtable (an ordered method list), so an in-proc call is one
  indirection plus the call — "COM in-proc" in Table 2 is exactly this;
* classes register under CLSIDs in a registry;
* ``create_instance`` activates either in-process (returns a vtable-backed
  interface pointer) or out-of-process (spawns/uses a component host
  process and returns a proxy whose vtable marshals each call over the
  NT-RPC substrate — the ~3-orders-of-magnitude-slower path).
"""

from __future__ import annotations

import struct

from .ntrpc import RpcClient, RpcError, RpcServerProcess

IN_PROC = "in-proc"
OUT_OF_PROC = "out-of-proc"

_PACK_U32 = struct.Struct(">I")


class ComError(Exception):
    pass


class ComInterface:
    """An interface definition: an IID plus an ordered method list."""

    def __init__(self, iid, methods):
        self.iid = iid
        self.methods = tuple(methods)

    def vtable_index(self, method_name):
        try:
            return self.methods.index(method_name)
        except ValueError:
            raise ComError(f"{self.iid} has no method {method_name}") from None


class InterfacePointer:
    """An activated interface: a vtable plus a receiver.

    ``ptr.invoke(index, *args)`` is the COM calling convention; the
    convenience ``ptr.method(name)`` resolves an index once so hot loops
    pay only the vtable indirection.
    """

    def __init__(self, interface, vtable):
        self.interface = interface
        self._vtable = vtable

    def invoke(self, index, *args):
        return self._vtable[index](*args)

    def method(self, name):
        return self._vtable[self.interface.vtable_index(name)]

    def query_interface(self, iid):
        if iid != self.interface.iid:
            raise ComError(f"E_NOINTERFACE: {iid}")
        return self


class ComRegistry:
    """CLSID -> (factory, interface) registrations."""

    def __init__(self):
        self._classes = {}

    def register_class(self, clsid, factory, interface):
        self._classes[clsid] = (factory, interface)

    def lookup(self, clsid):
        entry = self._classes.get(clsid)
        if entry is None:
            raise ComError(f"REGDB_E_CLASSNOTREG: {clsid}")
        return entry


def _build_vtable(component, interface):
    return tuple(
        getattr(component, method_name) for method_name in interface.methods
    )


def _encode_args(args):
    # Only flat int/bytes/str arguments cross the COM wire here; richer
    # marshalling belongs to the J-Kernel layer, not this baseline.
    parts = [_PACK_U32.pack(len(args))]
    for arg in args:
        if isinstance(arg, int):
            parts.append(b"i" + struct.pack(">q", arg))
        elif isinstance(arg, bytes):
            parts.append(b"b" + _PACK_U32.pack(len(arg)) + arg)
        elif isinstance(arg, str):
            encoded = arg.encode("utf-8")
            parts.append(b"s" + _PACK_U32.pack(len(encoded)) + encoded)
        else:
            raise ComError(f"unmarshalable argument {type(arg).__name__}")
    return b"".join(parts)


def _decode_args(data):
    (count,) = _PACK_U32.unpack_from(data, 0)
    offset = 4
    args = []
    for _ in range(count):
        kind = data[offset:offset + 1]
        offset += 1
        if kind == b"i":
            (value,) = struct.unpack_from(">q", data, offset)
            offset += 8
        else:
            (length,) = _PACK_U32.unpack_from(data, offset)
            offset += 4
            raw = data[offset:offset + length]
            offset += length
            value = raw.decode("utf-8") if kind == b"s" else raw
        args.append(value)
    return args


class ComHost:
    """The out-of-proc component host: one process serving one CLSID."""

    def __init__(self, registry, clsid):
        factory, interface = registry.lookup(clsid)
        component = factory()
        vtable = _build_vtable(component, interface)

        def dispatch(payload):
            (index,) = _PACK_U32.unpack_from(payload, 0)
            args = _decode_args(payload[4:])
            result = vtable[index](*args)
            return _encode_args([result if result is not None else 0])

        self.interface = interface
        self._server = RpcServerProcess({"invoke": dispatch})

    def start(self):
        self._server.start()
        return self

    def stop(self):
        self._server.stop()

    @property
    def socket_path(self):
        return self._server.path

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


class _ProxyMethod:
    __slots__ = ("_client", "_index")

    def __init__(self, client, index):
        self._client = client
        self._index = index

    def __call__(self, *args):
        payload = _PACK_U32.pack(self._index) + _encode_args(args)
        try:
            reply = self._client.call("invoke", payload)
        except RpcError as exc:
            raise ComError(f"RPC_E_FAULT: {exc}") from None
        return _decode_args(reply)[0]


def connect_proxy(host):
    """Interface pointer whose vtable marshals to the host process."""
    client = RpcClient(host.socket_path).connect()
    vtable = tuple(
        _ProxyMethod(client, index)
        for index in range(len(host.interface.methods))
    )
    pointer = InterfacePointer(host.interface, vtable)
    pointer._rpc_client = client  # keep the connection alive with the ptr
    return pointer


def create_instance(registry, clsid, context=IN_PROC):
    """CoCreateInstance: activate a registered class in- or out-of-proc."""
    factory, interface = registry.lookup(clsid)
    if context == IN_PROC:
        component = factory()
        return InterfacePointer(interface, _build_vtable(component, interface))
    if context == OUT_OF_PROC:
        host = ComHost(registry, clsid).start()
        pointer = connect_proxy(host)
        pointer._com_host = host  # host process lifetime tied to the pointer
        return pointer
    raise ComError(f"unknown activation context {context!r}")
