"""MiniJVM: the safe-language substrate of the J-Kernel reproduction.

A from-scratch stack-machine virtual machine with a typed classfile model,
a dataflow bytecode verifier, per-loader namespaces, green threads,
monitors, interface dispatch strategies and a mark-sweep collector.

See ``DESIGN.md`` §3.1 for the module map.
"""

from .asm import ClassAssembler, MethodAssembler, interface
from .classfile import (
    ACC_ABSTRACT,
    ACC_FINAL,
    ACC_INTERFACE,
    ACC_NATIVE,
    ACC_PRIVATE,
    ACC_PUBLIC,
    ACC_STATIC,
    ClassFile,
    ExceptionHandler,
    FieldDef,
    MethodDef,
)
from .errors import (
    ClassFormatError,
    ClassNotFoundError,
    DeadlockError,
    IllegalAccessError,
    IncompatibleClassChangeError,
    JThrowable,
    LinkageError,
    OutOfStepsError,
    VerifyError,
    VMError,
)
from .loader import ChainResolver, ClassLoader, DenyResolver, MapResolver, Resolver
from .machine import VM
from .profiles import MSVM, PROFILES, SUNVM, VMProfile, get_profile
from .values import JArray, JObject, i8, i32

__all__ = [
    "ACC_ABSTRACT",
    "ACC_FINAL",
    "ACC_INTERFACE",
    "ACC_NATIVE",
    "ACC_PRIVATE",
    "ACC_PUBLIC",
    "ACC_STATIC",
    "ChainResolver",
    "ClassAssembler",
    "ClassFile",
    "ClassFormatError",
    "ClassLoader",
    "ClassNotFoundError",
    "DeadlockError",
    "DenyResolver",
    "ExceptionHandler",
    "FieldDef",
    "IllegalAccessError",
    "IncompatibleClassChangeError",
    "JArray",
    "JObject",
    "JThrowable",
    "LinkageError",
    "MapResolver",
    "MethodAssembler",
    "MethodDef",
    "MSVM",
    "OutOfStepsError",
    "PROFILES",
    "Resolver",
    "SUNVM",
    "VerifyError",
    "VM",
    "VMError",
    "VMProfile",
    "i32",
    "i8",
    "interface",
    "get_profile",
]
