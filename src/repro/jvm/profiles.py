"""VM cost profiles.

The paper measures the same J-Kernel on two commercial VMs whose primitive
operations have very different costs (Table 1):

=======================  =======  =======
operation (µs)           MS-VM    Sun-VM
=======================  =======  =======
regular invocation        0.04     0.03
interface invocation      0.54     0.05
thread info lookup        0.55     0.29
acquire/release lock      0.20     1.91
J-Kernel LRMI             2.22     5.41
=======================  =======  =======

A profile bundles implementation strategies that reproduce those *shapes*:

* ``msvm`` — linear interface dispatch (expensive interface calls), thin
  locks (cheap), hashed current-thread lookup (expensive);
* ``sunvm`` — cached itable dispatch (cheap interface calls), heavyweight
  registry monitors (expensive), cached current-thread pointer (cheap).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dispatch import make_dispatcher
from .monitors import HeavyMonitorManager, ThinLockManager


@dataclass(frozen=True)
class VMProfile:
    """Implementation strategy selection for one VM instance."""

    name: str
    interface_dispatch: str  # "linear" | "cached"
    monitor_impl: str  # "thin" | "heavy"
    thread_lookup: str  # "hashed" | "cached"
    quantum: int = 64

    def make_dispatcher(self):
        return make_dispatcher(self.interface_dispatch)

    def make_monitor_manager(self):
        if self.monitor_impl == "thin":
            return ThinLockManager()
        if self.monitor_impl == "heavy":
            return HeavyMonitorManager()
        raise ValueError(f"unknown monitor strategy {self.monitor_impl!r}")


MSVM = VMProfile(
    name="msvm", interface_dispatch="linear", monitor_impl="thin",
    thread_lookup="hashed",
)

SUNVM = VMProfile(
    name="sunvm", interface_dispatch="cached", monitor_impl="heavy",
    thread_lookup="cached",
)

PROFILES = {"msvm": MSVM, "sunvm": SUNVM}


def get_profile(profile):
    """Accept a profile object or a profile name."""
    if isinstance(profile, VMProfile):
        return profile
    found = PROFILES.get(profile)
    if found is None:
        raise ValueError(
            f"unknown profile {profile!r}; available: {sorted(PROFILES)}"
        )
    return found
