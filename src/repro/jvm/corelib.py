"""Bootstrap classfiles for the MiniJVM core library.

These are the system classes every loader can see (unless a domain's
resolver deliberately hides or replaces them — the paper's §3.1 notes that
``Thread`` and ``System`` are precisely the classes the J-Kernel must
interpose on).
"""

from __future__ import annotations

from .asm import ClassAssembler
from .classfile import (
    ACC_FINAL,
    ACC_NATIVE,
    ACC_PRIVATE,
    ACC_PUBLIC,
    ACC_STATIC,
    CONSTRUCTOR_NAME,
)
from .instructions import (
    ALOAD,
    ARETURN,
    GETFIELD,
    INVOKESPECIAL,
    PUTFIELD,
    RETURN,
)

OBJECT = "java/lang/Object"
STRING = "java/lang/String"
THROWABLE = "java/lang/Throwable"

#: Exception class name -> superclass name.
EXCEPTION_HIERARCHY = {
    "java/lang/Exception": THROWABLE,
    "java/lang/Error": THROWABLE,
    "java/lang/RuntimeException": "java/lang/Exception",
    "java/lang/InterruptedException": "java/lang/Exception",
    "java/lang/NullPointerException": "java/lang/RuntimeException",
    "java/lang/ArithmeticException": "java/lang/RuntimeException",
    "java/lang/IndexOutOfBoundsException": "java/lang/RuntimeException",
    "java/lang/ArrayIndexOutOfBoundsException":
        "java/lang/IndexOutOfBoundsException",
    "java/lang/NegativeArraySizeException": "java/lang/RuntimeException",
    "java/lang/ClassCastException": "java/lang/RuntimeException",
    "java/lang/ArrayStoreException": "java/lang/RuntimeException",
    "java/lang/IllegalMonitorStateException": "java/lang/RuntimeException",
    "java/lang/IllegalArgumentException": "java/lang/RuntimeException",
    "java/lang/IllegalStateException": "java/lang/RuntimeException",
    "java/lang/IncompatibleClassChangeError": "java/lang/Error",
    "java/lang/UnsatisfiedLinkError": "java/lang/Error",
    "java/lang/ThreadDeath": "java/lang/Error",
}


def _object_classfile():
    ca = ClassAssembler(OBJECT, super_name=None)
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(RETURN)
    ca.native_method("equals", "(Ljava/lang/Object;)Z")
    ca.native_method("hashCode", "()I")
    ca.native_method("toString", "()Ljava/lang/String;")
    ca.native_method("wait", "()V")
    ca.native_method("notify", "()V")
    ca.native_method("notifyAll", "()V")
    return ca.build()


def _string_classfile():
    ca = ClassAssembler(STRING, flags=ACC_PUBLIC | ACC_FINAL)
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, OBJECT, CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    ca.native_method("length", "()I")
    ca.native_method("charAt", "(I)I")
    ca.native_method("concat", "(Ljava/lang/String;)Ljava/lang/String;")
    ca.native_method("substring", "(II)Ljava/lang/String;")
    ca.native_method("equalsString", "(Ljava/lang/String;)Z")
    ca.native_method("startsWith", "(Ljava/lang/String;)Z")
    ca.native_method("indexOf", "(I)I")
    ca.native_method("hashCode", "()I")
    ca.native_method("intern", "()Ljava/lang/String;")
    ca.native_method("getBytes", "()[B")
    ca.native_method("fromBytes", "([B)Ljava/lang/String;",
                     ACC_PUBLIC | ACC_STATIC)
    ca.native_method("valueOfInt", "(I)Ljava/lang/String;",
                     ACC_PUBLIC | ACC_STATIC)
    return ca.build()


def _stringbuilder_classfile():
    ca = ClassAssembler("java/lang/StringBuilder", flags=ACC_PUBLIC | ACC_FINAL)
    ca.native_method(CONSTRUCTOR_NAME, "()V")
    ca.native_method("append",
                     "(Ljava/lang/String;)Ljava/lang/StringBuilder;")
    ca.native_method("appendInt", "(I)Ljava/lang/StringBuilder;")
    ca.native_method("toString", "()Ljava/lang/String;")
    return ca.build()


def _throwable_classfile():
    ca = ClassAssembler(THROWABLE)
    ca.field("message", "Ljava/lang/String;", ACC_PRIVATE)
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, OBJECT, CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    with ca.method(CONSTRUCTOR_NAME, "(Ljava/lang/String;)V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, OBJECT, CONSTRUCTOR_NAME, "()V")
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 1)
        m.emit(PUTFIELD, THROWABLE, "message")
        m.emit(RETURN)
    with ca.method("getMessage", "()Ljava/lang/String;") as m:
        m.emit(ALOAD, 0)
        m.emit(GETFIELD, THROWABLE, "message")
        m.emit(ARETURN)
    return ca.build()


def _exception_classfile(name, super_name):
    ca = ClassAssembler(name, super_name=super_name)
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, super_name, CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    with ca.method(CONSTRUCTOR_NAME, "(Ljava/lang/String;)V") as m:
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 1)
        m.emit(INVOKESPECIAL, super_name, CONSTRUCTOR_NAME,
               "(Ljava/lang/String;)V")
        m.emit(RETURN)
    return ca.build()


def _system_classfile():
    ca = ClassAssembler("java/lang/System", flags=ACC_PUBLIC | ACC_FINAL)
    static = ACC_PUBLIC | ACC_STATIC
    ca.native_method("println", "(Ljava/lang/String;)V", static)
    ca.native_method("printInt", "(I)V", static)
    ca.native_method("nanoTime", "()D", static)
    ca.native_method("identityHashCode", "(Ljava/lang/Object;)I", static)
    ca.native_method("arraycopy",
                     "(Ljava/lang/Object;ILjava/lang/Object;II)V", static)
    return ca.build()


def _thread_classfile():
    ca = ClassAssembler("java/lang/Thread")
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, OBJECT, CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    with ca.method("run", "()V") as m:
        m.emit(RETURN)
    ca.native_method("start", "()V")
    ca.native_method("stop", "()V")
    ca.native_method("stop", "(Ljava/lang/Throwable;)V")
    ca.native_method("suspend", "()V")
    ca.native_method("resume", "()V")
    ca.native_method("setPriority", "(I)V")
    ca.native_method("getPriority", "()I")
    ca.native_method("isAlive", "()Z")
    ca.native_method("join", "()V")
    static = ACC_PUBLIC | ACC_STATIC
    ca.native_method("currentThread", "()Ljava/lang/Thread;", static)
    ca.native_method("sleep", "(I)V", static)
    ca.native_method("yield", "()V", static)
    return ca.build()


def core_classfiles():
    """All bootstrap classfiles, in no particular order (loaded on demand)."""
    classfiles = [
        _object_classfile(),
        _string_classfile(),
        _stringbuilder_classfile(),
        _throwable_classfile(),
        _system_classfile(),
        _thread_classfile(),
    ]
    classfiles += [
        _exception_classfile(name, super_name)
        for name, super_name in EXCEPTION_HIERARCHY.items()
    ]
    return classfiles
