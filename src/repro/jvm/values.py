"""Value model and type descriptors for the MiniJVM.

Descriptors follow JVM syntax:

* ``I`` — 32-bit signed int (``Z`` boolean and ``B`` byte are views of it)
* ``D`` — double
* ``V`` — void (method returns only)
* ``Lpkg/Name;`` — reference to class ``pkg/Name``
* ``[I``, ``[B``, ``[D``, ``[Lpkg/Name;`` — arrays

At run time ints are Python ints wrapped to 32 bits, doubles are Python
floats, and references are :class:`JObject` / :class:`JArray` instances or
``None`` (null).  Reference unforgeability is structural: no instruction
converts an int to a reference, so guest code can only obtain references
through allocation, loads and calls.
"""

from __future__ import annotations

OBJECT = "java/lang/Object"
STRING = "java/lang/String"
THROWABLE = "java/lang/Throwable"

_INT_KINDS = frozenset("IZB")


def i32(value):
    """Wrap an int to 32-bit two's-complement, as JVM int arithmetic does."""
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def i8(value):
    """Wrap an int to 8-bit two's-complement (byte-array element storage)."""
    value &= 0xFF
    if value >= 0x80:
        value -= 0x100
    return value


def is_reference_descriptor(desc):
    return desc.startswith("L") or desc.startswith("[")


def class_name_of_descriptor(desc):
    """Class name for an ``L...;`` descriptor, else ``None``."""
    if desc.startswith("L") and desc.endswith(";"):
        return desc[1:-1]
    return None


def descriptor_of_class(name):
    return f"L{name};"


def verification_kind(desc):
    """Collapse a field descriptor to a verifier kind: 'I', 'D' or 'A'."""
    if desc in _INT_KINDS:
        return "I"
    if desc == "D":
        return "D"
    if is_reference_descriptor(desc):
        return "A"
    raise ValueError(f"bad field descriptor: {desc!r}")


def default_value(desc):
    """Zero value used to initialize fields and array elements."""
    kind = verification_kind(desc)
    if kind == "I":
        return 0
    if kind == "D":
        return 0.0
    return None


def parse_field_descriptor(desc, offset=0):
    """Parse one field descriptor starting at ``offset``.

    Returns ``(descriptor, next_offset)``.
    """
    ch = desc[offset]
    if ch in "IDZB":
        return ch, offset + 1
    if ch == "L":
        end = desc.index(";", offset)
        return desc[offset : end + 1], end + 1
    if ch == "[":
        element, end = parse_field_descriptor(desc, offset + 1)
        return "[" + element, end
    raise ValueError(f"bad descriptor at {offset} in {desc!r}")


def parse_method_descriptor(desc):
    """Parse ``(args)ret`` into ``(list_of_arg_descriptors, return_descriptor)``."""
    if not desc.startswith("("):
        raise ValueError(f"bad method descriptor: {desc!r}")
    args = []
    offset = 1
    while desc[offset] != ")":
        arg, offset = parse_field_descriptor(desc, offset)
        args.append(arg)
    offset += 1
    ret = desc[offset:]
    if ret != "V":
        ret, end = parse_field_descriptor(ret)
        if offset + len(ret) != len(desc) and end != len(desc) - offset:
            raise ValueError(f"trailing junk in descriptor: {desc!r}")
    return args, ret


class JObject:
    """A guest heap object: a class pointer plus one slot per instance field.

    ``native`` carries host-side payload for native-backed classes (strings,
    host handles); guest bytecode can never read it directly.
    ``lockword`` backs the thin-lock monitor implementation.
    """

    __slots__ = ("jclass", "fields", "native", "lockword", "__weakref__")

    def __init__(self, jclass, fields, native=None):
        self.jclass = jclass
        self.fields = fields
        self.native = native
        self.lockword = None

    def __repr__(self):
        return f"<JObject {self.jclass.name} at {id(self):#x}>"


class JArray:
    """A guest array: an array class pointer plus a Python list of elements."""

    __slots__ = ("jclass", "elems", "lockword", "__weakref__")

    def __init__(self, jclass, elems):
        self.jclass = jclass
        self.elems = elems
        self.lockword = None

    def __len__(self):
        return len(self.elems)

    def __repr__(self):
        return f"<JArray {self.jclass.name}[{len(self.elems)}] at {id(self):#x}>"
