"""Guest heap with per-owner allocation accounting.

The heap owns every guest object: allocation registers the object in a live
table, and the collector (``repro.jvm.gc``) frees unreachable entries.  Each
allocation is charged to an *owner* tag (the allocating domain), which is
how the reproduction implements the paper's resource-accounting discussion:
a domain is charged for the objects it allocates for as long as they remain
live, and domain termination (which revokes the domain's capabilities and
kills its threads) makes its garbage collectible — at which point the
charge disappears.
"""

from __future__ import annotations

from .values import JArray, JObject, default_value

_OBJECT_HEADER_BYTES = 16
_SLOT_BYTES = 8

_ELEMENT_BYTES = {"B": 1, "I": 4, "D": 8}

DEFAULT_OWNER = "<system>"


class HeapStats:
    """Mutable allocation counters for one owner tag."""

    __slots__ = ("allocated_objects", "allocated_bytes", "live_objects", "live_bytes")

    def __init__(self):
        self.allocated_objects = 0
        self.allocated_bytes = 0
        self.live_objects = 0
        self.live_bytes = 0

    def snapshot(self):
        return {
            "allocated_objects": self.allocated_objects,
            "allocated_bytes": self.allocated_bytes,
            "live_objects": self.live_objects,
            "live_bytes": self.live_bytes,
        }


class Heap:
    """Allocator + live-object table for one VM instance."""

    def __init__(self):
        self._live = {}  # id(obj) -> (obj, owner, size_bytes)
        self._stats = {}  # owner -> HeapStats

    # -- allocation ------------------------------------------------------
    def new_object(self, rtclass, owner=DEFAULT_OWNER):
        fields = [
            default_value(field_def.desc) for field_def in rtclass.instance_field_defs
        ]
        obj = JObject(rtclass, fields)
        size = _OBJECT_HEADER_BYTES + _SLOT_BYTES * len(fields)
        self._register(obj, owner, size)
        return obj

    def new_array(self, array_class, length, owner=DEFAULT_OWNER):
        element = array_class.array_element
        elems = [default_value(element)] * length
        arr = JArray(array_class, elems)
        size = _OBJECT_HEADER_BYTES + _ELEMENT_BYTES.get(element, 8) * length
        self._register(arr, owner, size)
        return arr

    def adopt(self, obj, owner=DEFAULT_OWNER, size=_OBJECT_HEADER_BYTES):
        """Register an externally-constructed guest object (native bridge)."""
        self._register(obj, owner, size)
        return obj

    def _register(self, obj, owner, size):
        self._live[id(obj)] = (obj, owner, size)
        stats = self._stats.get(owner)
        if stats is None:
            stats = self._stats[owner] = HeapStats()
        stats.allocated_objects += 1
        stats.allocated_bytes += size
        stats.live_objects += 1
        stats.live_bytes += size

    # -- collection support -----------------------------------------------
    def contains(self, obj):
        return id(obj) in self._live

    def live_objects(self):
        """Snapshot list of live guest objects (order unspecified)."""
        return [entry[0] for entry in self._live.values()]

    def free(self, obj):
        entry = self._live.pop(id(obj), None)
        if entry is None:
            return False
        _, owner, size = entry
        stats = self._stats[owner]
        stats.live_objects -= 1
        stats.live_bytes -= size
        return True

    # -- accounting ---------------------------------------------------------
    def stats(self, owner=DEFAULT_OWNER):
        return self._stats.get(owner) or HeapStats()

    def owners(self):
        return sorted(self._stats)

    def owner_of(self, obj):
        entry = self._live.get(id(obj))
        return entry[1] if entry is not None else None

    @property
    def live_count(self):
        return len(self._live)

    @property
    def live_bytes(self):
        return sum(stats.live_bytes for stats in self._stats.values())
