"""Programmatic assembler for MiniJVM classfiles.

The assembler is the trusted construction path used by the J-Kernel's stub
generator, the CS314 toolchain backend and the test suite.  It provides
labels, computes ``max_stack``/``max_locals`` automatically, and runs the
structural classfile check on ``build()``.

Example::

    ca = ClassAssembler("demo/Adder")
    with ca.method("add", "(II)I") as m:
        m.emit(ILOAD, 1)
        m.emit(ILOAD, 2)
        m.emit(IADD)
        m.emit(IRETURN)
    classfile = ca.build()
"""

from __future__ import annotations

from .classfile import (
    ACC_ABSTRACT,
    ACC_INTERFACE,
    ACC_NATIVE,
    ACC_PUBLIC,
    ACC_STATIC,
    ClassFile,
    ExceptionHandler,
    FieldDef,
    MethodDef,
    check_classfile,
)
from .errors import ClassFormatError
from .instructions import (
    ARETURN,
    ATHROW,
    BRANCH_OPCODES,
    DRETURN,
    GOTO,
    INVOKEINTERFACE,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    IRETURN,
    OPERAND_SHAPES,
    RETURN,
    TERMINAL_OPCODES,
)
from .values import OBJECT, parse_method_descriptor

_SIMPLE_EFFECTS = {
    "nop": (0, 0),
    "iconst": (0, 1),
    "dconst": (0, 1),
    "ldc_str": (0, 1),
    "aconst_null": (0, 1),
    "iload": (0, 1),
    "dload": (0, 1),
    "aload": (0, 1),
    "istore": (1, 0),
    "dstore": (1, 0),
    "astore": (1, 0),
    "iinc": (0, 0),
    "pop": (1, 0),
    "dup": (1, 2),
    "dup_x1": (2, 3),
    "swap": (2, 2),
    "iadd": (2, 1),
    "isub": (2, 1),
    "imul": (2, 1),
    "idiv": (2, 1),
    "irem": (2, 1),
    "ineg": (1, 1),
    "ishl": (2, 1),
    "ishr": (2, 1),
    "iand": (2, 1),
    "ior": (2, 1),
    "ixor": (2, 1),
    "dadd": (2, 1),
    "dsub": (2, 1),
    "dmul": (2, 1),
    "ddiv": (2, 1),
    "dneg": (1, 1),
    "dcmp": (2, 1),
    "i2d": (1, 1),
    "d2i": (1, 1),
    "goto": (0, 0),
    "ifeq": (1, 0),
    "ifne": (1, 0),
    "iflt": (1, 0),
    "ifle": (1, 0),
    "ifgt": (1, 0),
    "ifge": (1, 0),
    "if_icmpeq": (2, 0),
    "if_icmpne": (2, 0),
    "if_icmplt": (2, 0),
    "if_icmple": (2, 0),
    "if_icmpgt": (2, 0),
    "if_icmpge": (2, 0),
    "if_acmpeq": (2, 0),
    "if_acmpne": (2, 0),
    "ifnull": (1, 0),
    "ifnonnull": (1, 0),
    "new": (0, 1),
    "getfield": (1, 1),
    "putfield": (2, 0),
    "getstatic": (0, 1),
    "putstatic": (1, 0),
    "checkcast": (1, 1),
    "instanceof": (1, 1),
    "newarray": (1, 1),
    "arraylength": (1, 1),
    "baload": (2, 1),
    "bastore": (3, 0),
    "iaload": (2, 1),
    "iastore": (3, 0),
    "daload": (2, 1),
    "dastore": (3, 0),
    "aaload": (2, 1),
    "aastore": (3, 0),
    "return": (0, 0),
    "ireturn": (1, 0),
    "dreturn": (1, 0),
    "areturn": (1, 0),
    "athrow": (1, 0),
    "monitorenter": (1, 0),
    "monitorexit": (1, 0),
}

_INVOKES = frozenset({INVOKEVIRTUAL, INVOKEINTERFACE, INVOKESTATIC, INVOKESPECIAL})


def stack_effect(instr):
    """Return ``(pops, pushes)`` for one instruction tuple."""
    opcode = instr[0]
    if opcode in _INVOKES:
        args, ret = parse_method_descriptor(instr[3])
        pops = len(args) + (0 if opcode == INVOKESTATIC else 1)
        return pops, (0 if ret == "V" else 1)
    return _SIMPLE_EFFECTS[opcode]


class Label:
    """A forward-referencable branch target."""

    __slots__ = ("pc", "_name")

    def __init__(self, name=None):
        self.pc = None
        self._name = name

    def __repr__(self):
        name = self._name if self._name is not None else f"{id(self):#x}"
        return f"<Label {name} pc={self.pc}>"


class MethodAssembler:
    """Assembles one method body.  Usable as a context manager."""

    def __init__(self, name, desc, flags=ACC_PUBLIC):
        self.name = name
        self.desc = desc
        self.flags = flags
        self._code = []
        self._handlers = []

    # -- emission -----------------------------------------------------
    def emit(self, opcode, *operands):
        """Append one instruction; ``target`` operands may be Labels."""
        if opcode not in OPERAND_SHAPES:
            raise ClassFormatError(f"unknown opcode {opcode!r}")
        self._code.append((opcode, *operands))
        return len(self._code) - 1

    def label(self, name=None):
        return Label(name)

    def mark(self, label):
        """Bind ``label`` to the next instruction index."""
        if label.pc is not None:
            raise ClassFormatError(f"label bound twice: {label!r}")
        label.pc = len(self._code)
        return label

    def here(self):
        """A label bound to the next instruction index."""
        return self.mark(Label())

    def handler(self, start, end, target, catch_type=None):
        """Register an exception handler over ``[start, end)`` labels/pcs."""
        self._handlers.append((start, end, target, catch_type))

    # -- building -------------------------------------------------------
    def _resolve(self, value):
        if isinstance(value, Label):
            if value.pc is None:
                raise ClassFormatError(f"unbound label: {value!r}")
            return value.pc
        return value

    def build(self):
        code = []
        for instr in self._code:
            opcode = instr[0]
            if opcode in BRANCH_OPCODES:
                code.append((opcode, self._resolve(instr[1])))
            else:
                code.append(instr)
        code = tuple(code)
        handlers = tuple(
            ExceptionHandler(
                self._resolve(start), self._resolve(end), self._resolve(target), ct
            )
            for start, end, target, ct in self._handlers
        )
        max_stack = _compute_max_stack(self.name, code, handlers)
        max_locals = _compute_max_locals(self.desc, self.flags, code)
        return MethodDef(
            name=self.name,
            desc=self.desc,
            flags=self.flags,
            max_stack=max_stack,
            max_locals=max_locals,
            code=code,
            handlers=handlers,
        )

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


def _compute_max_stack(name, code, handlers):
    """Depth-only dataflow: computes the deepest stack; rejects inconsistent
    merge depths and stack underflow (the type verifier re-checks both)."""
    if not code:
        return 0
    depths = [None] * len(code)
    worklist = [(0, 0)]
    for handler in handlers:
        worklist.append((handler.handler_pc, 1))
    max_depth = 0
    while worklist:
        pc, depth = worklist.pop()
        if pc >= len(code):
            raise ClassFormatError(f"control flows past end of {name}")
        if depths[pc] is not None:
            if depths[pc] != depth:
                raise ClassFormatError(
                    f"inconsistent stack depth at pc={pc} in {name}"
                )
            continue
        depths[pc] = depth
        instr = code[pc]
        pops, pushes = stack_effect(instr)
        if depth < pops:
            raise ClassFormatError(f"stack underflow at pc={pc} in {name}")
        new_depth = depth - pops + pushes
        max_depth = max(max_depth, new_depth, depth)
        opcode = instr[0]
        if opcode in BRANCH_OPCODES:
            worklist.append((instr[1], new_depth))
        if opcode not in TERMINAL_OPCODES:
            worklist.append((pc + 1, new_depth))
    return max_depth


_LOCAL_OPS = frozenset(
    {"iload", "istore", "dload", "dstore", "aload", "astore", "iinc"}
)


def _compute_max_locals(desc, flags, code):
    args, _ = parse_method_descriptor(desc)
    count = len(args) + (0 if flags & ACC_STATIC else 1)
    for instr in code:
        if instr[0] in _LOCAL_OPS:
            count = max(count, instr[1] + 1)
    return count


class ClassAssembler:
    """Assembles one classfile."""

    def __init__(
        self, name, super_name=OBJECT, interfaces=(), flags=ACC_PUBLIC, source=None
    ):
        self.name = name
        self.super_name = super_name
        self.interfaces = tuple(interfaces)
        self.flags = flags
        self.source = source or "<assembled>"
        self._fields = []
        self._methods = []

    def field(self, name, desc, flags=ACC_PUBLIC):
        self._fields.append(FieldDef(name, desc, flags))
        return self

    def method(self, name, desc, flags=ACC_PUBLIC):
        assembler = MethodAssembler(name, desc, flags)
        self._methods.append(assembler)
        return assembler

    def native_method(self, name, desc, flags=ACC_PUBLIC):
        self._methods.append(MethodDef(name, desc, flags | ACC_NATIVE))
        return self

    def abstract_method(self, name, desc, flags=ACC_PUBLIC):
        self._methods.append(MethodDef(name, desc, flags | ACC_ABSTRACT))
        return self

    def build(self):
        methods = tuple(
            m.build() if isinstance(m, MethodAssembler) else m for m in self._methods
        )
        classfile = ClassFile(
            name=self.name,
            super_name=self.super_name,
            interfaces=self.interfaces,
            flags=self.flags,
            fields=tuple(self._fields),
            methods=methods,
            source=self.source,
        )
        check_classfile(classfile)
        return classfile


def interface(name, methods, extends=(), flags=ACC_PUBLIC):
    """Convenience constructor for an interface classfile.

    ``methods`` is an iterable of ``(name, desc)`` pairs.
    """
    ca = ClassAssembler(
        name, super_name=OBJECT, interfaces=extends, flags=flags | ACC_INTERFACE
    )
    for method_name, desc in methods:
        ca.abstract_method(method_name, desc)
    return ca.build()
