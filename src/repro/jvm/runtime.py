"""Runtime class representation and linking.

A :class:`RuntimeClass` is a loaded, laid-out class.  Identity matters: two
loaders that define a classfile with the same *name* produce two distinct,
mutually incompatible runtime classes — this is the namespace isolation the
paper builds protection domains out of.

Cross-loader type safety is preserved by two rules enforced here:

* overriding and interface implementation require the parameter and return
  classes of the two signatures to resolve to the *identical* runtime
  classes through each side's defining loader (the analogue of JVM loader
  constraints, checked eagerly at link time);
* assignability is computed over runtime-class identity, never over names.
"""

from __future__ import annotations

from .classfile import ACC_ABSTRACT, CONSTRUCTOR_NAME
from .errors import IncompatibleClassChangeError, LinkageError
from .values import (
    OBJECT,
    default_value,
    is_reference_descriptor,
    parse_method_descriptor,
)


class RuntimeClass:
    """A linked class, interface, or array class."""

    __slots__ = (
        "name",
        "classfile",
        "loader",
        "superclass",
        "interfaces",
        "is_interface",
        "instance_field_defs",
        "field_slots",
        "field_owners",
        "static_defs",
        "static_index",
        "static_slots",
        "vtable",
        "vindex",
        "declared",
        "all_interfaces",
        "array_element",
        "element_class",
        "native_bindings",
        "itables",
        "initialized",
        "copy_plan",
        "code_streams",
    )

    def __init__(self, name, classfile, loader, superclass, interfaces):
        self.name = name
        self.classfile = classfile
        self.loader = loader
        self.superclass = superclass
        self.interfaces = list(interfaces)
        self.is_interface = classfile.is_interface if classfile else False
        self.instance_field_defs = []
        self.field_slots = {}  # field name -> slot index
        self.field_owners = {}  # field name -> declaring RuntimeClass
        self.static_defs = []
        self.static_index = {}
        self.static_slots = []
        self.vtable = []  # list of (owner RuntimeClass, MethodDef)
        self.vindex = {}  # (name, desc) -> vtable index
        self.declared = {}  # (name, desc) -> MethodDef
        self.all_interfaces = set()
        self.array_element = None  # element descriptor for array classes
        self.element_class = None  # element RuntimeClass for reference arrays
        self.native_bindings = {}  # (name, desc) -> python callable
        self.itables = {}  # interface RuntimeClass -> {(name, desc) -> vtable idx}
        self.initialized = False
        self.copy_plan = None  # cached by repro.jkvm.copying on first crossing
        self.code_streams = {}  # (name, desc) -> threaded-code stream

    def __repr__(self):
        loader_name = getattr(self.loader, "name", "<boot>")
        return f"<RuntimeClass {self.name} loader={loader_name}>"

    # -- hierarchy ---------------------------------------------------------
    @property
    def is_array(self):
        return self.array_element is not None

    def is_subclass_of(self, other):
        cursor = self
        while cursor is not None:
            if cursor is other:
                return True
            cursor = cursor.superclass
        return False

    def is_assignable_to(self, other):
        """May a value of this class be stored where ``other`` is expected?"""
        if self is other:
            return True
        if other.is_interface:
            return other in self.all_interfaces
        if self.is_array:
            if other.name == OBJECT:
                return True
            if not other.is_array:
                return False
            if self.element_class is not None and other.element_class is not None:
                return self.element_class.is_assignable_to(other.element_class)
            return self.array_element == other.array_element
        return self.is_subclass_of(other)

    # -- member lookup --------------------------------------------------------
    def find_field(self, name):
        """Resolve an instance field by name.

        Inherited fields are merged into ``field_slots`` at layout time, so
        a single lookup suffices.  Returns ``(declaring_class, slot_index,
        FieldDef)`` or ``None``.
        """
        slot = self.field_slots.get(name)
        if slot is None:
            return None
        return self.field_owners[name], slot, self.instance_field_defs[slot]

    def find_static(self, name):
        """Resolve a static field by name up the hierarchy.

        Returns ``(declaring_class, index, FieldDef)`` or ``None``.
        """
        cursor = self
        while cursor is not None:
            index = cursor.static_index.get(name)
            if index is not None:
                return cursor, index, cursor.static_defs[index]
            cursor = cursor.superclass
        return None

    def find_declared(self, name, desc):
        """Resolve a method directly (statics, privates, constructors).

        Walks up the hierarchy; returns ``(declaring_class, MethodDef)`` or
        ``None``.
        """
        cursor = self
        while cursor is not None:
            method_def = cursor.declared.get((name, desc))
            if method_def is not None:
                return cursor, method_def
            cursor = cursor.superclass
        return None

    def find_interface_method(self, name, desc):
        """Find an abstract declaration in this interface or its supers."""
        if (name, desc) in self.declared:
            return self.declared[(name, desc)]
        for parent in self.interfaces:
            found = parent.find_interface_method(name, desc)
            if found is not None:
                return found
        return None

    def vtable_index(self, name, desc):
        return self.vindex.get((name, desc))


def make_array_class(element_desc, element_class, object_class, loader):
    """Build the runtime class for an array type.

    For primitive arrays ``element_class`` is None and ``element_desc`` is
    the primitive descriptor; for reference arrays the element descriptor
    is derived from the element class (which may itself be an array).
    """
    if element_class is None:
        element = element_desc
    elif element_class.is_array:
        element = element_class.name
    else:
        element = f"L{element_class.name};"
    rtclass = RuntimeClass("[" + element, None, loader, object_class, [])
    rtclass.array_element = element
    rtclass.element_class = element_class
    rtclass.vtable = list(object_class.vtable)
    rtclass.vindex = dict(object_class.vindex)
    return rtclass


def link_class(classfile, loader, superclass, interfaces, resolve):
    """Lay out and link one class.

    ``resolve(loader, class_name)`` loads/returns a RuntimeClass through a
    loader's namespace; it is supplied by ``repro.jvm.loader`` and may
    recursively trigger definition of other classes.
    """
    rtclass = RuntimeClass(classfile.name, classfile, loader, superclass, interfaces)

    _layout_fields(rtclass, classfile, superclass)
    _collect_interfaces(rtclass, superclass, interfaces)
    _build_dispatch(rtclass, classfile, superclass, resolve)
    if not classfile.is_interface and not _is_abstract(classfile):
        _check_interface_implementation(rtclass, resolve)
    return rtclass


def _is_abstract(classfile):
    return bool(classfile.flags & ACC_ABSTRACT)


def _layout_fields(rtclass, classfile, superclass):
    if superclass is not None:
        rtclass.instance_field_defs = list(superclass.instance_field_defs)
        rtclass.field_slots = dict(superclass.field_slots)
        rtclass.field_owners = dict(superclass.field_owners)
    for field_def in classfile.fields:
        if field_def.is_static:
            if field_def.name in rtclass.static_index:
                raise LinkageError(
                    f"duplicate static field {classfile.name}.{field_def.name}"
                )
            rtclass.static_index[field_def.name] = len(rtclass.static_defs)
            rtclass.static_defs.append(field_def)
            rtclass.static_slots.append(default_value(field_def.desc))
            continue
        if field_def.name in rtclass.field_slots:
            raise LinkageError(
                f"field {field_def.name} in {classfile.name} shadows an "
                "inherited field (shadowing is not supported)"
            )
        rtclass.field_slots[field_def.name] = len(rtclass.instance_field_defs)
        rtclass.field_owners[field_def.name] = rtclass
        rtclass.instance_field_defs.append(field_def)


def _collect_interfaces(rtclass, superclass, interfaces):
    if superclass is not None:
        rtclass.all_interfaces |= superclass.all_interfaces
    for iface in interfaces:
        if not iface.is_interface:
            raise IncompatibleClassChangeError(
                f"{rtclass.name} implements non-interface {iface.name}"
            )
        rtclass.all_interfaces.add(iface)
        rtclass.all_interfaces |= iface.all_interfaces


def _build_dispatch(rtclass, classfile, superclass, resolve):
    if superclass is not None and not classfile.is_interface:
        rtclass.vtable = list(superclass.vtable)
        rtclass.vindex = dict(superclass.vindex)

    for method_def in classfile.methods:
        rtclass.declared[method_def.key] = method_def
        if classfile.is_interface or method_def.is_static or method_def.is_private:
            continue
        if method_def.name == CONSTRUCTOR_NAME:
            continue
        existing = rtclass.vindex.get(method_def.key)
        if existing is not None:
            overridden_owner, overridden = rtclass.vtable[existing]
            _check_signature_identity(
                rtclass, method_def, overridden_owner, overridden, resolve
            )
            rtclass.vtable[existing] = (rtclass, method_def)
        else:
            rtclass.vindex[method_def.key] = len(rtclass.vtable)
            rtclass.vtable.append((rtclass, method_def))


def _check_interface_implementation(rtclass, resolve):
    for iface in rtclass.all_interfaces:
        for key, declaration in iface.declared.items():
            index = rtclass.vindex.get(key)
            if index is None:
                raise IncompatibleClassChangeError(
                    f"{rtclass.name} does not implement "
                    f"{iface.name}.{key[0]}{key[1]}"
                )
            owner, implementation = rtclass.vtable[index]
            _check_signature_identity(
                owner, implementation, iface, declaration, resolve
            )


def _check_signature_identity(owner_a, method_a, owner_b, method_b, resolve):
    """Loader-constraint analogue: the classes named in a shared signature
    must resolve identically through both defining loaders."""
    if owner_a.loader is owner_b.loader:
        return
    args, ret = parse_method_descriptor(method_a.desc)
    for desc in [*args, ret]:
        if not is_reference_descriptor(desc):
            continue
        name = _named_class(desc)
        if name is None:
            continue
        class_a = resolve(owner_a.loader, name)
        class_b = resolve(owner_b.loader, name)
        if class_a is not class_b:
            raise LinkageError(
                f"loader constraint violated: {name} resolves differently "
                f"for {owner_a.name} and {owner_b.name} "
                f"(method {method_a.name}{method_a.desc})"
            )


def _named_class(desc):
    while desc.startswith("["):
        desc = desc[1:]
    if desc.startswith("L") and desc.endswith(";"):
        return desc[1:-1]
    return None
