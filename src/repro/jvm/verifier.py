"""Dataflow bytecode verifier.

This module is the enforcement point for the paper's central premise:
*"the type system and the linker in a safe language restrict what operations
a particular piece of code is allowed to perform on which memory locations"*
(§2).  Untrusted classfiles pass through here before any instruction runs.

The verifier performs a standard abstract interpretation over types:

* verification types are ``'I'``, ``'D'``, ``'null'``, ``'TOP'`` (unusable)
  and ``('ref', RuntimeClass)``;
* frames (locals + operand stack) are merged at control-flow joins, with
  least-upper-bound over the class hierarchy for references;
* every instruction's operand types, local indices, stack bounds, branch
  targets, member resolutions and access rights are checked.

Interface assignability is deferred to run time (``INVOKEINTERFACE`` and
``CHECKCAST`` re-check), matching JVM practice.  Member access obeys the
static access control of §2: ``private`` members are usable only by the
declaring class, and resolution happens through the verifying class's own
loader namespace — so a class hidden from a domain simply fails to resolve.
"""

from __future__ import annotations

from .classfile import CONSTRUCTOR_NAME
from .errors import ClassNotFoundError, VerifyError
from .instructions import (
    BRANCH_OPCODES,
    CONDITIONAL_BRANCHES,
    TERMINAL_OPCODES,
)
from .values import parse_method_descriptor, verification_kind

TOP = "TOP"
NULL = "null"


def _is_ref(vtype):
    return vtype == NULL or (isinstance(vtype, tuple) and vtype[0] == "ref")


def _ref(rtclass):
    return ("ref", rtclass)


class _MethodVerifier:
    def __init__(self, vm, rtclass, method):
        self.vm = vm
        self.rtclass = rtclass
        self.method = method
        self.code = method.code
        self.pc = 0

    # -- entry point ------------------------------------------------------
    def verify(self):
        method = self.method
        if not self.code:
            self.fail("empty code")
        args, self.return_desc = parse_method_descriptor(method.desc)
        locals_init = []
        if not method.is_static:
            locals_init.append(_ref(self.rtclass))
        for desc in args:
            locals_init.append(self.type_of_descriptor(desc))
        if len(locals_init) > method.max_locals:
            self.fail("max_locals smaller than argument count")
        locals_init += [TOP] * (method.max_locals - len(locals_init))

        self.handlers_by_pc = self._index_handlers()
        self.states = {0: (tuple(locals_init), ())}
        worklist = [0]
        while worklist:
            pc = worklist.pop()
            self.pc = pc
            frame = self.states[pc]
            for successor, state in self.simulate(pc, frame):
                if self.merge_into(successor, state):
                    worklist.append(successor)

    def _index_handlers(self):
        table = {}
        for handler in self.method.handlers:
            catch_class = self.vm.throwable_class
            if handler.catch_type is not None:
                catch_class = self.resolve_class(handler.catch_type)
                if not catch_class.is_assignable_to(self.vm.throwable_class):
                    self.fail(
                        f"catch type {handler.catch_type} is not a Throwable"
                    )
            for pc in range(handler.start_pc, handler.end_pc):
                table.setdefault(pc, []).append((handler.handler_pc, catch_class))
        return table

    # -- diagnostics -------------------------------------------------------
    def fail(self, message):
        raise VerifyError(
            message,
            class_name=self.rtclass.name,
            method=self.method.name,
            pc=self.pc,
        )

    # -- type helpers ----------------------------------------------------------
    def resolve_class(self, name):
        """Resolve a class or array-descriptor operand via our loader."""
        try:
            if name.startswith("["):
                return self.vm.array_class_for_descriptor(name, self.rtclass.loader)
            return self.rtclass.loader.load(name)
        except ClassNotFoundError as exc:
            self.fail(f"unresolvable class {name}: {exc}")

    def type_of_descriptor(self, desc):
        kind = verification_kind(desc)
        if kind == "I":
            return "I"
        if kind == "D":
            return "D"
        if desc.startswith("["):
            return _ref(self.vm.array_class_for_descriptor(desc, self.rtclass.loader))
        return _ref(self.resolve_class(desc[1:-1]))

    def check_assignable(self, actual, desc_or_type, what):
        """Check that ``actual`` may be used where ``desc_or_type`` is needed."""
        if isinstance(desc_or_type, str) and desc_or_type not in ("I", "D"):
            expected = self.type_of_descriptor(desc_or_type)
        else:
            expected = desc_or_type
        if expected == "I":
            if actual != "I":
                self.fail(f"{what}: expected int, found {self.show(actual)}")
            return
        if expected == "D":
            if actual != "D":
                self.fail(f"{what}: expected double, found {self.show(actual)}")
            return
        # Reference expected.
        if actual == NULL:
            return
        if not _is_ref(actual):
            self.fail(f"{what}: expected reference, found {self.show(actual)}")
        target = expected[1]
        if target.is_interface:
            return  # deferred to run time, as in the JVM
        if not actual[1].is_assignable_to(target):
            self.fail(
                f"{what}: {actual[1].name} is not assignable to {target.name}"
            )

    def show(self, vtype):
        if isinstance(vtype, tuple):
            return vtype[1].name
        return str(vtype)

    def lub(self, type_a, type_b):
        if type_a == type_b:
            return type_a
        if type_a == NULL and _is_ref(type_b):
            return type_b
        if type_b == NULL and _is_ref(type_a):
            return type_a
        if _is_ref(type_a) and _is_ref(type_b):
            return _ref(self._common_super(type_a[1], type_b[1]))
        return None

    def _common_super(self, class_a, class_b):
        object_class = self.vm.object_class
        if class_a.is_interface or class_b.is_interface:
            return object_class
        ancestors = set()
        cursor = class_a
        while cursor is not None:
            ancestors.add(cursor)
            cursor = cursor.superclass
        cursor = class_b
        while cursor is not None:
            if cursor in ancestors:
                return cursor
            cursor = cursor.superclass
        return object_class

    # -- state merging -----------------------------------------------------
    def merge_into(self, pc, state):
        """Merge ``state`` into pc's recorded state; return True if changed."""
        if pc >= len(self.code):
            self.fail("control flows past end of code")
        recorded = self.states.get(pc)
        if recorded is None:
            self.states[pc] = state
            return True
        old_locals, old_stack = recorded
        new_locals, new_stack = state
        if len(old_stack) != len(new_stack):
            self.fail(f"inconsistent stack depth at merge target pc={pc}")
        merged_stack = []
        for type_a, type_b in zip(old_stack, new_stack):
            merged = self.lub(type_a, type_b)
            if merged is None:
                self.fail(f"incompatible stack types at merge target pc={pc}")
            merged_stack.append(merged)
        merged_locals = []
        for type_a, type_b in zip(old_locals, new_locals):
            merged = self.lub(type_a, type_b)
            merged_locals.append(TOP if merged is None else merged)
        merged_state = (tuple(merged_locals), tuple(merged_stack))
        if merged_state == recorded:
            return False
        self.states[pc] = merged_state
        return True

    # -- simulation ---------------------------------------------------------
    def simulate(self, pc, frame):
        """Execute one instruction abstractly.

        Returns a list of ``(successor_pc, state)`` pairs, including
        exception-handler edges.
        """
        locals_, stack = list(frame[0]), list(frame[1])
        instr = self.code[pc]
        opcode = instr[0]

        handler = getattr(self, "_op_" + opcode, None)
        if handler is None:
            self.fail(f"unverifiable opcode {opcode}")
        explicit_successors = handler(instr, locals_, stack)

        if len(stack) > self.method.max_stack:
            self.fail("operand stack overflow (max_stack exceeded)")

        successors = []
        state = (tuple(locals_), tuple(stack))
        if explicit_successors is None:
            # Order matters: GOTO is both a branch and terminal — its
            # target must be followed even though it never falls through.
            if opcode in CONDITIONAL_BRANCHES:
                explicit = [instr[1], pc + 1]
            elif opcode in BRANCH_OPCODES:
                explicit = [instr[1]]
            elif opcode in TERMINAL_OPCODES:
                explicit = []
            else:
                explicit = [pc + 1]
        else:
            explicit = explicit_successors
        for successor in explicit:
            successors.append((successor, state))

        # Exception edges: the handler sees this pc's *entry* locals and a
        # stack holding only the thrown exception.
        for handler_pc, catch_class in self.handlers_by_pc.get(pc, ()):
            successors.append(
                (handler_pc, (frame[0], (_ref(catch_class),)))
            )
        return successors

    # -- stack primitives ------------------------------------------------------
    def pop(self, stack, expect=None, what="operand"):
        if not stack:
            self.fail(f"stack underflow reading {what}")
        value = stack.pop()
        if expect == "I" and value != "I":
            self.fail(f"{what}: expected int, found {self.show(value)}")
        if expect == "D" and value != "D":
            self.fail(f"{what}: expected double, found {self.show(value)}")
        if expect == "A" and not _is_ref(value):
            self.fail(f"{what}: expected reference, found {self.show(value)}")
        return value

    def load_local(self, locals_, index, expect, opcode):
        if index >= len(locals_):
            self.fail(f"{opcode}: local index {index} out of range")
        value = locals_[index]
        if expect == "I" and value != "I":
            self.fail(f"{opcode}: local {index} holds {self.show(value)}")
        if expect == "D" and value != "D":
            self.fail(f"{opcode}: local {index} holds {self.show(value)}")
        if expect == "A" and not _is_ref(value):
            self.fail(f"{opcode}: local {index} holds {self.show(value)}")
        return value

    def store_local(self, locals_, index, value, opcode):
        if index >= len(locals_):
            self.fail(f"{opcode}: local index {index} out of range")
        locals_[index] = value

    # -- constants --------------------------------------------------------------
    def _op_nop(self, instr, locals_, stack):
        return None

    def _op_iconst(self, instr, locals_, stack):
        stack.append("I")
        return None

    def _op_dconst(self, instr, locals_, stack):
        stack.append("D")
        return None

    def _op_ldc_str(self, instr, locals_, stack):
        stack.append(_ref(self.vm.string_class))
        return None

    def _op_aconst_null(self, instr, locals_, stack):
        stack.append(NULL)
        return None

    # -- locals ----------------------------------------------------------------
    def _op_iload(self, instr, locals_, stack):
        self.load_local(locals_, instr[1], "I", "iload")
        stack.append("I")
        return None

    def _op_dload(self, instr, locals_, stack):
        self.load_local(locals_, instr[1], "D", "dload")
        stack.append("D")
        return None

    def _op_aload(self, instr, locals_, stack):
        stack.append(self.load_local(locals_, instr[1], "A", "aload"))
        return None

    def _op_istore(self, instr, locals_, stack):
        self.pop(stack, "I", "istore")
        self.store_local(locals_, instr[1], "I", "istore")
        return None

    def _op_dstore(self, instr, locals_, stack):
        self.pop(stack, "D", "dstore")
        self.store_local(locals_, instr[1], "D", "dstore")
        return None

    def _op_astore(self, instr, locals_, stack):
        value = self.pop(stack, "A", "astore")
        self.store_local(locals_, instr[1], value, "astore")
        return None

    def _op_iinc(self, instr, locals_, stack):
        self.load_local(locals_, instr[1], "I", "iinc")
        return None

    # -- stack ops -------------------------------------------------------------
    def _op_pop(self, instr, locals_, stack):
        self.pop(stack)
        return None

    def _op_dup(self, instr, locals_, stack):
        value = self.pop(stack)
        stack.append(value)
        stack.append(value)
        return None

    def _op_dup_x1(self, instr, locals_, stack):
        top = self.pop(stack)
        under = self.pop(stack)
        stack += [top, under, top]
        return None

    def _op_swap(self, instr, locals_, stack):
        top = self.pop(stack)
        under = self.pop(stack)
        stack += [top, under]
        return None

    # -- arithmetic ---------------------------------------------------------------
    def _binary_int(self, instr, locals_, stack):
        self.pop(stack, "I", instr[0])
        self.pop(stack, "I", instr[0])
        stack.append("I")
        return None

    _op_iadd = _binary_int
    _op_isub = _binary_int
    _op_imul = _binary_int
    _op_idiv = _binary_int
    _op_irem = _binary_int
    _op_ishl = _binary_int
    _op_ishr = _binary_int
    _op_iand = _binary_int
    _op_ior = _binary_int
    _op_ixor = _binary_int

    def _op_ineg(self, instr, locals_, stack):
        self.pop(stack, "I", "ineg")
        stack.append("I")
        return None

    def _binary_double(self, instr, locals_, stack):
        self.pop(stack, "D", instr[0])
        self.pop(stack, "D", instr[0])
        stack.append("D")
        return None

    _op_dadd = _binary_double
    _op_dsub = _binary_double
    _op_dmul = _binary_double
    _op_ddiv = _binary_double

    def _op_dneg(self, instr, locals_, stack):
        self.pop(stack, "D", "dneg")
        stack.append("D")
        return None

    def _op_dcmp(self, instr, locals_, stack):
        self.pop(stack, "D", "dcmp")
        self.pop(stack, "D", "dcmp")
        stack.append("I")
        return None

    def _op_i2d(self, instr, locals_, stack):
        self.pop(stack, "I", "i2d")
        stack.append("D")
        return None

    def _op_d2i(self, instr, locals_, stack):
        self.pop(stack, "D", "d2i")
        stack.append("I")
        return None

    # -- branches ----------------------------------------------------------------
    def _op_goto(self, instr, locals_, stack):
        return None

    def _if_int(self, instr, locals_, stack):
        self.pop(stack, "I", instr[0])
        return None

    _op_ifeq = _if_int
    _op_ifne = _if_int
    _op_iflt = _if_int
    _op_ifle = _if_int
    _op_ifgt = _if_int
    _op_ifge = _if_int

    def _if_icmp(self, instr, locals_, stack):
        self.pop(stack, "I", instr[0])
        self.pop(stack, "I", instr[0])
        return None

    _op_if_icmpeq = _if_icmp
    _op_if_icmpne = _if_icmp
    _op_if_icmplt = _if_icmp
    _op_if_icmple = _if_icmp
    _op_if_icmpgt = _if_icmp
    _op_if_icmpge = _if_icmp

    def _if_acmp(self, instr, locals_, stack):
        self.pop(stack, "A", instr[0])
        self.pop(stack, "A", instr[0])
        return None

    _op_if_acmpeq = _if_acmp
    _op_if_acmpne = _if_acmp

    def _if_null(self, instr, locals_, stack):
        self.pop(stack, "A", instr[0])
        return None

    _op_ifnull = _if_null
    _op_ifnonnull = _if_null

    # -- objects -------------------------------------------------------------------
    def _op_new(self, instr, locals_, stack):
        rtclass = self.resolve_class(instr[1])
        if rtclass.is_interface or rtclass.is_array:
            self.fail(f"new of non-instantiable {instr[1]}")
        if rtclass.classfile is not None and _is_abstract_class(rtclass):
            self.fail(f"new of abstract class {instr[1]}")
        stack.append(_ref(rtclass))
        return None

    def _resolve_field_access(self, instr, want_static):
        owner_class = self.resolve_class(instr[1])
        field_name = instr[2]
        if want_static:
            found = owner_class.find_static(field_name)
        else:
            found = owner_class.find_field(field_name)
        if found is None:
            other = (
                owner_class.find_field(field_name)
                if want_static
                else owner_class.find_static(field_name)
            )
            if other is not None:
                self.fail(
                    f"static/instance mismatch for {instr[1]}.{field_name}"
                )
            self.fail(f"no such field {instr[1]}.{field_name}")
        declaring, slot, field_def = found
        if field_def.is_private and declaring is not self.rtclass:
            self.fail(
                f"illegal access to private field "
                f"{declaring.name}.{field_name} from {self.rtclass.name}"
            )
        return declaring, slot, field_def

    def _op_getfield(self, instr, locals_, stack):
        declaring, _, field_def = self._resolve_field_access(instr, False)
        receiver = self.pop(stack, "A", "getfield receiver")
        self.check_assignable(receiver, f"L{instr[1]};", "getfield receiver")
        stack.append(self.type_of_descriptor(field_def.desc))
        return None

    def _op_putfield(self, instr, locals_, stack):
        declaring, _, field_def = self._resolve_field_access(instr, False)
        if field_def.flags & 0x0010 and declaring is not self.rtclass:  # ACC_FINAL
            self.fail(
                f"assignment to final field {declaring.name}.{field_def.name}"
            )
        value = self.pop(stack, None, "putfield value")
        receiver = self.pop(stack, "A", "putfield receiver")
        self.check_assignable(receiver, f"L{instr[1]};", "putfield receiver")
        self.check_assignable(value, field_def.desc, "putfield value")
        return None

    def _op_getstatic(self, instr, locals_, stack):
        _, _, field_def = self._resolve_field_access(instr, True)
        stack.append(self.type_of_descriptor(field_def.desc))
        return None

    def _op_putstatic(self, instr, locals_, stack):
        declaring, _, field_def = self._resolve_field_access(instr, True)
        if field_def.flags & 0x0010 and declaring is not self.rtclass:
            self.fail(
                f"assignment to final field {declaring.name}.{field_def.name}"
            )
        value = self.pop(stack, None, "putstatic value")
        self.check_assignable(value, field_def.desc, "putstatic value")
        return None

    def _check_args(self, stack, desc, what):
        args, ret = parse_method_descriptor(desc)
        for arg_desc in reversed(args):
            value = self.pop(stack, None, f"{what} argument")
            self.check_assignable(value, arg_desc, f"{what} argument")
        return ret

    def _push_return(self, stack, ret):
        if ret != "V":
            stack.append(self.type_of_descriptor(ret))

    def _op_invokevirtual(self, instr, locals_, stack):
        owner_class = self.resolve_class(instr[1])
        if owner_class.is_interface:
            self.fail(f"invokevirtual on interface {instr[1]}")
        name, desc = instr[2], instr[3]
        if owner_class.vtable_index(name, desc) is None:
            found = owner_class.find_declared(name, desc)
            if found is not None:
                self.fail(
                    f"invokevirtual on non-virtual method {instr[1]}.{name} "
                    "(use invokespecial/invokestatic)"
                )
            self.fail(f"no such method {instr[1]}.{name}{desc}")
        ret = self._check_args(stack, desc, "invokevirtual")
        receiver = self.pop(stack, "A", "invokevirtual receiver")
        self.check_assignable(receiver, f"L{instr[1]};", "invokevirtual receiver")
        self._push_return(stack, ret)
        return None

    def _op_invokeinterface(self, instr, locals_, stack):
        owner_class = self.resolve_class(instr[1])
        if not owner_class.is_interface:
            self.fail(f"invokeinterface on class {instr[1]}")
        name, desc = instr[2], instr[3]
        if owner_class.find_interface_method(name, desc) is None:
            self.fail(f"no such interface method {instr[1]}.{name}{desc}")
        ret = self._check_args(stack, desc, "invokeinterface")
        self.pop(stack, "A", "invokeinterface receiver")
        self._push_return(stack, ret)
        return None

    def _op_invokestatic(self, instr, locals_, stack):
        owner_class = self.resolve_class(instr[1])
        name, desc = instr[2], instr[3]
        found = owner_class.find_declared(name, desc)
        if found is None or not found[1].is_static:
            self.fail(f"no such static method {instr[1]}.{name}{desc}")
        declaring, method_def = found
        if method_def.is_private and declaring is not self.rtclass:
            self.fail(
                f"illegal access to private method {declaring.name}.{name}"
            )
        ret = self._check_args(stack, desc, "invokestatic")
        self._push_return(stack, ret)
        return None

    def _op_invokespecial(self, instr, locals_, stack):
        owner_class = self.resolve_class(instr[1])
        name, desc = instr[2], instr[3]
        found = owner_class.find_declared(name, desc)
        if found is None or found[1].is_static:
            self.fail(f"no such method {instr[1]}.{name}{desc}")
        declaring, method_def = found
        if method_def.is_private and declaring is not self.rtclass:
            self.fail(
                f"illegal access to private method {declaring.name}.{name}"
            )
        if (
            name != CONSTRUCTOR_NAME
            and not method_def.is_private
            and not self.rtclass.is_assignable_to(owner_class)
        ):
            self.fail(
                "invokespecial outside constructor/private/super context"
            )
        ret = self._check_args(stack, desc, "invokespecial")
        receiver = self.pop(stack, "A", "invokespecial receiver")
        self.check_assignable(receiver, f"L{instr[1]};", "invokespecial receiver")
        self._push_return(stack, ret)
        return None

    def _op_checkcast(self, instr, locals_, stack):
        target = self.resolve_class(instr[1])
        self.pop(stack, "A", "checkcast")
        stack.append(_ref(target))
        return None

    def _op_instanceof(self, instr, locals_, stack):
        self.resolve_class(instr[1])
        self.pop(stack, "A", "instanceof")
        stack.append("I")
        return None

    # -- arrays -----------------------------------------------------------------
    def _op_newarray(self, instr, locals_, stack):
        array_class = self.vm.array_class_for_descriptor(
            "[" + instr[1], self.rtclass.loader
        )
        self.pop(stack, "I", "newarray length")
        stack.append(_ref(array_class))
        return None

    def _op_arraylength(self, instr, locals_, stack):
        value = self.pop(stack, "A", "arraylength")
        self._require_array(value, None, "arraylength")
        stack.append("I")
        return None

    def _require_array(self, value, element_kinds, what):
        if value == NULL:
            return None
        rtclass = value[1]
        if not rtclass.is_array:
            self.fail(f"{what}: {rtclass.name} is not an array")
        if element_kinds is not None and rtclass.array_element not in element_kinds:
            self.fail(
                f"{what}: wrong element type {rtclass.array_element}"
            )
        return rtclass

    def _array_load(self, stack, element_kinds, result, what):
        self.pop(stack, "I", f"{what} index")
        array = self.pop(stack, "A", f"{what} array")
        rtclass = self._require_array(array, element_kinds, what)
        if result == "ELEM":
            if rtclass is None or rtclass.element_class is None:
                stack.append(_ref(self.vm.object_class))
            else:
                stack.append(_ref(rtclass.element_class))
        else:
            stack.append(result)

    def _array_store(self, stack, element_kinds, value_kind, what):
        value = self.pop(stack, None, f"{what} value")
        if value_kind == "I" and value != "I":
            self.fail(f"{what}: storing non-int")
        if value_kind == "D" and value != "D":
            self.fail(f"{what}: storing non-double")
        if value_kind == "A" and not _is_ref(value):
            self.fail(f"{what}: storing non-reference")
        self.pop(stack, "I", f"{what} index")
        array = self.pop(stack, "A", f"{what} array")
        self._require_array(array, element_kinds, what)

    def _op_baload(self, instr, locals_, stack):
        self._array_load(stack, ("B",), "I", "baload")
        return None

    def _op_bastore(self, instr, locals_, stack):
        self._array_store(stack, ("B",), "I", "bastore")
        return None

    def _op_iaload(self, instr, locals_, stack):
        self._array_load(stack, ("I",), "I", "iaload")
        return None

    def _op_iastore(self, instr, locals_, stack):
        self._array_store(stack, ("I",), "I", "iastore")
        return None

    def _op_daload(self, instr, locals_, stack):
        self._array_load(stack, ("D",), "D", "daload")
        return None

    def _op_dastore(self, instr, locals_, stack):
        self._array_store(stack, ("D",), "D", "dastore")
        return None

    def _op_aaload(self, instr, locals_, stack):
        self.pop(stack, "I", "aaload index")
        array = self.pop(stack, "A", "aaload array")
        if array == NULL:
            stack.append(NULL)
            return None
        rtclass = array[1]
        if not rtclass.is_array or rtclass.element_class is None:
            self.fail(f"aaload on non-reference array {rtclass.name}")
        stack.append(_ref(rtclass.element_class))
        return None

    def _op_aastore(self, instr, locals_, stack):
        self._array_store(stack, None, "A", "aastore")
        return None

    # -- returns / throw / monitors ------------------------------------------------
    def _op_return(self, instr, locals_, stack):
        if self.return_desc != "V":
            self.fail("return in non-void method")
        return None

    def _op_ireturn(self, instr, locals_, stack):
        if self.return_desc not in ("I", "Z", "B"):
            self.fail("ireturn in non-int method")
        self.pop(stack, "I", "ireturn")
        return None

    def _op_dreturn(self, instr, locals_, stack):
        if self.return_desc != "D":
            self.fail("dreturn in non-double method")
        self.pop(stack, "D", "dreturn")
        return None

    def _op_areturn(self, instr, locals_, stack):
        if self.return_desc == "V" or self.return_desc in ("I", "D", "Z", "B"):
            self.fail("areturn in non-reference method")
        value = self.pop(stack, "A", "areturn")
        self.check_assignable(value, self.return_desc, "areturn")
        return None

    def _op_athrow(self, instr, locals_, stack):
        value = self.pop(stack, "A", "athrow")
        if value != NULL and not value[1].is_assignable_to(self.vm.throwable_class):
            self.fail(f"athrow of non-throwable {value[1].name}")
        return None

    def _op_monitorenter(self, instr, locals_, stack):
        self.pop(stack, "A", "monitorenter")
        return None

    def _op_monitorexit(self, instr, locals_, stack):
        self.pop(stack, "A", "monitorexit")
        return None


def _is_abstract_class(rtclass):
    from .classfile import ACC_ABSTRACT

    return bool(rtclass.classfile.flags & ACC_ABSTRACT)


def verify_method(vm, rtclass, method):
    if method.is_native or method.is_abstract:
        return
    _MethodVerifier(vm, rtclass, method).verify()


def verify_class(vm, rtclass):
    """Verify every concrete method declared by ``rtclass``."""
    for method in rtclass.declared.values():
        verify_method(vm, rtclass, method)
