"""Class loaders, namespaces and resolvers.

Each loader owns a *namespace*: a partial map from class names to runtime
classes (the paper's §2 definition).  A domain protects itself by
controlling what its resolver makes visible: a class name that the resolver
does not resolve simply does not exist for code loaded by that loader, and
two loaders may bind the same name to different classes.

Resolution order for ``loader.load(name)``:

1. the loader's namespace (already loaded / already shared),
2. the loader's resolver (which may *define* a new class from a classfile,
   or *share* an existing runtime class by returning it),
3. the parent loader (system classes), if any.

Sharing a runtime class from another loader binds the same identity in this
namespace, so types stay compatible across the share — exactly how the
J-Kernel shares remote interfaces and fast-copy classes between domains.
"""

from __future__ import annotations

from .classfile import ACC_FINAL, ClassFile, check_classfile
from .errors import ClassNotFoundError, LinkageError
from .runtime import RuntimeClass, link_class
from .threaded import compile_class


class Resolver:
    """Base resolver: resolves nothing.  Subclass or use MapResolver."""

    def resolve(self, loader, name):
        """Return a ClassFile (define here), a RuntimeClass (share), or None."""
        return None


class MapResolver(Resolver):
    """Resolver backed by a dict of name -> ClassFile | RuntimeClass."""

    def __init__(self, entries=None):
        self.entries = dict(entries or {})

    def add(self, classfile_or_class):
        self.entries[classfile_or_class.name] = classfile_or_class
        return self

    def resolve(self, loader, name):
        return self.entries.get(name)


class ChainResolver(Resolver):
    """Tries a sequence of resolvers in order."""

    def __init__(self, *resolvers):
        self.resolvers = list(resolvers)

    def resolve(self, loader, name):
        for resolver in self.resolvers:
            found = resolver.resolve(loader, name)
            if found is not None:
                return found
        return None


class DenyResolver(Resolver):
    """Hides specific names even if the parent loader could provide them.

    Used to interpose safe versions of problematic system classes: deny the
    real name, and have another resolver supply the replacement.
    """

    def __init__(self, hidden_names, on_denied=None):
        self.hidden = set(hidden_names)
        self.on_denied = on_denied

    def resolve(self, loader, name):
        if name in self.hidden:
            if self.on_denied is not None:
                self.on_denied(loader, name)
            raise ClassNotFoundError(
                f"class {name} is hidden from namespace of {loader.name}"
            )
        return None


class ClassLoader:
    """One namespace plus the machinery to populate it."""

    def __init__(self, vm, name, resolver=None, parent=None, verify=True):
        self.vm = vm
        self.name = name
        self.resolver = resolver or Resolver()
        self.parent = parent
        self.verify = verify
        self.namespace = {}
        self._defining = set()

    def __repr__(self):
        return f"<ClassLoader {self.name}>"

    # -- queries ----------------------------------------------------------
    def loaded(self, name):
        return self.namespace.get(name)

    def visible_names(self):
        names = set(self.namespace)
        if self.parent is not None:
            names |= self.parent.visible_names()
        return names

    # -- loading -------------------------------------------------------------
    def load(self, name):
        """Resolve ``name`` in this namespace, loading if necessary."""
        found = self.namespace.get(name)
        if found is not None:
            return found
        resolved = self.resolver.resolve(self, name)
        if resolved is None:
            if self.parent is not None:
                found = self.parent.load(name)
                self.namespace[name] = found
                return found
            raise ClassNotFoundError(f"{name} not visible in {self.name}")
        if isinstance(resolved, RuntimeClass):
            return self.share(resolved)
        if isinstance(resolved, ClassFile):
            if resolved.name != name:
                raise LinkageError(
                    f"resolver for {self.name} returned classfile "
                    f"{resolved.name} for requested name {name}"
                )
            return self.define(resolved)
        raise LinkageError(
            f"resolver for {self.name} returned {type(resolved).__name__}"
        )

    def share(self, rtclass):
        """Bind an existing runtime class (same identity) in this namespace."""
        existing = self.namespace.get(rtclass.name)
        if existing is not None:
            if existing is not rtclass:
                raise LinkageError(
                    f"{rtclass.name} already bound to a different class "
                    f"in {self.name}"
                )
            return existing
        self.namespace[rtclass.name] = rtclass
        return rtclass

    def define(self, classfile):
        """Define a new class in this namespace from a classfile.

        Runs structural checks, linking (with loader-constraint checks) and
        bytecode verification.  On any failure the name is left unbound.
        """
        name = classfile.name
        if name in self.namespace:
            raise LinkageError(f"{name} already defined in {self.name}")
        if name in self._defining:
            raise LinkageError(f"cyclic definition of {name} in {self.name}")
        check_classfile(classfile)
        self._defining.add(name)
        try:
            superclass = None
            if classfile.super_name is not None:
                superclass = self.load(classfile.super_name)
                if superclass.is_interface or superclass.is_array:
                    raise LinkageError(
                        f"{name} extends non-class {superclass.name}"
                    )
                if superclass.classfile is not None and \
                        superclass.classfile.flags & ACC_FINAL:
                    # Final means final: immutability arguments elsewhere
                    # (e.g. the stub generator sharing String arguments)
                    # rely on final system classes having no subclasses.
                    raise LinkageError(
                        f"{name} extends final class {superclass.name}"
                    )
            interfaces = [self.load(iface) for iface in classfile.interfaces]
            rtclass = link_class(
                classfile,
                self,
                superclass,
                interfaces,
                resolve=lambda loader, cname: loader.load(cname),
            )
            self.namespace[name] = rtclass
            try:
                if self.verify:
                    from .verifier import verify_class

                    verify_class(self.vm, rtclass)
                self.vm.natives.bind_class(rtclass)
                # Specialized dispatch tier: decode every method body once,
                # now that verification has vouched for it.
                if self.vm.threaded_code:
                    compile_class(self.vm, rtclass)
            except Exception:
                del self.namespace[name]
                raise
            return rtclass
        finally:
            self._defining.discard(name)

    def define_all(self, classfiles):
        """Define a batch of possibly mutually-referring classfiles."""
        batch = MapResolver({cf.name: cf for cf in classfiles})
        original = self.resolver
        self.resolver = ChainResolver(batch, original)
        try:
            return [self.load(cf.name) for cf in classfiles]
        finally:
            self.resolver = original
