"""The specialized dispatch tier: per-method threaded code.

The generic interpreter (:mod:`repro.jvm.interp`) re-decodes the same
instruction tuple and walks one long opcode-comparison chain every time an
instruction executes.  This module compiles each verified method once — at
class-definition (link) time — into a *threaded-code stream*: one Python
closure per instruction slot, with the operands already decoded into the
closure's cells.  Executing an instruction is then a single indexed call,
and per-site state (resolved classes, static targets, native bindings,
monomorphic field/virtual-dispatch caches) lives in the closure instead of
being recomputed per execution.

Semantics are *identical* to the generic tier by construction, and
``tests/jvm/test_interp_equivalence.py`` holds the two to the same fuzzed
behaviour (results, guest exceptions, and retired-instruction counts).
Points of care:

* ``frame.pc`` is only advanced after all guest-visible faults of an
  instruction are past, so exception delivery sees the same fault pc the
  generic tier reports;
* closures return the number of instructions they retired (``None`` means
  one), keeping tick accounting — and therefore scheduling and step
  budgets — aligned with the generic tier;
* lazy resolution (``loader.load`` at first execution, not at compile
  time) preserves the generic tier's class-loading order;
* ``invokeinterface`` still goes through ``vm.dispatcher`` on every call:
  the interface-dispatch strategy is a measured VM-profile property
  (Table 1) that this tier must not optimize away.

Superinstructions
-----------------

A peephole pass fuses the hottest multi-instruction idioms into one
closure, chiefly the ones the LRMI stub generator emits
(:mod:`repro.jkvm.stubgen`):

* ``ALOAD · GETFIELD · DUP · IFNONNULL`` — the stub's revocation check;
* ``ALOAD/ILOAD/DLOAD/const`` runs — the stub's argument pushes;
* ``ALOAD · GETFIELD`` — field reads (the stub's domain-handle load);
* ``ILOAD · ILOAD · IF_ICMP*`` and ``IINC · GOTO`` — loop heads/tails.

Fusion never spans a *entry point* (branch target or handler start): any
pc that can be jumped to keeps its own closure, so a fused head simply
covers the straight-line window after it.  A fused closure that faults
rewinds ``frame.pc`` to the faulting sub-instruction first, so handler
lookup is unchanged.
"""

from __future__ import annotations

from .dispatch import DispatchError, VirtualSiteCache
from .interp import (
    ARITHMETIC,
    ARRAY_BOUNDS,
    ARRAY_STORE,
    CLASS_CAST,
    GuestUnwind,
    ILLEGAL_MONITOR,
    INCOMPATIBLE,
    NATIVE_BLOCKED,
    NEGATIVE_SIZE,
    NULL_POINTER,
    UNSATISFIED_LINK,
)
from .instructions import BRANCH_OPCODES as _BRANCH_OPS
from .threads import BLOCKED, Frame, TERMINATED
from .values import i8, i32, parse_method_descriptor

#: Opcodes a push-run superinstruction may cover (each pushes one value
#: taken from a local slot or a compile-time constant; none can fault).
_PUSH_LOCAL = frozenset(("iload", "aload", "dload"))
_PUSH_CONST = frozenset(("iconst", "dconst", "aconst_null"))

_CMP_BRANCHES = {
    "if_icmpeq": lambda a, b: a == b,
    "if_icmpne": lambda a, b: a != b,
    "if_icmplt": lambda a, b: a < b,
    "if_icmple": lambda a, b: a <= b,
    "if_icmpgt": lambda a, b: a > b,
    "if_icmpge": lambda a, b: a >= b,
}

_MAX_RUN = 8


def _guest_throw(vm, thread, class_name, message, ticks=1):
    raise GuestUnwind(
        vm.make_throwable(class_name, message, owner=thread.domain_tag),
        ticks,
    )


# ---------------------------------------------------------------------------
# per-opcode closure builders
#
# Each builder receives the compile context and returns ``fn(thread, frame)``.
# ``next_pc`` is captured as a constant so the hot path stores rather than
# increments.  Builders for resolving opcodes cache the resolution in a cell
# on first execution — the defining loader is fixed per compiled class, so
# the cache can never cross namespaces.
# ---------------------------------------------------------------------------

def _c_load(slot, next_pc):
    def run(thread, frame):
        frame.stack.append(frame.locals[slot])
        frame.pc = next_pc
    return run


def _c_store(slot, next_pc):
    def run(thread, frame):
        frame.locals[slot] = frame.stack.pop()
        frame.pc = next_pc
    return run


def _c_const(value, next_pc):
    def run(thread, frame):
        frame.stack.append(value)
        frame.pc = next_pc
    return run


def _c_ldc_str(vm, text, next_pc):
    if vm.intern_weak:
        # A weak intern table may drop (and GC may free) the interned
        # object between executions; re-intern like the generic tier.
        intern = vm.intern

        def run(thread, frame):
            frame.stack.append(intern(text))
            frame.pc = next_pc
        return run

    cached = None

    def run(thread, frame):
        nonlocal cached
        if cached is None:
            cached = vm.intern(text)  # strong table: rooted forever
        frame.stack.append(cached)
        frame.pc = next_pc
    return run


def _c_iinc(slot, delta, next_pc):
    def run(thread, frame):
        locals_ = frame.locals
        locals_[slot] = i32(locals_[slot] + delta)
        frame.pc = next_pc
    return run


def _c_int_arith(op, next_pc):
    if op == "iadd":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = i32(stack[-1] + b)
            frame.pc = next_pc
    elif op == "isub":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = i32(stack[-1] - b)
            frame.pc = next_pc
    elif op == "imul":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = i32(stack[-1] * b)
            frame.pc = next_pc
    elif op == "ishl":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = i32(stack[-1] << (b & 31))
            frame.pc = next_pc
    elif op == "ishr":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = i32(stack[-1] >> (b & 31))
            frame.pc = next_pc
    elif op == "iand":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = i32(stack[-1] & b)
            frame.pc = next_pc
    elif op == "ior":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = i32(stack[-1] | b)
            frame.pc = next_pc
    elif op == "ixor":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = i32(stack[-1] ^ b)
            frame.pc = next_pc
    elif op == "ineg":
        def run(thread, frame):
            stack = frame.stack
            stack[-1] = i32(-stack[-1])
            frame.pc = next_pc
    else:  # pragma: no cover - caller dispatches exhaustively
        raise AssertionError(op)
    return run


def _c_idiv(vm, next_pc):
    def run(thread, frame):
        stack = frame.stack
        b = stack.pop()
        a = stack[-1]
        if b == 0:
            _guest_throw(vm, thread, ARITHMETIC, "/ by zero")
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        stack[-1] = i32(quotient)
        frame.pc = next_pc
    return run


def _c_irem(vm, next_pc):
    def run(thread, frame):
        stack = frame.stack
        b = stack.pop()
        a = stack[-1]
        if b == 0:
            _guest_throw(vm, thread, ARITHMETIC, "% by zero")
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        stack[-1] = i32(a - quotient * b)
        frame.pc = next_pc
    return run


def _c_double_arith(op, next_pc):
    if op == "dadd":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = stack[-1] + b
            frame.pc = next_pc
    elif op == "dsub":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = stack[-1] - b
            frame.pc = next_pc
    elif op == "dmul":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            stack[-1] = stack[-1] * b
            frame.pc = next_pc
    elif op == "dneg":
        def run(thread, frame):
            stack = frame.stack
            stack[-1] = -stack[-1]
            frame.pc = next_pc
    else:  # pragma: no cover
        raise AssertionError(op)
    return run


def _c_ddiv(next_pc):
    def run(thread, frame):
        stack = frame.stack
        b = stack.pop()
        a = stack[-1]
        if b == 0.0:
            stack[-1] = float("nan") if a == 0.0 else (
                float("inf") if a > 0 else float("-inf")
            )
        else:
            stack[-1] = a / b
        frame.pc = next_pc
    return run


def _c_dcmp(next_pc):
    def run(thread, frame):
        stack = frame.stack
        b = stack.pop()
        a = stack.pop()
        if a != a or b != b:  # NaN
            stack.append(-1)
        elif a < b:
            stack.append(-1)
        elif a > b:
            stack.append(1)
        else:
            stack.append(0)
        frame.pc = next_pc
    return run


def _c_i2d(next_pc):
    def run(thread, frame):
        stack = frame.stack
        stack[-1] = float(stack[-1])
        frame.pc = next_pc
    return run


def _c_d2i(next_pc):
    def run(thread, frame):
        stack = frame.stack
        value = stack[-1]
        if value != value:
            stack[-1] = 0
        elif value >= 2147483647.0:
            stack[-1] = 2147483647
        elif value <= -2147483648.0:
            stack[-1] = -2147483648
        else:
            stack[-1] = int(value)
        frame.pc = next_pc
    return run


def _c_stack_op(op, next_pc):
    if op == "pop":
        def run(thread, frame):
            frame.stack.pop()
            frame.pc = next_pc
    elif op == "dup":
        def run(thread, frame):
            stack = frame.stack
            stack.append(stack[-1])
            frame.pc = next_pc
    elif op == "dup_x1":
        def run(thread, frame):
            stack = frame.stack
            top = stack.pop()
            under = stack.pop()
            stack += (top, under, top)
            frame.pc = next_pc
    elif op == "swap":
        def run(thread, frame):
            stack = frame.stack
            stack[-1], stack[-2] = stack[-2], stack[-1]
            frame.pc = next_pc
    elif op == "nop":
        def run(thread, frame):
            frame.pc = next_pc
    else:  # pragma: no cover
        raise AssertionError(op)
    return run


def _c_goto(target):
    def run(thread, frame):
        frame.pc = target
    return run


def _c_if_unary(op, target, next_pc):
    if op == "ifeq":
        def run(thread, frame):
            frame.pc = target if frame.stack.pop() == 0 else next_pc
    elif op == "ifne":
        def run(thread, frame):
            frame.pc = target if frame.stack.pop() != 0 else next_pc
    elif op == "iflt":
        def run(thread, frame):
            frame.pc = target if frame.stack.pop() < 0 else next_pc
    elif op == "ifle":
        def run(thread, frame):
            frame.pc = target if frame.stack.pop() <= 0 else next_pc
    elif op == "ifgt":
        def run(thread, frame):
            frame.pc = target if frame.stack.pop() > 0 else next_pc
    elif op == "ifge":
        def run(thread, frame):
            frame.pc = target if frame.stack.pop() >= 0 else next_pc
    elif op == "ifnull":
        def run(thread, frame):
            frame.pc = target if frame.stack.pop() is None else next_pc
    elif op == "ifnonnull":
        def run(thread, frame):
            frame.pc = target if frame.stack.pop() is not None else next_pc
    else:  # pragma: no cover
        raise AssertionError(op)
    return run


def _c_if_binary(op, target, next_pc):
    if op == "if_acmpeq":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            frame.pc = target if stack.pop() is b else next_pc
        return run
    if op == "if_acmpne":
        def run(thread, frame):
            stack = frame.stack
            b = stack.pop()
            frame.pc = target if stack.pop() is not b else next_pc
        return run
    compare = _CMP_BRANCHES[op]

    def run(thread, frame):
        stack = frame.stack
        b = stack.pop()
        frame.pc = target if compare(stack.pop(), b) else next_pc
    return run


def _c_getfield(vm, field_name, next_pc):
    cache_class = None
    cache_slot = 0

    def run(thread, frame):
        nonlocal cache_class, cache_slot
        stack = frame.stack
        receiver = stack[-1]
        if receiver is None:
            stack.pop()
            _guest_throw(vm, thread, NULL_POINTER, f"getfield {field_name}")
        jclass = receiver.jclass
        if jclass is not cache_class:
            cache_slot = jclass.field_slots[field_name]
            cache_class = jclass
        stack[-1] = receiver.fields[cache_slot]
        frame.pc = next_pc
    return run


def _c_putfield(vm, field_name, next_pc):
    cache_class = None
    cache_slot = 0

    def run(thread, frame):
        nonlocal cache_class, cache_slot
        stack = frame.stack
        value = stack.pop()
        receiver = stack.pop()
        if receiver is None:
            _guest_throw(vm, thread, NULL_POINTER, f"putfield {field_name}")
        jclass = receiver.jclass
        if jclass is not cache_class:
            cache_slot = jclass.field_slots[field_name]
            cache_class = jclass
        receiver.fields[cache_slot] = value
        frame.pc = next_pc
    return run


def _c_getstatic(loader, class_name, field_name, next_pc):
    resolved = None

    def run(thread, frame):
        nonlocal resolved
        if resolved is None:
            owner, index, _ = loader.load(class_name).find_static(field_name)
            resolved = (owner.static_slots, index)
        slots, index = resolved
        frame.stack.append(slots[index])
        frame.pc = next_pc
    return run


def _c_putstatic(loader, class_name, field_name, next_pc):
    resolved = None

    def run(thread, frame):
        nonlocal resolved
        if resolved is None:
            owner, index, _ = loader.load(class_name).find_static(field_name)
            resolved = (owner.static_slots, index)
        slots, index = resolved
        slots[index] = frame.stack.pop()
        frame.pc = next_pc
    return run


def _c_new(vm, loader, class_name, next_pc):
    new_object = vm.heap.new_object
    rtclass = None

    def run(thread, frame):
        nonlocal rtclass
        if rtclass is None:
            rtclass = loader.load(class_name)
        frame.stack.append(new_object(rtclass, owner=thread.domain_tag))
        frame.pc = next_pc
    return run


def _c_newarray(vm, loader, element_desc, next_pc):
    new_array = vm.heap.new_array
    array_class = None

    def run(thread, frame):
        nonlocal array_class
        stack = frame.stack
        length = stack.pop()
        if length < 0:
            _guest_throw(vm, thread, NEGATIVE_SIZE, str(length))
        if array_class is None:
            array_class = vm.array_class_for_descriptor(
                "[" + element_desc, loader
            )
        stack.append(new_array(array_class, length, owner=thread.domain_tag))
        frame.pc = next_pc
    return run


def _c_aload_elem(vm, next_pc):
    def run(thread, frame):
        stack = frame.stack
        index = stack.pop()
        array = stack.pop()
        if array is None:
            _guest_throw(vm, thread, NULL_POINTER, "array load")
        elems = array.elems
        if not 0 <= index < len(elems):
            _guest_throw(vm, thread, ARRAY_BOUNDS, str(index))
        stack.append(elems[index])
        frame.pc = next_pc
    return run


def _c_astore_elem(vm, op, next_pc):
    def run(thread, frame):
        stack = frame.stack
        value = stack.pop()
        index = stack.pop()
        array = stack.pop()
        if array is None:
            _guest_throw(vm, thread, NULL_POINTER, op)
        elems = array.elems
        if not 0 <= index < len(elems):
            _guest_throw(vm, thread, ARRAY_BOUNDS, str(index))
        if op == "bastore":
            elems[index] = i8(value)
        elif op == "iastore":
            elems[index] = i32(value)
        elif op == "dastore":
            elems[index] = value
        else:  # aastore
            if value is not None:
                element_class = array.jclass.element_class
                if element_class is not None and \
                        not value.jclass.is_assignable_to(element_class):
                    _guest_throw(
                        vm, thread, ARRAY_STORE,
                        f"{value.jclass.name} into {array.jclass.name}",
                    )
            elems[index] = value
        frame.pc = next_pc
    return run


def _c_arraylength(vm, next_pc):
    def run(thread, frame):
        stack = frame.stack
        array = stack.pop()
        if array is None:
            _guest_throw(vm, thread, NULL_POINTER, "arraylength")
        stack.append(len(array.elems))
        frame.pc = next_pc
    return run


def _resolve_type(vm, loader, name):
    if name.startswith("["):
        return vm.array_class_for_descriptor(name, loader)
    return loader.load(name)


def _c_checkcast(vm, loader, name, next_pc):
    target = None
    cache_ok = None  # last receiver class that passed this cast

    def run(thread, frame):
        nonlocal target, cache_ok
        value = frame.stack[-1]
        if value is not None:
            jclass = value.jclass
            if jclass is not cache_ok:
                if target is None:
                    target = _resolve_type(vm, loader, name)
                if not jclass.is_assignable_to(target):
                    _guest_throw(
                        vm, thread, CLASS_CAST,
                        f"{jclass.name} cannot be cast to {target.name}",
                    )
                cache_ok = jclass
        frame.pc = next_pc
    return run


def _c_instanceof(vm, loader, name, next_pc):
    target = None

    def run(thread, frame):
        nonlocal target
        stack = frame.stack
        value = stack.pop()
        if value is None:
            stack.append(0)
        else:
            if target is None:
                target = _resolve_type(vm, loader, name)
            stack.append(1 if value.jclass.is_assignable_to(target) else 0)
        frame.pc = next_pc
    return run


# -- invocation --------------------------------------------------------------

def _native_binding(vm, thread, owner, method):
    """Resolve a native binding like the generic tier (lazy, cached on the
    class; unresolved natives throw per call and stay unresolved)."""
    binding = owner.native_bindings.get(method.key)
    if binding is None:
        binding = vm.natives.lookup(owner, method)
        if binding is None:
            _guest_throw(
                vm, thread, UNSATISFIED_LINK,
                f"{owner.name}.{method.name}{method.desc}",
            )
        owner.native_bindings[method.key] = binding
    return binding


def _c_invokestatic(vm, loader, class_name, mname, desc, next_pc):
    total = len(parse_method_descriptor(desc)[0])
    void = desc.endswith(")V")
    resolved = None

    def run(thread, frame):
        nonlocal resolved
        entry = resolved
        if entry is None:
            owner, method = loader.load(class_name).find_declared(mname, desc)
            if method.is_native:
                binding = _native_binding(vm, thread, owner, method)
            else:
                binding = None
            entry = resolved = (owner, method, binding)
        owner, method, binding = entry
        stack = frame.stack
        if binding is not None:
            args = stack[len(stack) - total:] if total else []
            result = binding(vm, thread, args)
            if result is NATIVE_BLOCKED:
                return
            if total:
                del stack[len(stack) - total:]
            if not void:
                stack.append(result)
            frame.pc = next_pc
            return
        if total:
            args = stack[len(stack) - total:]
            del stack[len(stack) - total:]
        else:
            args = []
        frame.pc = next_pc
        thread.frames.append(Frame(owner, method, args))
    return run


def _c_invokespecial(vm, loader, class_name, mname, desc, next_pc):
    total = len(parse_method_descriptor(desc)[0]) + 1
    void = desc.endswith(")V")
    resolved = None

    def run(thread, frame):
        nonlocal resolved
        stack = frame.stack
        if stack[-total] is None:
            _guest_throw(
                vm, thread, NULL_POINTER, f"invokespecial {mname}"
            )
        entry = resolved
        if entry is None:
            owner, method = loader.load(class_name).find_declared(mname, desc)
            if method.is_native:
                binding = _native_binding(vm, thread, owner, method)
            else:
                binding = None
            entry = resolved = (owner, method, binding)
        owner, method, binding = entry
        if binding is not None:
            args = stack[len(stack) - total:]
            result = binding(vm, thread, args)
            if result is NATIVE_BLOCKED:
                return
            del stack[len(stack) - total:]
            if not void:
                stack.append(result)
            frame.pc = next_pc
            return
        args = stack[len(stack) - total:]
        del stack[len(stack) - total:]
        frame.pc = next_pc
        thread.frames.append(Frame(owner, method, args))
    return run


def _c_invokevirtual(vm, mname, desc, next_pc):
    total = len(parse_method_descriptor(desc)[0]) + 1
    void = desc.endswith(")V")
    key = (mname, desc)
    site = VirtualSiteCache()
    bound_method = None
    bound_binding = None

    def run(thread, frame):
        nonlocal bound_method, bound_binding
        stack = frame.stack
        receiver = stack[-total]
        if receiver is None:
            _guest_throw(
                vm, thread, NULL_POINTER, f"invokevirtual {mname}"
            )
        jclass = receiver.jclass
        if jclass is site.klass:
            owner = site.owner
            method = site.method
        else:
            owner, method = site.fill(jclass, key)
        if method.is_native:
            if method is bound_method:
                binding = bound_binding
            else:
                binding = _native_binding(vm, thread, owner, method)
                bound_method, bound_binding = method, binding
            args = stack[len(stack) - total:]
            result = binding(vm, thread, args)
            if result is NATIVE_BLOCKED:
                return
            del stack[len(stack) - total:]
            if not void:
                stack.append(result)
            frame.pc = next_pc
            return
        args = stack[len(stack) - total:]
        del stack[len(stack) - total:]
        frame.pc = next_pc
        thread.frames.append(Frame(owner, method, args))
    return run


def _c_invokeinterface(vm, loader, iface_name, mname, desc, next_pc):
    total = len(parse_method_descriptor(desc)[0]) + 1
    void = desc.endswith(")V")
    dispatcher = vm.dispatcher
    iface = None
    bound_method = None
    bound_binding = None

    def run(thread, frame):
        nonlocal iface, bound_method, bound_binding
        stack = frame.stack
        receiver = stack[-total]
        if receiver is None:
            _guest_throw(
                vm, thread, NULL_POINTER, f"invokeinterface {mname}"
            )
        if iface is None:
            iface = loader.load(iface_name)
        # Deliberately uncached: interface dispatch cost is a profile
        # property (Table 1); the dispatcher applies its own strategy.
        try:
            owner, method = dispatcher.lookup(
                receiver.jclass, iface, mname, desc
            )
        except DispatchError as exc:
            _guest_throw(vm, thread, INCOMPATIBLE, str(exc))
        if method.is_native:
            if method is bound_method:
                binding = bound_binding
            else:
                binding = _native_binding(vm, thread, owner, method)
                bound_method, bound_binding = method, binding
            args = stack[len(stack) - total:]
            result = binding(vm, thread, args)
            if result is NATIVE_BLOCKED:
                return
            del stack[len(stack) - total:]
            if not void:
                stack.append(result)
            frame.pc = next_pc
            return
        args = stack[len(stack) - total:]
        del stack[len(stack) - total:]
        frame.pc = next_pc
        thread.frames.append(Frame(owner, method, args))
    return run


# -- returns / exceptions / monitors -----------------------------------------

def _c_return():
    def run(thread, frame):
        frames = thread.frames
        frames.pop()
        if not frames:
            thread.result = None
            thread.state = TERMINATED
    return run


def _c_value_return():
    def run(thread, frame):
        frames = thread.frames
        value = frame.stack.pop()
        frames.pop()
        if frames:
            frames[-1].stack.append(value)
        else:
            thread.result = value
            thread.state = TERMINATED
    return run


def _c_athrow(vm):
    def run(thread, frame):
        value = frame.stack.pop()
        if value is None:
            _guest_throw(vm, thread, NULL_POINTER, "athrow null")
        raise GuestUnwind(value)
    return run


def _c_monitorenter(vm, next_pc):
    monitors = vm.monitors

    def run(thread, frame):
        stack = frame.stack
        target = stack[-1]
        if target is None:
            _guest_throw(vm, thread, NULL_POINTER, "monitorenter")
        if monitors.try_enter(target, thread):
            stack.pop()
            frame.pc = next_pc
        else:
            thread.state = BLOCKED
            thread.blocked_on = target
    return run


def _c_monitorexit(vm, next_pc):
    monitors = vm.monitors
    scheduler = vm.scheduler

    def run(thread, frame):
        target = frame.stack.pop()
        if target is None:
            _guest_throw(vm, thread, NULL_POINTER, "monitorexit")
        woken = monitors.exit(target, thread)
        if woken is None:
            _guest_throw(vm, thread, ILLEGAL_MONITOR, "not owner")
        for waiter in woken:
            scheduler.wake(waiter)
        frame.pc = next_pc
    return run


# ---------------------------------------------------------------------------
# superinstructions
#
# Fused closures return the number of instruction slots they retired so the
# interpreter's tick accounting matches the generic tier exactly.  A fused
# closure that faults first rewinds ``frame.pc`` to the faulting
# sub-instruction, keeping handler lookup and fault attribution identical.
# ---------------------------------------------------------------------------

def _f_revcheck(vm, slot, field_name, target, pc):
    """ALOAD · GETFIELD · DUP · IFNONNULL — the stub revocation check."""
    getfield_pc = pc + 1
    fall_pc = pc + 4
    cache_class = None
    cache_slot = 0

    def run(thread, frame):
        nonlocal cache_class, cache_slot
        obj = frame.locals[slot]
        if obj is None:
            # the ALOAD sub-instruction completed: 2 ticks, fault at pc+1
            frame.pc = getfield_pc
            _guest_throw(vm, thread, NULL_POINTER,
                         f"getfield {field_name}", ticks=2)
        jclass = obj.jclass
        if jclass is not cache_class:
            cache_slot = jclass.field_slots[field_name]
            cache_class = jclass
        value = obj.fields[cache_slot]
        stack = frame.stack
        if value is not None:
            stack.append(value)
            frame.pc = target
        else:
            stack.append(None)
            frame.pc = fall_pc
        return 4
    return run


def _f_load_getfield(vm, slot, field_name, pc):
    """ALOAD · GETFIELD — e.g. the stub's domain-handle load."""
    getfield_pc = pc + 1
    next_pc = pc + 2
    cache_class = None
    cache_slot = 0

    def run(thread, frame):
        nonlocal cache_class, cache_slot
        obj = frame.locals[slot]
        if obj is None:
            # the ALOAD sub-instruction completed: 2 ticks, fault at pc+1
            frame.pc = getfield_pc
            _guest_throw(vm, thread, NULL_POINTER,
                         f"getfield {field_name}", ticks=2)
        jclass = obj.jclass
        if jclass is not cache_class:
            cache_slot = jclass.field_slots[field_name]
            cache_class = jclass
        frame.stack.append(obj.fields[cache_slot])
        frame.pc = next_pc
        return 2
    return run


def _f_cmp_branch(op, slot_a, slot_b, target, pc):
    """ILOAD · ILOAD · IF_ICMP* — loop heads and guards."""
    compare = _CMP_BRANCHES[op]
    next_pc = pc + 3

    def run(thread, frame):
        locals_ = frame.locals
        frame.pc = (
            target if compare(locals_[slot_a], locals_[slot_b]) else next_pc
        )
        return 3
    return run


def _f_iinc_goto(slot, delta, target):
    """IINC · GOTO — loop tails."""
    def run(thread, frame):
        locals_ = frame.locals
        locals_[slot] = i32(locals_[slot] + delta)
        frame.pc = target
        return 2
    return run


def _f_push_run(items, pc):
    """A run of local/const pushes (the stub's argument-push sequence).

    ``items`` holds ``(is_local, operand)`` pairs: a local slot index or a
    ready-to-push constant.  None of the fused ops can fault.
    """
    width = len(items)
    next_pc = pc + width
    kinds = tuple(is_local for is_local, _ in items)
    if kinds == (True, True):
        slot_a, slot_b = items[0][1], items[1][1]

        def run(thread, frame):
            locals_ = frame.locals
            frame.stack += (locals_[slot_a], locals_[slot_b])
            frame.pc = next_pc
            return 2
        return run
    if kinds == (True, True, True):
        slot_a, slot_b, slot_c = (operand for _, operand in items)

        def run(thread, frame):
            locals_ = frame.locals
            frame.stack += (locals_[slot_a], locals_[slot_b],
                            locals_[slot_c])
            frame.pc = next_pc
            return 3
        return run
    if True not in kinds:  # all constants
        values = tuple(operand for _, operand in items)

        def run(thread, frame):
            frame.stack += values
            frame.pc = next_pc
            return width
        return run

    def run(thread, frame):
        locals_ = frame.locals
        stack = frame.stack
        for is_local, operand in items:
            stack.append(locals_[operand] if is_local else operand)
        frame.pc = next_pc
        return width
    return run


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------

def _compile_instr(vm, loader, pc, instr):
    """One instruction tuple -> one closure (no fusion)."""
    op = instr[0]
    next_pc = pc + 1
    if op in _PUSH_LOCAL:
        return _c_load(instr[1], next_pc)
    if op == "istore" or op == "astore" or op == "dstore":
        return _c_store(instr[1], next_pc)
    if op == "iconst" or op == "dconst":
        return _c_const(instr[1], next_pc)
    if op == "aconst_null":
        return _c_const(None, next_pc)
    if op == "ldc_str":
        return _c_ldc_str(vm, instr[1], next_pc)
    if op == "iinc":
        return _c_iinc(instr[1], instr[2], next_pc)
    if op in ("iadd", "isub", "imul", "ineg", "ishl", "ishr", "iand",
              "ior", "ixor"):
        return _c_int_arith(op, next_pc)
    if op == "idiv":
        return _c_idiv(vm, next_pc)
    if op == "irem":
        return _c_irem(vm, next_pc)
    if op in ("dadd", "dsub", "dmul", "dneg"):
        return _c_double_arith(op, next_pc)
    if op == "ddiv":
        return _c_ddiv(next_pc)
    if op == "dcmp":
        return _c_dcmp(next_pc)
    if op == "i2d":
        return _c_i2d(next_pc)
    if op == "d2i":
        return _c_d2i(next_pc)
    if op in ("pop", "dup", "dup_x1", "swap", "nop"):
        return _c_stack_op(op, next_pc)
    if op == "goto":
        return _c_goto(instr[1])
    if op in ("ifeq", "ifne", "iflt", "ifle", "ifgt", "ifge", "ifnull",
              "ifnonnull"):
        return _c_if_unary(op, instr[1], next_pc)
    if op in ("if_icmpeq", "if_icmpne", "if_icmplt", "if_icmple",
              "if_icmpgt", "if_icmpge", "if_acmpeq", "if_acmpne"):
        return _c_if_binary(op, instr[1], next_pc)
    if op == "getfield":
        return _c_getfield(vm, instr[2], next_pc)
    if op == "putfield":
        return _c_putfield(vm, instr[2], next_pc)
    if op == "getstatic":
        return _c_getstatic(loader, instr[1], instr[2], next_pc)
    if op == "putstatic":
        return _c_putstatic(loader, instr[1], instr[2], next_pc)
    if op == "new":
        return _c_new(vm, loader, instr[1], next_pc)
    if op == "newarray":
        return _c_newarray(vm, loader, instr[1], next_pc)
    if op in ("baload", "iaload", "daload", "aaload"):
        return _c_aload_elem(vm, next_pc)
    if op in ("bastore", "iastore", "dastore", "aastore"):
        return _c_astore_elem(vm, op, next_pc)
    if op == "arraylength":
        return _c_arraylength(vm, next_pc)
    if op == "checkcast":
        return _c_checkcast(vm, loader, instr[1], next_pc)
    if op == "instanceof":
        return _c_instanceof(vm, loader, instr[1], next_pc)
    if op == "invokevirtual":
        return _c_invokevirtual(vm, instr[2], instr[3], next_pc)
    if op == "invokeinterface":
        return _c_invokeinterface(vm, loader, instr[1], instr[2], instr[3],
                                  next_pc)
    if op == "invokespecial":
        return _c_invokespecial(vm, loader, instr[1], instr[2], instr[3],
                                next_pc)
    if op == "invokestatic":
        return _c_invokestatic(vm, loader, instr[1], instr[2], instr[3],
                               next_pc)
    if op == "return":
        return _c_return()
    if op in ("ireturn", "areturn", "dreturn"):
        return _c_value_return()
    if op == "athrow":
        return _c_athrow(vm)
    if op == "monitorenter":
        return _c_monitorenter(vm, next_pc)
    if op == "monitorexit":
        return _c_monitorexit(vm, next_pc)
    raise AssertionError(  # pragma: no cover - check_classfile rejects these
        f"unknown opcode {op!r}"
    )


def _entry_points(code, handlers):
    """Every pc that can be jumped to; fusion must not cover them."""
    entries = {0}
    for instr in code:
        if len(instr) > 1 and instr[0] in _BRANCH_OPS:
            entries.add(instr[1])
    for handler in handlers:
        entries.add(handler.handler_pc)
    return entries


def _clear(entries, start, stop):
    """True if no pc in [start, stop) is an entry point."""
    for pc in range(start, stop):
        if pc in entries:
            return False
    return True


def _try_fuse(vm, code, entries, pc, length):
    """Return (fused_closure, width) for the longest idiom at ``pc``."""
    op = code[pc][0]
    # ALOAD · GETFIELD · DUP · IFNONNULL (revocation check)
    if (op == "aload" and pc + 3 < length
            and code[pc + 1][0] == "getfield"
            and code[pc + 2][0] == "dup"
            and code[pc + 3][0] == "ifnonnull"
            and _clear(entries, pc + 1, pc + 4)):
        return (
            _f_revcheck(vm, code[pc][1], code[pc + 1][2],
                        code[pc + 3][1], pc),
            4,
        )
    # ILOAD · ILOAD · IF_ICMP* (loop head / guard)
    if (op == "iload" and pc + 2 < length
            and code[pc + 1][0] == "iload"
            and code[pc + 2][0] in _CMP_BRANCHES
            and _clear(entries, pc + 1, pc + 3)):
        return (
            _f_cmp_branch(code[pc + 2][0], code[pc][1], code[pc + 1][1],
                          code[pc + 2][1], pc),
            3,
        )
    # ALOAD · GETFIELD (field read)
    if (op == "aload" and pc + 1 < length
            and code[pc + 1][0] == "getfield"
            and pc + 1 not in entries):
        return _f_load_getfield(vm, code[pc][1], code[pc + 1][2], pc), 2
    # IINC · GOTO (loop tail)
    if (op == "iinc" and pc + 1 < length
            and code[pc + 1][0] == "goto"
            and pc + 1 not in entries):
        return _f_iinc_goto(code[pc][1], code[pc][2], code[pc + 1][1]), 2
    # run of local/const pushes (argument pushes)
    if op in _PUSH_LOCAL or op in _PUSH_CONST:
        stop = pc + 1
        limit = min(length, pc + _MAX_RUN)
        while (stop < limit and stop not in entries
               and (code[stop][0] in _PUSH_LOCAL
                    or code[stop][0] in _PUSH_CONST)):
            stop += 1
        if stop - pc >= 2:
            items = tuple(
                (True, code[run_pc][1])
                if code[run_pc][0] in _PUSH_LOCAL
                else (False,
                      None if code[run_pc][0] == "aconst_null"
                      else code[run_pc][1])
                for run_pc in range(pc, stop)
            )
            return _f_push_run(items, pc), stop - pc
    return None


def compile_method(vm, rtclass, method):
    """Compile one method body into a threaded-code stream."""
    loader = rtclass.loader
    code = method.code
    stream = [
        _compile_instr(vm, loader, pc, instr)
        for pc, instr in enumerate(code)
    ]
    entries = _entry_points(code, method.handlers)
    length = len(code)
    pc = 0
    while pc < length:
        fused = _try_fuse(vm, code, entries, pc, length)
        if fused is not None:
            stream[pc], width = fused
            pc += width
        else:
            pc += 1
    return stream


def compile_class(vm, rtclass):
    """Compile every concrete method of a linked class (called by the
    loader after verification)."""
    classfile = rtclass.classfile
    if classfile is None:
        return
    streams = rtclass.code_streams
    for method in classfile.methods:
        if method.code:
            streams[(method.name, method.desc)] = compile_method(
                vm, rtclass, method
            )
