"""The MiniJVM bytecode interpreter.

A steppable, re-entrant stack-machine interpreter: the scheduler hands it a
thread and an instruction budget, and it executes until the budget runs
out, the thread blocks, or the thread terminates.  All guest-visible
failures (null dereference, bad cast, division by zero, …) are delivered
as guest exceptions that unwind guest frames through exception handlers.

Verified code cannot reach the interpreter's internal error paths: the
verifier guarantees operand types, stack bounds and resolution success, so
the only dynamic checks here are the ones the JVM also makes at run time
(null, bounds, cast, array store, interface dispatch, monitor ownership).
"""

from __future__ import annotations

from .dispatch import DispatchError
from .values import OBJECT, i8, i32
from .threads import BLOCKED, RUNNABLE, TERMINATED, Frame

# Sentinel returned by a native method that must block and be retried.
NATIVE_BLOCKED = object()

NULL_POINTER = "java/lang/NullPointerException"
ARITHMETIC = "java/lang/ArithmeticException"
ARRAY_BOUNDS = "java/lang/ArrayIndexOutOfBoundsException"
NEGATIVE_SIZE = "java/lang/NegativeArraySizeException"
CLASS_CAST = "java/lang/ClassCastException"
ARRAY_STORE = "java/lang/ArrayStoreException"
ILLEGAL_MONITOR = "java/lang/IllegalMonitorStateException"
INCOMPATIBLE = "java/lang/IncompatibleClassChangeError"
UNSATISFIED_LINK = "java/lang/UnsatisfiedLinkError"


class GuestUnwind(Exception):
    """A guest exception in flight inside the interpreter.

    ``ticks`` is how many instruction slots the raiser accounts for —
    normally 1 (the faulting instruction), but a superinstruction that
    faults midway reports its completed sub-instructions too, keeping
    retired-tick accounting identical across dispatch tiers.
    """

    __slots__ = ("jobject", "ticks")

    def __init__(self, jobject, ticks=1):
        self.jobject = jobject
        self.ticks = ticks


class Interpreter:
    """Drives guest threads through one of two dispatch tiers.

    ``use_threaded`` selects between the specialized per-method
    closure streams compiled at link time (:mod:`repro.jvm.threaded`,
    the default) and the generic decoder in :meth:`_execute`.  The two
    tiers are behaviourally identical; the flag exists for differential
    testing and for embedders that want the simpler decoder.
    """

    def __init__(self, vm):
        self.vm = vm
        self.instructions_retired = 0
        self.use_threaded = True

    # -- driving ---------------------------------------------------------
    def step(self, thread, max_instrs):
        """Execute up to ``max_instrs`` instructions of ``thread``.

        Threaded-code closures return how many instruction slots they
        retired (superinstructions cover several), so tick accounting
        matches the generic tier; a fused tail may overshoot the budget
        by at most the width of one superinstruction.
        """
        executed = 0
        use_threaded = self.use_threaded
        frames = thread.frames
        while executed < max_instrs:
            if thread.state != RUNNABLE or thread.suspended:
                break
            if thread.pending_stop is not None:
                jobject = thread.pending_stop
                thread.pending_stop = None
                executed += 1
                self._deliver(thread, jobject)
                continue
            if not frames:
                thread.state = TERMINATED
                break
            frame = frames[-1]
            stream = frame.threaded if use_threaded else None
            try:
                if stream is not None:
                    executed += stream[frame.pc](thread, frame) or 1
                else:
                    self._execute(thread, frame)
                    executed += 1
            except GuestUnwind as unwind:
                executed += unwind.ticks
                self._deliver(thread, unwind.jobject)
            if thread.yielded:
                thread.yielded = False
                break
        self.instructions_retired += executed
        return executed

    # -- guest exception machinery ---------------------------------------------
    def throw(self, thread, class_name, message=None):
        """Create and raise a guest exception (used by opcode handlers and
        native methods)."""
        jobject = self.vm.make_throwable(
            class_name, message, owner=thread.domain_tag
        )
        raise GuestUnwind(jobject)

    def _deliver(self, thread, jobject):
        top = True
        while thread.frames:
            frame = thread.frames[-1]
            fault_pc = frame.pc if top else frame.pc - 1
            handler = self._find_handler(frame, fault_pc, jobject)
            if handler is not None:
                frame.pc = handler
                frame.stack.clear()
                frame.stack.append(jobject)
                return
            thread.frames.pop()
            top = False
        thread.uncaught = jobject
        thread.state = TERMINATED
        self.vm.monitors.discard(thread)

    def _find_handler(self, frame, fault_pc, jobject):
        for handler in frame.method.handlers:
            if not handler.start_pc <= fault_pc < handler.end_pc:
                continue
            if handler.catch_type is None:
                return handler.handler_pc
            catch_class = frame.rtclass.loader.load(handler.catch_type)
            if jobject.jclass.is_assignable_to(catch_class):
                return handler.handler_pc
        return None

    # -- invocation --------------------------------------------------------------
    def _invoke(self, thread, frame, owner, method, total_args):
        stack = frame.stack
        if method.is_native:
            binding = owner.native_bindings.get(method.key)
            if binding is None:
                found = self.vm.natives.lookup(owner, method)
                if found is None:
                    self.throw(
                        thread,
                        UNSATISFIED_LINK,
                        f"{owner.name}.{method.name}{method.desc}",
                    )
                binding = owner.native_bindings[method.key] = found
            args = stack[len(stack) - total_args:] if total_args else []
            result = binding(self.vm, thread, args)
            if result is NATIVE_BLOCKED:
                return
            if total_args:
                del stack[len(stack) - total_args:]
            if not method.desc.endswith(")V"):
                stack.append(result)
            frame.pc += 1
            return
        args = stack[len(stack) - total_args:] if total_args else []
        if total_args:
            del stack[len(stack) - total_args:]
        frame.pc += 1
        thread.frames.append(Frame(owner, method, args))

    # -- the big switch --------------------------------------------------------
    def _execute(self, thread, frame):
        vm = self.vm
        stack = frame.stack
        locals_ = frame.locals
        instr = frame.code[frame.pc]
        op = instr[0]

        # --- loads/stores/constants (hot) ---
        if op == "iload" or op == "aload" or op == "dload":
            stack.append(locals_[instr[1]])
            frame.pc += 1
        elif op == "istore" or op == "astore" or op == "dstore":
            locals_[instr[1]] = stack.pop()
            frame.pc += 1
        elif op == "iconst":
            stack.append(instr[1])
            frame.pc += 1
        elif op == "dconst":
            stack.append(instr[1])
            frame.pc += 1
        elif op == "ldc_str":
            stack.append(vm.intern(instr[1]))
            frame.pc += 1
        elif op == "aconst_null":
            stack.append(None)
            frame.pc += 1
        elif op == "iinc":
            locals_[instr[1]] = i32(locals_[instr[1]] + instr[2])
            frame.pc += 1

        # --- int arithmetic ---
        elif op == "iadd":
            b = stack.pop()
            stack[-1] = i32(stack[-1] + b)
            frame.pc += 1
        elif op == "isub":
            b = stack.pop()
            stack[-1] = i32(stack[-1] - b)
            frame.pc += 1
        elif op == "imul":
            b = stack.pop()
            stack[-1] = i32(stack[-1] * b)
            frame.pc += 1
        elif op == "idiv":
            b = stack.pop()
            a = stack[-1]
            if b == 0:
                self.throw(thread, ARITHMETIC, "/ by zero")
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            stack[-1] = i32(quotient)
            frame.pc += 1
        elif op == "irem":
            b = stack.pop()
            a = stack[-1]
            if b == 0:
                self.throw(thread, ARITHMETIC, "% by zero")
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            stack[-1] = i32(a - quotient * b)
            frame.pc += 1
        elif op == "ineg":
            stack[-1] = i32(-stack[-1])
            frame.pc += 1
        elif op == "ishl":
            b = stack.pop()
            stack[-1] = i32(stack[-1] << (b & 31))
            frame.pc += 1
        elif op == "ishr":
            b = stack.pop()
            stack[-1] = i32(stack[-1] >> (b & 31))
            frame.pc += 1
        elif op == "iand":
            b = stack.pop()
            stack[-1] = i32(stack[-1] & b)
            frame.pc += 1
        elif op == "ior":
            b = stack.pop()
            stack[-1] = i32(stack[-1] | b)
            frame.pc += 1
        elif op == "ixor":
            b = stack.pop()
            stack[-1] = i32(stack[-1] ^ b)
            frame.pc += 1

        # --- double arithmetic ---
        elif op == "dadd":
            b = stack.pop()
            stack[-1] = stack[-1] + b
            frame.pc += 1
        elif op == "dsub":
            b = stack.pop()
            stack[-1] = stack[-1] - b
            frame.pc += 1
        elif op == "dmul":
            b = stack.pop()
            stack[-1] = stack[-1] * b
            frame.pc += 1
        elif op == "ddiv":
            b = stack.pop()
            a = stack[-1]
            if b == 0.0:
                stack[-1] = float("nan") if a == 0.0 else (
                    float("inf") if a > 0 else float("-inf")
                )
            else:
                stack[-1] = a / b
            frame.pc += 1
        elif op == "dneg":
            stack[-1] = -stack[-1]
            frame.pc += 1
        elif op == "dcmp":
            b = stack.pop()
            a = stack.pop()
            if a != a or b != b:  # NaN
                stack.append(-1)
            elif a < b:
                stack.append(-1)
            elif a > b:
                stack.append(1)
            else:
                stack.append(0)
            frame.pc += 1
        elif op == "i2d":
            stack[-1] = float(stack[-1])
            frame.pc += 1
        elif op == "d2i":
            value = stack[-1]
            if value != value:
                stack[-1] = 0
            elif value >= 2147483647.0:
                stack[-1] = 2147483647
            elif value <= -2147483648.0:
                stack[-1] = -2147483648
            else:
                stack[-1] = int(value)
            frame.pc += 1

        # --- stack ops ---
        elif op == "pop":
            stack.pop()
            frame.pc += 1
        elif op == "dup":
            stack.append(stack[-1])
            frame.pc += 1
        elif op == "dup_x1":
            top = stack.pop()
            under = stack.pop()
            stack += [top, under, top]
            frame.pc += 1
        elif op == "swap":
            stack[-1], stack[-2] = stack[-2], stack[-1]
            frame.pc += 1
        elif op == "nop":
            frame.pc += 1

        # --- branches ---
        elif op == "goto":
            frame.pc = instr[1]
        elif op == "ifeq":
            frame.pc = instr[1] if stack.pop() == 0 else frame.pc + 1
        elif op == "ifne":
            frame.pc = instr[1] if stack.pop() != 0 else frame.pc + 1
        elif op == "iflt":
            frame.pc = instr[1] if stack.pop() < 0 else frame.pc + 1
        elif op == "ifle":
            frame.pc = instr[1] if stack.pop() <= 0 else frame.pc + 1
        elif op == "ifgt":
            frame.pc = instr[1] if stack.pop() > 0 else frame.pc + 1
        elif op == "ifge":
            frame.pc = instr[1] if stack.pop() >= 0 else frame.pc + 1
        elif op == "if_icmpeq":
            b = stack.pop()
            frame.pc = instr[1] if stack.pop() == b else frame.pc + 1
        elif op == "if_icmpne":
            b = stack.pop()
            frame.pc = instr[1] if stack.pop() != b else frame.pc + 1
        elif op == "if_icmplt":
            b = stack.pop()
            frame.pc = instr[1] if stack.pop() < b else frame.pc + 1
        elif op == "if_icmple":
            b = stack.pop()
            frame.pc = instr[1] if stack.pop() <= b else frame.pc + 1
        elif op == "if_icmpgt":
            b = stack.pop()
            frame.pc = instr[1] if stack.pop() > b else frame.pc + 1
        elif op == "if_icmpge":
            b = stack.pop()
            frame.pc = instr[1] if stack.pop() >= b else frame.pc + 1
        elif op == "if_acmpeq":
            b = stack.pop()
            frame.pc = instr[1] if stack.pop() is b else frame.pc + 1
        elif op == "if_acmpne":
            b = stack.pop()
            frame.pc = instr[1] if stack.pop() is not b else frame.pc + 1
        elif op == "ifnull":
            frame.pc = instr[1] if stack.pop() is None else frame.pc + 1
        elif op == "ifnonnull":
            frame.pc = instr[1] if stack.pop() is not None else frame.pc + 1

        # --- fields ---
        elif op == "getfield":
            receiver = stack.pop()
            if receiver is None:
                self.throw(thread, NULL_POINTER, f"getfield {instr[2]}")
            stack.append(receiver.fields[receiver.jclass.field_slots[instr[2]]])
            frame.pc += 1
        elif op == "putfield":
            value = stack.pop()
            receiver = stack.pop()
            if receiver is None:
                self.throw(thread, NULL_POINTER, f"putfield {instr[2]}")
            receiver.fields[receiver.jclass.field_slots[instr[2]]] = value
            frame.pc += 1
        elif op == "getstatic":
            rtclass = frame.rtclass.loader.load(instr[1])
            owner, index, _ = rtclass.find_static(instr[2])
            stack.append(owner.static_slots[index])
            frame.pc += 1
        elif op == "putstatic":
            rtclass = frame.rtclass.loader.load(instr[1])
            owner, index, _ = rtclass.find_static(instr[2])
            owner.static_slots[index] = stack.pop()
            frame.pc += 1

        # --- allocation ---
        elif op == "new":
            rtclass = frame.rtclass.loader.load(instr[1])
            stack.append(vm.heap.new_object(rtclass, owner=thread.domain_tag))
            frame.pc += 1
        elif op == "newarray":
            length = stack.pop()
            if length < 0:
                self.throw(thread, NEGATIVE_SIZE, str(length))
            array_class = vm.array_class_for_descriptor(
                "[" + instr[1], frame.rtclass.loader
            )
            stack.append(
                vm.heap.new_array(array_class, length, owner=thread.domain_tag)
            )
            frame.pc += 1

        # --- arrays ---
        elif op in ("baload", "iaload", "daload", "aaload"):
            index = stack.pop()
            array = stack.pop()
            if array is None:
                self.throw(thread, NULL_POINTER, "array load")
            if not 0 <= index < len(array.elems):
                self.throw(thread, ARRAY_BOUNDS, str(index))
            stack.append(array.elems[index])
            frame.pc += 1
        elif op == "bastore":
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            if array is None:
                self.throw(thread, NULL_POINTER, "bastore")
            if not 0 <= index < len(array.elems):
                self.throw(thread, ARRAY_BOUNDS, str(index))
            array.elems[index] = i8(value)
            frame.pc += 1
        elif op == "iastore":
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            if array is None:
                self.throw(thread, NULL_POINTER, "iastore")
            if not 0 <= index < len(array.elems):
                self.throw(thread, ARRAY_BOUNDS, str(index))
            array.elems[index] = i32(value)
            frame.pc += 1
        elif op == "dastore":
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            if array is None:
                self.throw(thread, NULL_POINTER, "dastore")
            if not 0 <= index < len(array.elems):
                self.throw(thread, ARRAY_BOUNDS, str(index))
            array.elems[index] = value
            frame.pc += 1
        elif op == "aastore":
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            if array is None:
                self.throw(thread, NULL_POINTER, "aastore")
            if not 0 <= index < len(array.elems):
                self.throw(thread, ARRAY_BOUNDS, str(index))
            if value is not None:
                element_class = array.jclass.element_class
                if element_class is not None and not value.jclass.is_assignable_to(
                    element_class
                ):
                    self.throw(
                        thread,
                        ARRAY_STORE,
                        f"{value.jclass.name} into {array.jclass.name}",
                    )
            array.elems[index] = value
            frame.pc += 1
        elif op == "arraylength":
            array = stack.pop()
            if array is None:
                self.throw(thread, NULL_POINTER, "arraylength")
            stack.append(len(array.elems))
            frame.pc += 1

        # --- invocation ---
        elif op == "invokevirtual":
            total = vm.arg_count(instr[3]) + 1
            receiver = stack[-total]
            if receiver is None:
                self.throw(thread, NULL_POINTER, f"invokevirtual {instr[2]}")
            index = receiver.jclass.vindex[(instr[2], instr[3])]
            owner, method = receiver.jclass.vtable[index]
            self._invoke(thread, frame, owner, method, total)
        elif op == "invokeinterface":
            total = vm.arg_count(instr[3]) + 1
            receiver = stack[-total]
            if receiver is None:
                self.throw(thread, NULL_POINTER, f"invokeinterface {instr[2]}")
            iface = frame.rtclass.loader.load(instr[1])
            try:
                owner, method = vm.dispatcher.lookup(
                    receiver.jclass, iface, instr[2], instr[3]
                )
            except DispatchError as exc:
                self.throw(thread, INCOMPATIBLE, str(exc))
            self._invoke(thread, frame, owner, method, total)
        elif op == "invokespecial":
            total = vm.arg_count(instr[3]) + 1
            receiver = stack[-total]
            if receiver is None:
                self.throw(thread, NULL_POINTER, f"invokespecial {instr[2]}")
            target_class = frame.rtclass.loader.load(instr[1])
            owner, method = target_class.find_declared(instr[2], instr[3])
            self._invoke(thread, frame, owner, method, total)
        elif op == "invokestatic":
            total = vm.arg_count(instr[3])
            target_class = frame.rtclass.loader.load(instr[1])
            owner, method = target_class.find_declared(instr[2], instr[3])
            self._invoke(thread, frame, owner, method, total)

        # --- casts ---
        elif op == "checkcast":
            value = stack[-1]
            if value is not None:
                target = self._type_operand(frame, instr[1])
                if not value.jclass.is_assignable_to(target):
                    self.throw(
                        thread,
                        CLASS_CAST,
                        f"{value.jclass.name} cannot be cast to {target.name}",
                    )
            frame.pc += 1
        elif op == "instanceof":
            value = stack.pop()
            if value is None:
                stack.append(0)
            else:
                target = self._type_operand(frame, instr[1])
                stack.append(1 if value.jclass.is_assignable_to(target) else 0)
            frame.pc += 1

        # --- returns ---
        elif op == "return":
            thread.frames.pop()
            if not thread.frames:
                thread.result = None
                thread.state = TERMINATED
        elif op in ("ireturn", "areturn", "dreturn"):
            value = stack.pop()
            thread.frames.pop()
            if thread.frames:
                thread.frames[-1].stack.append(value)
            else:
                thread.result = value
                thread.state = TERMINATED

        # --- exceptions and monitors ---
        elif op == "athrow":
            value = stack.pop()
            if value is None:
                self.throw(thread, NULL_POINTER, "athrow null")
            raise GuestUnwind(value)
        elif op == "monitorenter":
            target = stack[-1]
            if target is None:
                self.throw(thread, NULL_POINTER, "monitorenter")
            if vm.monitors.try_enter(target, thread):
                stack.pop()
                frame.pc += 1
            else:
                thread.state = BLOCKED
                thread.blocked_on = target
        elif op == "monitorexit":
            target = stack.pop()
            if target is None:
                self.throw(thread, NULL_POINTER, "monitorexit")
            woken = vm.monitors.exit(target, thread)
            if woken is None:
                self.throw(thread, ILLEGAL_MONITOR, "not owner")
            for waiter in woken:
                vm.scheduler.wake(waiter)
            frame.pc += 1
        else:  # pragma: no cover - verifier rejects unknown opcodes
            raise AssertionError(f"unhandled opcode {op}")

    def _type_operand(self, frame, name):
        if name.startswith("["):
            return self.vm.array_class_for_descriptor(name, frame.rtclass.loader)
        return frame.rtclass.loader.load(name)
