"""In-memory classfile model for the MiniJVM.

A :class:`ClassFile` is the unit of code submitted to a class loader.  It is
a plain data structure — untrusted until it passes structural checking
(:func:`check_classfile`) and bytecode verification (``repro.jvm.verifier``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ClassFormatError
from .instructions import OPERAND_SHAPES
from .values import OBJECT, parse_field_descriptor, parse_method_descriptor

ACC_PUBLIC = 0x0001
ACC_PRIVATE = 0x0002
ACC_STATIC = 0x0008
ACC_FINAL = 0x0010
ACC_INTERFACE = 0x0200
ACC_ABSTRACT = 0x0400
ACC_NATIVE = 0x0100

CONSTRUCTOR_NAME = "<init>"
CLASS_INITIALIZER_NAME = "<clinit>"


@dataclass(frozen=True)
class FieldDef:
    """A declared field: ``desc`` is a field descriptor, ``flags`` ACC_* bits."""

    name: str
    desc: str
    flags: int = ACC_PUBLIC

    @property
    def is_static(self):
        return bool(self.flags & ACC_STATIC)

    @property
    def is_private(self):
        return bool(self.flags & ACC_PRIVATE)


@dataclass(frozen=True)
class ExceptionHandler:
    """Covers instruction indices ``[start_pc, end_pc)``.

    ``catch_type`` is a class name or ``None`` for a catch-all handler.
    """

    start_pc: int
    end_pc: int
    handler_pc: int
    catch_type: str | None = None


@dataclass(frozen=True)
class MethodDef:
    """A declared method.

    ``code`` is a tuple of instruction tuples ``(opcode, *operands)``; pcs
    are instruction indices (not byte offsets).  Native methods carry no
    code and are bound to host functions by the native bridge at link time.
    """

    name: str
    desc: str
    flags: int = ACC_PUBLIC
    max_stack: int = 0
    max_locals: int = 0
    code: tuple = ()
    handlers: tuple = ()

    @property
    def is_static(self):
        return bool(self.flags & ACC_STATIC)

    @property
    def is_private(self):
        return bool(self.flags & ACC_PRIVATE)

    @property
    def is_native(self):
        return bool(self.flags & ACC_NATIVE)

    @property
    def is_abstract(self):
        return bool(self.flags & ACC_ABSTRACT)

    @property
    def key(self):
        return (self.name, self.desc)


@dataclass(frozen=True)
class ClassFile:
    """One class or interface as submitted to a loader."""

    name: str
    super_name: str | None = OBJECT
    interfaces: tuple = ()
    flags: int = ACC_PUBLIC
    fields: tuple = ()
    methods: tuple = ()
    source: str = "<assembled>"

    @property
    def is_interface(self):
        return bool(self.flags & ACC_INTERFACE)

    def method(self, name, desc):
        for method_def in self.methods:
            if method_def.name == name and method_def.desc == desc:
                return method_def
        return None


def check_classfile(classfile):
    """Structural well-formedness check, applied before verification.

    Catches duplicate members, malformed descriptors, bad handler ranges and
    unknown opcodes.  Raises :class:`ClassFormatError`.
    """
    seen_fields = set()
    for field_def in classfile.fields:
        if field_def.name in seen_fields:
            raise ClassFormatError(
                f"duplicate field {field_def.name} in {classfile.name}"
            )
        seen_fields.add(field_def.name)
        desc, end = parse_field_descriptor(field_def.desc)
        if end != len(field_def.desc):
            raise ClassFormatError(
                f"trailing junk in descriptor of {classfile.name}.{field_def.name}"
            )

    seen_methods = set()
    for method_def in classfile.methods:
        if method_def.key in seen_methods:
            raise ClassFormatError(
                f"duplicate method {method_def.name}{method_def.desc} "
                f"in {classfile.name}"
            )
        seen_methods.add(method_def.key)
        try:
            parse_method_descriptor(method_def.desc)
        except ValueError as exc:
            raise ClassFormatError(str(exc)) from exc
        if method_def.is_native or method_def.is_abstract:
            if method_def.code:
                raise ClassFormatError(
                    f"native/abstract method {classfile.name}.{method_def.name} "
                    "has code"
                )
            continue
        if classfile.is_interface:
            raise ClassFormatError(
                f"interface {classfile.name} declares concrete method "
                f"{method_def.name}"
            )
        if not method_def.code:
            raise ClassFormatError(
                f"concrete method {classfile.name}.{method_def.name} has no code"
            )
        _check_code(classfile, method_def)


def _check_code(classfile, method_def):
    code_len = len(method_def.code)
    for pc, instr in enumerate(method_def.code):
        opcode = instr[0]
        shape = OPERAND_SHAPES.get(opcode)
        if shape is None:
            raise ClassFormatError(
                f"unknown opcode {opcode!r} at pc={pc} in "
                f"{classfile.name}.{method_def.name}"
            )
        if len(instr) - 1 != len(shape):
            raise ClassFormatError(
                f"opcode {opcode} expects {len(shape)} operands, got "
                f"{len(instr) - 1} at pc={pc} in "
                f"{classfile.name}.{method_def.name}"
            )
        for operand, kind in zip(instr[1:], shape):
            _check_operand(classfile, method_def, pc, opcode, operand, kind, code_len)
    for handler in method_def.handlers:
        if not (0 <= handler.start_pc < handler.end_pc <= code_len):
            raise ClassFormatError(
                f"bad handler range in {classfile.name}.{method_def.name}"
            )
        if not (0 <= handler.handler_pc < code_len):
            raise ClassFormatError(
                f"bad handler target in {classfile.name}.{method_def.name}"
            )


def _check_operand(classfile, method_def, pc, opcode, operand, kind, code_len):
    where = f"at pc={pc} in {classfile.name}.{method_def.name}"
    if kind == "int":
        if not isinstance(operand, int) or isinstance(operand, bool):
            raise ClassFormatError(f"{opcode} needs int operand {where}")
    elif kind == "float":
        if not isinstance(operand, float):
            raise ClassFormatError(f"{opcode} needs float operand {where}")
    elif kind == "str":
        if not isinstance(operand, str):
            raise ClassFormatError(f"{opcode} needs str operand {where}")
    elif kind == "target":
        if not isinstance(operand, int) or not 0 <= operand < code_len:
            raise ClassFormatError(f"{opcode} branch target out of range {where}")
    elif kind == "index":
        if not isinstance(operand, int) or operand < 0:
            raise ClassFormatError(f"{opcode} needs non-negative index {where}")
    else:  # pragma: no cover - shape table is internal
        raise AssertionError(f"unknown operand kind {kind}")
