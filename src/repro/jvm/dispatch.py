"""Interface method dispatch strategies (Table 1, "interface method
invocation").

* :class:`LinearInterfaceDispatch` — re-checks the interface relation and
  scans the receiver's virtual table on every call (MS-VM-like: interface
  calls cost ~10x a virtual call).
* :class:`CachedInterfaceDispatch` — builds a per-(class, interface) itable
  once, then every call is two dictionary hits (Sun-VM-like: interface
  calls cost about the same as virtual calls).

Both verify at run time that the receiver actually implements the
interface; the verifier defers that check to here, as the JVM does.
"""

from __future__ import annotations


class DispatchError(Exception):
    """Receiver does not implement the interface (runtime check)."""


class LinearInterfaceDispatch:
    name = "linear"

    def lookup(self, receiver_class, iface, method_name, desc):
        implemented = False
        for candidate in receiver_class.all_interfaces:
            if candidate is iface:
                implemented = True
                break
        if not implemented:
            raise DispatchError(
                f"{receiver_class.name} does not implement {iface.name}"
            )
        key = (method_name, desc)
        for owner, method in receiver_class.vtable:
            if method.key == key:
                return owner, method
        raise DispatchError(
            f"{receiver_class.name} has no implementation of "
            f"{iface.name}.{method_name}{desc}"
        )


class CachedInterfaceDispatch:
    name = "cached"

    def lookup(self, receiver_class, iface, method_name, desc):
        itable = receiver_class.itables.get(iface)
        if itable is None:
            itable = self._build_itable(receiver_class, iface)
            receiver_class.itables[iface] = itable
        entry = itable.get((method_name, desc))
        if entry is None:
            raise DispatchError(
                f"{receiver_class.name} has no implementation of "
                f"{iface.name}.{method_name}{desc}"
            )
        return entry

    @staticmethod
    def _build_itable(receiver_class, iface):
        if iface not in receiver_class.all_interfaces:
            raise DispatchError(
                f"{receiver_class.name} does not implement {iface.name}"
            )
        itable = {}
        pending = [iface]
        seen = set()
        while pending:
            current = pending.pop()
            if current in seen:
                continue
            seen.add(current)
            pending.extend(current.interfaces)
            for key in current.declared:
                index = receiver_class.vtable_index(*key)
                if index is not None:
                    itable[key] = receiver_class.vtable[index]
        return itable


class VirtualSiteCache:
    """Monomorphic inline cache for one compiled ``invokevirtual`` site.

    The threaded-code tier (:mod:`repro.jvm.threaded`) allocates one per
    call site; the first call through the site resolves the receiver
    class's vtable entry and pins it here, so steady-state dispatch is one
    identity check.  A different receiver class simply refills the cache —
    correctness never depends on it being monomorphic.  This is what makes
    a generated capability stub's ``INVOKEVIRTUAL`` of its target method
    effectively free after the first LRMI through that stub class.
    """

    __slots__ = ("klass", "owner", "method")

    def __init__(self):
        self.klass = None
        self.owner = None
        self.method = None

    def fill(self, jclass, key):
        """Resolve ``key`` against ``jclass`` and cache the entry."""
        owner, method = jclass.vtable[jclass.vindex[key]]
        self.klass = jclass
        self.owner = owner
        self.method = method
        return owner, method


def make_dispatcher(strategy):
    if strategy == "linear":
        return LinearInterfaceDispatch()
    if strategy == "cached":
        return CachedInterfaceDispatch()
    raise ValueError(f"unknown dispatch strategy {strategy!r}")
