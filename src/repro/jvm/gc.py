"""Mark-sweep garbage collector.

Roots: every thread's frames (locals + operand stacks) and pending state,
static fields of every loaded class in every loader, the intern table
(unless the VM was configured with ``intern_weak=True`` — the fix the paper
suggests for the ``String.intern`` shared leak), and host-pinned objects.

The collector is what gives the J-Kernel's revocation and termination
stories teeth: once a capability is revoked, its target is unreachable from
any root and its memory — charged to the domain that allocated it — is
reclaimed here.
"""

from __future__ import annotations

from .values import JArray, JObject


def _walk_host_value(value, push, seen_containers):
    """Follow host-side containers (native payloads) looking for guest refs."""
    if isinstance(value, (JObject, JArray)):
        push(value)
        return
    if isinstance(value, (list, tuple, set, frozenset)):
        key = id(value)
        if key in seen_containers:
            return
        seen_containers.add(key)
        for item in value:
            _walk_host_value(item, push, seen_containers)
    elif isinstance(value, dict):
        key = id(value)
        if key in seen_containers:
            return
        seen_containers.add(key)
        for item_key, item in value.items():
            _walk_host_value(item_key, push, seen_containers)
            _walk_host_value(item, push, seen_containers)


def collect(vm):
    """Run one full collection.  Returns a statistics dict."""
    marked = set()
    stack = []
    seen_containers = set()

    def push(obj):
        if isinstance(obj, (JObject, JArray)) and id(obj) not in marked:
            marked.add(id(obj))
            stack.append(obj)

    # -- roots -------------------------------------------------------------
    for thread in vm.scheduler.threads:
        for frame in thread.frames:
            for value in frame.locals:
                push(value)
            for value in frame.stack:
                push(value)
        push(thread.pending_stop)
        push(thread.guest_obj)
        push(thread.blocked_on)
        push(thread.result)
        push(thread.uncaught)
        _walk_host_value(thread.native_state, push, seen_containers)

    for loader in vm.loaders:
        for rtclass in loader.namespace.values():
            for value in rtclass.static_slots:
                push(value)

    if not vm.intern_weak:
        for jstring in vm.interned.values():
            push(jstring)

    _walk_host_value(vm.pinned, push, seen_containers)

    # -- mark -----------------------------------------------------------------
    while stack:
        obj = stack.pop()
        if isinstance(obj, JObject):
            for value in obj.fields:
                push(value)
            if obj.native is not None and not isinstance(
                obj.native, (str, int, float, bytes, bool)
            ):
                _walk_host_value(obj.native, push, seen_containers)
        else:  # JArray
            if obj.jclass.element_class is not None:
                for value in obj.elems:
                    push(value)

    # -- sweep -----------------------------------------------------------------
    live_before = vm.heap.live_count
    freed = 0
    for obj in vm.heap.live_objects():
        if id(obj) not in marked:
            vm.heap.free(obj)
            freed += 1

    if vm.intern_weak:
        vm.interned = {
            text: jstring
            for text, jstring in vm.interned.items()
            if id(jstring) in marked
        }

    prune = getattr(vm.monitors, "_registry", None)
    if prune is not None:
        vm.monitors._registry = {
            key: entry for key, entry in prune.items() if id(entry[1]) in marked
        }

    return {
        "live_before": live_before,
        "collected": freed,
        "live_after": vm.heap.live_count,
    }
