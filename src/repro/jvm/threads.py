"""Green threads and the scheduler.

The MiniJVM multiplexes guest threads onto the host thread that calls
:meth:`Scheduler.run`, exactly as a user-level threads package would.  Time
is measured in *ticks* (instructions executed).  The scheduler supports
priorities, suspension, asynchronous stop (the ``Thread.stop`` the paper's
thread-segment design defends against), sleeping and deadlock detection.

The paper's Table 1 row "thread info lookup" is the cost of finding the
current thread; VM profiles select between a hashed lookup with validation
(MS-VM-like) and a cached pointer (Sun-VM-like) — see ``current_thread``.
"""

from __future__ import annotations

from .errors import DeadlockError, OutOfStepsError
from .values import default_value, parse_method_descriptor

NEW = "NEW"
RUNNABLE = "RUNNABLE"
BLOCKED = "BLOCKED"  # contended monitor
WAITING = "WAITING"  # Object.wait / join
TIMED_WAITING = "TIMED_WAITING"  # sleep / timed wait
TERMINATED = "TERMINATED"

MIN_PRIORITY = 1
NORM_PRIORITY = 5
MAX_PRIORITY = 10


class Frame:
    """One activation record of guest code.

    ``threaded`` is the method's compiled closure stream (the specialized
    dispatch tier, :mod:`repro.jvm.threaded`) or ``None`` when only the
    generic decoder is available for this method.
    """

    __slots__ = ("rtclass", "method", "code", "locals", "stack", "pc",
                 "threaded")

    def __init__(self, rtclass, method, args):
        self.rtclass = rtclass
        self.method = method
        self.code = method.code
        self.threaded = rtclass.code_streams.get((method.name, method.desc))
        local_slots = list(args)
        pad = method.max_locals - len(local_slots)
        if pad > 0:
            local_slots += [None] * pad
        self.locals = local_slots
        self.stack = []
        self.pc = 0

    def __repr__(self):
        return (
            f"<Frame {self.rtclass.name}.{self.method.name} pc={self.pc}>"
        )


class ThreadContext:
    """One guest thread."""

    _next_tid = 1

    __slots__ = (
        "tid",
        "name",
        "frames",
        "state",
        "priority",
        "suspended",
        "blocked_on",
        "wake_at",
        "native_state",
        "pending_stop",
        "guest_obj",
        "domain_tag",
        "result",
        "uncaught",
        "last_scheduled",
        "segments",
        "segment_pool",
        "yielded",
    )

    def __init__(self, name, domain_tag="<system>"):
        self.tid = ThreadContext._next_tid
        ThreadContext._next_tid += 1
        self.name = name
        self.frames = []
        self.state = NEW
        self.priority = NORM_PRIORITY
        self.suspended = False
        self.blocked_on = None
        self.wake_at = None
        self.native_state = {}
        self.pending_stop = None
        self.guest_obj = None
        self.domain_tag = domain_tag
        self.result = None
        self.uncaught = None
        self.last_scheduled = 0
        self.segments = []  # used by repro.jkvm thread segments
        self.segment_pool = []  # retired _VMSegments kept for reuse
        self.yielded = False

    @property
    def alive(self):
        return self.state not in (NEW, TERMINATED)

    @property
    def schedulable(self):
        return self.state == RUNNABLE and not self.suspended

    def __repr__(self):
        return f"<ThreadContext #{self.tid} {self.name!r} {self.state}>"


class Scheduler:
    """Round-robin, priority-aware green-thread scheduler."""

    def __init__(self, vm, quantum=64, thread_lookup="cached"):
        self.vm = vm
        self.quantum = quantum
        self.thread_lookup = thread_lookup
        self.threads = []
        self.tick = 0
        self._current = None
        self._by_tid = {}
        self.context_switches = 0

    # -- thread management ---------------------------------------------------
    def spawn(self, rtclass, method, args, name=None, domain_tag="<system>",
              guest_obj=None, priority=NORM_PRIORITY):
        """Create a guest thread entering ``rtclass.method(args)``."""
        thread = ThreadContext(name or f"thread-{ThreadContext._next_tid}",
                               domain_tag)
        thread.priority = priority
        thread.guest_obj = guest_obj
        thread.frames.append(Frame(rtclass, method, args))
        thread.state = RUNNABLE
        self.threads.append(thread)
        self._by_tid[thread.tid] = thread
        return thread

    def current_thread(self):
        """Return the running thread, via the profile's lookup strategy.

        ``cached``: direct pointer read.  ``hashed``: dictionary lookup by
        tid plus a liveness validation scan — deliberately the slower
        strategy some 1990s VMs used, surfaced by Table 1.
        """
        if self.thread_lookup == "cached" or self._current is None:
            return self._current
        thread = self._by_tid.get(self._current.tid)
        for candidate in self.threads:
            if candidate is thread:
                break
        return thread

    def live_threads(self):
        return [thread for thread in self.threads if thread.alive]

    # -- wakeups ------------------------------------------------------------
    def wake(self, thread):
        if thread.state in (BLOCKED, WAITING, TIMED_WAITING):
            thread.state = RUNNABLE
            thread.wake_at = None

    def _wake_sleepers(self):
        for thread in self.threads:
            if thread.state == TIMED_WAITING and thread.wake_at is not None:
                if thread.wake_at <= self.tick:
                    thread.state = RUNNABLE
                    thread.wake_at = None

    def _advance_to_next_wake(self):
        wakes = [
            thread.wake_at
            for thread in self.threads
            if thread.state == TIMED_WAITING and thread.wake_at is not None
        ]
        if not wakes:
            return False
        self.tick = max(self.tick, min(wakes))
        self._wake_sleepers()
        return True

    # -- scheduling ------------------------------------------------------------
    def _pick(self):
        best = None
        for thread in self.threads:
            if not thread.schedulable:
                continue
            if best is None:
                best = thread
                continue
            if thread.priority > best.priority or (
                thread.priority == best.priority
                and thread.last_scheduled < best.last_scheduled
            ):
                best = thread
        return best

    def run_for(self, steps):
        """Run up to ``steps`` instructions and return; never raises on
        budget exhaustion (for incremental driving)."""
        try:
            self.run(max_steps=steps)
        except OutOfStepsError:
            pass

    def run(self, max_steps=10_000_000, until=None):
        """Run until no live threads remain, ``until()`` is true, or the
        step budget is exhausted (:class:`OutOfStepsError`)."""
        interpreter = self.vm.interpreter
        steps_left = max_steps
        while True:
            if until is not None and until():
                return
            self._wake_sleepers()
            thread = self._pick()
            if thread is None:
                if self._advance_to_next_wake():
                    continue
                live = self.live_threads()
                if not live:
                    return
                if any(t.suspended and t.state == RUNNABLE for t in live):
                    # Suspended threads may be resumed by the embedder.
                    return
                raise DeadlockError(
                    "all live threads are blocked: "
                    + ", ".join(repr(t) for t in live)
                )
            if steps_left <= 0:
                raise OutOfStepsError(f"exceeded {max_steps} steps")
            if thread is not self._current:
                self.context_switches += 1
            self._current = thread
            thread.last_scheduled = self.tick
            executed = interpreter.step(thread, min(self.quantum, steps_left))
            self.tick += executed
            steps_left -= max(executed, 1)

    def run_thread(self, thread, max_steps=10_000_000):
        """Run the scheduler until ``thread`` terminates; returns its result
        or raises its uncaught guest exception."""
        from .errors import JThrowable

        self.run(max_steps=max_steps, until=lambda: thread.state == TERMINATED)
        if thread.state != TERMINATED:
            raise OutOfStepsError(
                f"{thread!r} did not finish within {max_steps} steps"
            )
        if thread.uncaught is not None:
            raise JThrowable(thread.uncaught)
        return thread.result


def build_arguments(method, args):
    """Pad an argument list to a method's local slots (for spawn helpers)."""
    parsed, _ = parse_method_descriptor(method.desc)
    padded = list(args)
    padded += [default_value(desc) for desc in parsed[len(args):]]
    return padded
