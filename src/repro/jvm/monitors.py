"""Monitor (lock) implementations.

Two strategies back ``MONITORENTER``/``MONITOREXIT`` and ``Object.wait``/
``notify``, selected by the VM profile (Table 1's "acquire/release lock"
row):

* :class:`ThinLockManager` — a lock word embedded in the object header;
  the uncontended path touches only the object (MS-VM-like: cheap locks).
* :class:`HeavyMonitorManager` — every operation goes through a monitor
  registry: lookup, lazy monitor allocation and owner/queue bookkeeping
  (Sun-VM-like: expensive locks).

Both are *correct*; they differ only in constant factors, which is exactly
what the paper's Table 1 exposes.
"""

from __future__ import annotations


class _Monitor:
    __slots__ = ("owner", "count", "entry_queue", "wait_set")

    def __init__(self):
        self.owner = None
        self.count = 0
        self.entry_queue = []
        self.wait_set = []


class MonitorManagerBase:
    """Shared wait/notify logic; subclasses provide lock-word storage."""

    def _monitor(self, obj, create=True):
        raise NotImplementedError

    # -- enter / exit ------------------------------------------------------
    def try_enter(self, obj, thread):
        """Acquire or recursively re-acquire; False means caller must block
        (the thread has been queued)."""
        monitor = self._monitor(obj)
        if monitor.owner is None:
            monitor.owner = thread
            monitor.count = 1
            return True
        if monitor.owner is thread:
            monitor.count += 1
            return True
        if thread not in monitor.entry_queue:
            monitor.entry_queue.append(thread)
        return False

    def exit(self, obj, thread):
        """Release once.  Returns threads to wake (entry-queue barging)."""
        monitor = self._monitor(obj, create=False)
        if monitor is None or monitor.owner is not thread:
            return None  # caller turns this into IllegalMonitorStateException
        monitor.count -= 1
        if monitor.count > 0:
            return []
        monitor.owner = None
        woken = monitor.entry_queue[:]
        monitor.entry_queue.clear()
        return woken

    def owner(self, obj):
        monitor = self._monitor(obj, create=False)
        return monitor.owner if monitor is not None else None

    # -- wait / notify -----------------------------------------------------------
    def release_for_wait(self, obj, thread):
        """Fully release for Object.wait; returns (saved_count, woken) or
        None if the thread is not the owner."""
        monitor = self._monitor(obj, create=False)
        if monitor is None or monitor.owner is not thread:
            return None
        saved = monitor.count
        monitor.owner = None
        monitor.count = 0
        monitor.wait_set.append(thread)
        woken = monitor.entry_queue[:]
        monitor.entry_queue.clear()
        return saved, woken

    def reacquire_after_wait(self, obj, thread, saved_count):
        """Try to re-acquire with the saved recursion count."""
        monitor = self._monitor(obj)
        if monitor.owner is None:
            monitor.owner = thread
            monitor.count = saved_count
            return True
        if thread not in monitor.entry_queue:
            monitor.entry_queue.append(thread)
        return False

    def notify(self, obj, thread, notify_all=False):
        """Move waiter(s) to the entry queue; returns (ok, woken_threads)."""
        monitor = self._monitor(obj, create=False)
        if monitor is None or monitor.owner is not thread:
            return False, []
        woken = []
        while monitor.wait_set:
            waiter = monitor.wait_set.pop(0)
            woken.append(waiter)
            if not notify_all:
                break
        return True, woken

    def in_wait_set(self, obj, thread):
        monitor = self._monitor(obj, create=False)
        return monitor is not None and thread in monitor.wait_set

    def discard(self, thread):
        """Remove a dying thread from every queue (Thread.stop support)."""
        for monitor in self._all_monitors():
            if thread in monitor.entry_queue:
                monitor.entry_queue.remove(thread)
            if thread in monitor.wait_set:
                monitor.wait_set.remove(thread)
            if monitor.owner is thread:
                monitor.owner = None
                monitor.count = 0

    def _all_monitors(self):
        raise NotImplementedError


class ThinLockManager(MonitorManagerBase):
    """Lock word stored directly in the object header (``obj.lockword``)."""

    def __init__(self):
        self._inflated = []

    def _monitor(self, obj, create=True):
        monitor = obj.lockword
        if monitor is None and create:
            monitor = obj.lockword = _Monitor()
            self._inflated.append(monitor)
        return monitor

    def _all_monitors(self):
        return self._inflated


class HeavyMonitorManager(MonitorManagerBase):
    """Monitors held in a registry keyed by object identity.

    The extra registry lookup plus validation pass on every operation makes
    each acquire/release measurably more expensive — the Sun-VM shape in
    Table 1.
    """

    def __init__(self):
        self._registry = {}

    def _monitor(self, obj, create=True):
        key = id(obj)
        entry = self._registry.get(key)
        if entry is not None:
            monitor, holder = entry
            if holder is not obj:  # identity collision after GC reuse
                if not create:
                    return None
                monitor = _Monitor()
                self._registry[key] = (monitor, obj)
            self._validate(monitor)
            return monitor
        if not create:
            return None
        monitor = _Monitor()
        self._registry[key] = (monitor, obj)
        self._validate(monitor)
        return monitor

    @staticmethod
    def _validate(monitor):
        # Owner/queue consistency walk: this is the deliberate bookkeeping
        # overhead of the heavyweight design.
        owner = monitor.owner
        for queued in monitor.entry_queue:
            if queued is owner:
                raise AssertionError("owner queued on own monitor")
        for waiter in monitor.wait_set:
            if waiter is owner:
                raise AssertionError("owner in own wait set")

    def _all_monitors(self):
        return [entry[0] for entry in self._registry.values()]
