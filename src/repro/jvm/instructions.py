"""MiniJVM instruction set.

Instructions are tuples ``(opcode, *operands)`` where ``opcode`` is a string
constant from this module.  Program counters are instruction indices.

The set is a compact subset of JVM bytecode sufficient for the J-Kernel
reproduction: int/double arithmetic, reference and array operations, field
access, four invocation kinds, exceptions and monitors.  There is by design
no instruction that converts an int to a reference — reference
unforgeability is structural.
"""

from __future__ import annotations

# --- constants ---------------------------------------------------------
NOP = "nop"
ICONST = "iconst"  # (value)
DCONST = "dconst"  # (value)
LDC_STR = "ldc_str"  # (python str) -> interned String reference
ACONST_NULL = "aconst_null"

# --- locals ------------------------------------------------------------
ILOAD = "iload"  # (slot)
ISTORE = "istore"  # (slot)
DLOAD = "dload"
DSTORE = "dstore"
ALOAD = "aload"
ASTORE = "astore"
IINC = "iinc"  # (slot, delta)

# --- operand stack ------------------------------------------------------
POP = "pop"
DUP = "dup"
DUP_X1 = "dup_x1"
SWAP = "swap"

# --- int arithmetic ------------------------------------------------------
IADD = "iadd"
ISUB = "isub"
IMUL = "imul"
IDIV = "idiv"
IREM = "irem"
INEG = "ineg"
ISHL = "ishl"
ISHR = "ishr"
IAND = "iand"
IOR = "ior"
IXOR = "ixor"

# --- double arithmetic ---------------------------------------------------
DADD = "dadd"
DSUB = "dsub"
DMUL = "dmul"
DDIV = "ddiv"
DNEG = "dneg"
DCMP = "dcmp"  # pushes -1/0/1

# --- conversions ----------------------------------------------------------
I2D = "i2d"
D2I = "d2i"

# --- control flow ----------------------------------------------------------
GOTO = "goto"  # (target)
IFEQ = "ifeq"
IFNE = "ifne"
IFLT = "iflt"
IFLE = "ifle"
IFGT = "ifgt"
IFGE = "ifge"
IF_ICMPEQ = "if_icmpeq"
IF_ICMPNE = "if_icmpne"
IF_ICMPLT = "if_icmplt"
IF_ICMPLE = "if_icmple"
IF_ICMPGT = "if_icmpgt"
IF_ICMPGE = "if_icmpge"
IF_ACMPEQ = "if_acmpeq"
IF_ACMPNE = "if_acmpne"
IFNULL = "ifnull"
IFNONNULL = "ifnonnull"

# --- objects ---------------------------------------------------------------
NEW = "new"  # (class_name)
GETFIELD = "getfield"  # (class_name, field_name)
PUTFIELD = "putfield"
GETSTATIC = "getstatic"
PUTSTATIC = "putstatic"
INVOKEVIRTUAL = "invokevirtual"  # (class_name, method_name, desc)
INVOKEINTERFACE = "invokeinterface"
INVOKESTATIC = "invokestatic"
INVOKESPECIAL = "invokespecial"  # constructors, private and super calls
CHECKCAST = "checkcast"  # (class_name or array descriptor)
INSTANCEOF = "instanceof"

# --- arrays -----------------------------------------------------------------
NEWARRAY = "newarray"  # (element_descriptor); length on stack
ARRAYLENGTH = "arraylength"
BALOAD = "baload"
BASTORE = "bastore"
IALOAD = "iaload"
IASTORE = "iastore"
DALOAD = "daload"
DASTORE = "dastore"
AALOAD = "aaload"
AASTORE = "aastore"

# --- returns / exceptions / monitors ------------------------------------------
RETURN = "return"
IRETURN = "ireturn"
DRETURN = "dreturn"
ARETURN = "areturn"
ATHROW = "athrow"
MONITORENTER = "monitorenter"
MONITOREXIT = "monitorexit"

# Operand shapes: opcode -> tuple of operand kinds.
# Kinds: "int", "float", "str", "target" (branch pc), "index" (local slot).
OPERAND_SHAPES = {
    NOP: (),
    ICONST: ("int",),
    DCONST: ("float",),
    LDC_STR: ("str",),
    ACONST_NULL: (),
    ILOAD: ("index",),
    ISTORE: ("index",),
    DLOAD: ("index",),
    DSTORE: ("index",),
    ALOAD: ("index",),
    ASTORE: ("index",),
    IINC: ("index", "int"),
    POP: (),
    DUP: (),
    DUP_X1: (),
    SWAP: (),
    IADD: (),
    ISUB: (),
    IMUL: (),
    IDIV: (),
    IREM: (),
    INEG: (),
    ISHL: (),
    ISHR: (),
    IAND: (),
    IOR: (),
    IXOR: (),
    DADD: (),
    DSUB: (),
    DMUL: (),
    DDIV: (),
    DNEG: (),
    DCMP: (),
    I2D: (),
    D2I: (),
    GOTO: ("target",),
    IFEQ: ("target",),
    IFNE: ("target",),
    IFLT: ("target",),
    IFLE: ("target",),
    IFGT: ("target",),
    IFGE: ("target",),
    IF_ICMPEQ: ("target",),
    IF_ICMPNE: ("target",),
    IF_ICMPLT: ("target",),
    IF_ICMPLE: ("target",),
    IF_ICMPGT: ("target",),
    IF_ICMPGE: ("target",),
    IF_ACMPEQ: ("target",),
    IF_ACMPNE: ("target",),
    IFNULL: ("target",),
    IFNONNULL: ("target",),
    NEW: ("str",),
    GETFIELD: ("str", "str"),
    PUTFIELD: ("str", "str"),
    GETSTATIC: ("str", "str"),
    PUTSTATIC: ("str", "str"),
    INVOKEVIRTUAL: ("str", "str", "str"),
    INVOKEINTERFACE: ("str", "str", "str"),
    INVOKESTATIC: ("str", "str", "str"),
    INVOKESPECIAL: ("str", "str", "str"),
    CHECKCAST: ("str",),
    INSTANCEOF: ("str",),
    NEWARRAY: ("str",),
    ARRAYLENGTH: (),
    BALOAD: (),
    BASTORE: (),
    IALOAD: (),
    IASTORE: (),
    DALOAD: (),
    DASTORE: (),
    AALOAD: (),
    AASTORE: (),
    RETURN: (),
    IRETURN: (),
    DRETURN: (),
    ARETURN: (),
    ATHROW: (),
    MONITORENTER: (),
    MONITOREXIT: (),
}

BRANCH_OPCODES = frozenset(
    op for op, shape in OPERAND_SHAPES.items() if shape == ("target",)
)

# Opcodes after which control never falls through to the next instruction.
TERMINAL_OPCODES = frozenset({GOTO, RETURN, IRETURN, DRETURN, ARETURN, ATHROW})

CONDITIONAL_BRANCHES = BRANCH_OPCODES - {GOTO}
