"""Native method bridge and the core library natives.

Native methods are host (Python) functions with signature
``fn(vm, thread, args) -> value``; ``args`` includes the receiver first for
instance methods.  A native may:

* return a guest value (or ``None`` for void / null),
* raise a guest exception via :func:`guest_throw`,
* return :data:`~repro.jvm.interp.NATIVE_BLOCKED` to block; the interpreter
  leaves the pc on the invoke instruction and retries the native when the
  thread is runnable again (used by ``wait``/``sleep``/``join``).

This mirrors how a real JVM's core library bottoms out in native code.
"""

from __future__ import annotations

import time

from .interp import NATIVE_BLOCKED, GuestUnwind
from .values import JArray, JObject

ILLEGAL_MONITOR = "java/lang/IllegalMonitorStateException"
ILLEGAL_STATE = "java/lang/IllegalStateException"
INDEX_OOB = "java/lang/IndexOutOfBoundsException"
NULL_POINTER = "java/lang/NullPointerException"
ARRAY_STORE = "java/lang/ArrayStoreException"


def guest_throw(vm, thread, class_name, message=None):
    """Raise a guest exception from native code."""
    raise GuestUnwind(
        vm.make_throwable(class_name, message, owner=thread.domain_tag)
    )


class NativeRegistry:
    """Maps (class name, method name, descriptor) to host functions."""

    def __init__(self):
        self._by_class = {}

    def register(self, class_name, method_name, desc, fn):
        self._by_class.setdefault(class_name, {})[(method_name, desc)] = fn

    def register_many(self, class_name, table):
        for (method_name, desc), fn in table.items():
            self.register(class_name, method_name, desc, fn)

    def lookup(self, rtclass, method):
        table = self._by_class.get(rtclass.name)
        if table is None:
            return None
        return table.get(method.key)

    def bind_class(self, rtclass):
        """Attach known bindings at link time (missing ones fail lazily)."""
        table = self._by_class.get(rtclass.name)
        if not table:
            return
        for key, method in rtclass.declared.items():
            if method.is_native and key in table:
                rtclass.native_bindings[key] = table[key]


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------

def as_text(jobject):
    """Host string of a guest String (empty if constructed uninitialized)."""
    if jobject is None:
        return None
    value = jobject.native
    return value if isinstance(value, str) else ""


def _require(vm, thread, value, what):
    if value is None:
        guest_throw(vm, thread, NULL_POINTER, what)
    return value


# --------------------------------------------------------------------------
# java/lang/Object
# --------------------------------------------------------------------------

def _object_equals(vm, thread, args):
    return 1 if args[0] is args[1] else 0


def _object_hash(vm, thread, args):
    return id(args[0]) & 0x7FFFFFFF


def _object_to_string(vm, thread, args):
    receiver = args[0]
    text = f"{receiver.jclass.name}@{id(receiver) & 0xFFFFFF:x}"
    return vm.new_string(text, owner=thread.domain_tag)


def _object_wait(vm, thread, args):
    receiver = args[0]
    state = thread.native_state.get("wait")
    if state is None:
        released = vm.monitors.release_for_wait(receiver, thread)
        if released is None:
            guest_throw(vm, thread, ILLEGAL_MONITOR, "wait while not owner")
        saved_count, woken = released
        for waiter in woken:
            vm.scheduler.wake(waiter)
        thread.native_state["wait"] = (receiver, saved_count)
        from .threads import WAITING

        thread.state = WAITING
        return NATIVE_BLOCKED
    target, saved_count = state
    if vm.monitors.reacquire_after_wait(target, thread, saved_count):
        del thread.native_state["wait"]
        return None
    from .threads import BLOCKED

    thread.state = BLOCKED
    thread.blocked_on = target
    return NATIVE_BLOCKED


def _object_notify(vm, thread, args):
    ok, woken = vm.monitors.notify(args[0], thread, notify_all=False)
    if not ok:
        guest_throw(vm, thread, ILLEGAL_MONITOR, "notify while not owner")
    for waiter in woken:
        vm.scheduler.wake(waiter)
    return None


def _object_notify_all(vm, thread, args):
    ok, woken = vm.monitors.notify(args[0], thread, notify_all=True)
    if not ok:
        guest_throw(vm, thread, ILLEGAL_MONITOR, "notifyAll while not owner")
    for waiter in woken:
        vm.scheduler.wake(waiter)
    return None


# --------------------------------------------------------------------------
# java/lang/String
# --------------------------------------------------------------------------

def _string_length(vm, thread, args):
    return len(as_text(args[0]))


def _string_char_at(vm, thread, args):
    text = as_text(args[0])
    index = args[1]
    if not 0 <= index < len(text):
        guest_throw(vm, thread, INDEX_OOB, f"charAt({index})")
    return ord(text[index])


def _string_concat(vm, thread, args):
    other = _require(vm, thread, args[1], "concat(null)")
    return vm.new_string(as_text(args[0]) + as_text(other),
                         owner=thread.domain_tag)


def _string_substring(vm, thread, args):
    text = as_text(args[0])
    start, end = args[1], args[2]
    if not (0 <= start <= end <= len(text)):
        guest_throw(vm, thread, INDEX_OOB, f"substring({start},{end})")
    return vm.new_string(text[start:end], owner=thread.domain_tag)


def _string_equals(vm, thread, args):
    other = args[1]
    if other is None or other.jclass is not vm.string_class:
        return 0
    return 1 if as_text(args[0]) == as_text(other) else 0


def _string_starts_with(vm, thread, args):
    other = _require(vm, thread, args[1], "startsWith(null)")
    return 1 if as_text(args[0]).startswith(as_text(other)) else 0


def _string_index_of(vm, thread, args):
    return as_text(args[0]).find(chr(args[1] & 0xFFFF))


def _string_hash(vm, thread, args):
    # Java's 31-based rolling hash, wrapped to 32 bits.
    value = 0
    for ch in as_text(args[0]):
        value = (value * 31 + ord(ch)) & 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def _string_intern(vm, thread, args):
    return vm.intern(as_text(args[0]))


def _string_get_bytes(vm, thread, args):
    data = as_text(args[0]).encode("utf-8")
    array_class = vm.array_class_for_descriptor("[B", vm.boot_loader)
    array = vm.heap.new_array(array_class, len(data), owner=thread.domain_tag)
    for index, byte in enumerate(data):
        array.elems[index] = byte - 256 if byte >= 128 else byte
    return array


def _string_from_bytes(vm, thread, args):
    array = _require(vm, thread, args[0], "fromBytes(null)")
    data = bytes((value & 0xFF) for value in array.elems)
    return vm.new_string(data.decode("utf-8", "replace"),
                         owner=thread.domain_tag)


def _string_value_of_int(vm, thread, args):
    return vm.new_string(str(args[0]), owner=thread.domain_tag)


# --------------------------------------------------------------------------
# java/lang/StringBuilder
# --------------------------------------------------------------------------

def _sb_init(vm, thread, args):
    args[0].native = []
    return None


def _sb_parts(vm, thread, receiver):
    if not isinstance(receiver.native, list):
        receiver.native = []
    return receiver.native


def _sb_append(vm, thread, args):
    other = _require(vm, thread, args[1], "append(null)")
    _sb_parts(vm, thread, args[0]).append(as_text(other))
    return args[0]


def _sb_append_int(vm, thread, args):
    _sb_parts(vm, thread, args[0]).append(str(args[1]))
    return args[0]


def _sb_to_string(vm, thread, args):
    return vm.new_string("".join(_sb_parts(vm, thread, args[0])),
                         owner=thread.domain_tag)


# --------------------------------------------------------------------------
# java/lang/System
# --------------------------------------------------------------------------

def _system_println(vm, thread, args):
    vm.emit_output(thread.domain_tag, as_text(args[0]) or "")
    return None


def _system_print_int(vm, thread, args):
    vm.emit_output(thread.domain_tag, str(args[0]))
    return None


def _system_nano_time(vm, thread, args):
    return float(time.perf_counter_ns())


def _system_identity_hash(vm, thread, args):
    return 0 if args[0] is None else id(args[0]) & 0x7FFFFFFF


def _system_arraycopy(vm, thread, args):
    src, src_pos, dest, dest_pos, length = args
    _require(vm, thread, src, "arraycopy src")
    _require(vm, thread, dest, "arraycopy dest")
    if not isinstance(src, JArray) or not isinstance(dest, JArray):
        guest_throw(vm, thread, ARRAY_STORE, "arraycopy of non-array")
    if length < 0 or src_pos < 0 or dest_pos < 0:
        guest_throw(vm, thread, INDEX_OOB, "arraycopy negative index")
    if src_pos + length > len(src.elems) or dest_pos + length > len(dest.elems):
        guest_throw(vm, thread, INDEX_OOB, "arraycopy out of range")
    src_elem = src.jclass.array_element
    dest_elem = dest.jclass.array_element
    if src_elem != dest_elem:
        compatible = (
            src.jclass.element_class is not None
            and dest.jclass.element_class is not None
            and src.jclass.element_class.is_assignable_to(
                dest.jclass.element_class
            )
        )
        if not compatible:
            guest_throw(vm, thread, ARRAY_STORE, "incompatible array types")
    dest.elems[dest_pos:dest_pos + length] = src.elems[src_pos:src_pos + length]
    return None


# --------------------------------------------------------------------------
# java/lang/Thread
# --------------------------------------------------------------------------

def _thread_context(receiver):
    context = receiver.native
    from .threads import ThreadContext

    return context if isinstance(context, ThreadContext) else None


def _thread_start(vm, thread, args):
    receiver = args[0]
    if _thread_context(receiver) is not None:
        guest_throw(vm, thread, ILLEGAL_STATE, "thread already started")
    index = receiver.jclass.vindex[("run", "()V")]
    owner, method = receiver.jclass.vtable[index]
    context = vm.scheduler.spawn(
        owner,
        method,
        [receiver],
        name=f"guest-{receiver.jclass.name}",
        domain_tag=thread.domain_tag,
        guest_obj=receiver,
    )
    receiver.native = context
    return None


def _thread_current(vm, thread, args):
    context = vm.scheduler.current_thread()
    if context.guest_obj is None:
        thread_class = vm.boot_loader.load("java/lang/Thread")
        guest = vm.heap.new_object(thread_class, owner=context.domain_tag)
        guest.native = context
        context.guest_obj = guest
    return context.guest_obj


def _thread_yield(vm, thread, args):
    thread.yielded = True
    thread.last_scheduled = vm.scheduler.tick + 1
    return None


def _thread_sleep(vm, thread, args):
    until = thread.native_state.get("sleep")
    if until is None:
        until = vm.scheduler.tick + max(args[0], 0)
        thread.native_state["sleep"] = until
        from .threads import TIMED_WAITING

        thread.state = TIMED_WAITING
        thread.wake_at = until
        return NATIVE_BLOCKED
    if vm.scheduler.tick >= until:
        del thread.native_state["sleep"]
        return None
    from .threads import TIMED_WAITING

    thread.state = TIMED_WAITING
    thread.wake_at = until
    return NATIVE_BLOCKED


def _thread_join(vm, thread, args):
    target = _thread_context(args[0])
    from .threads import TERMINATED, TIMED_WAITING

    if target is None or target.state == TERMINATED:
        thread.native_state.pop("join", None)
        return None
    thread.native_state["join"] = True
    thread.state = TIMED_WAITING
    thread.wake_at = vm.scheduler.tick + 32
    return NATIVE_BLOCKED


def _deliver_stop(vm, thread, target, throwable):
    from .threads import TERMINATED

    if target is None or target.state == TERMINATED:
        return
    target.pending_stop = throwable
    target.native_state.clear()
    vm.monitors.discard(target)
    vm.scheduler.wake(target)


def _thread_stop(vm, thread, args):
    target = _thread_context(args[0])
    throwable = vm.make_throwable("java/lang/ThreadDeath", None,
                                  owner=thread.domain_tag)
    _deliver_stop(vm, thread, target, throwable)
    return None


def _thread_stop_with(vm, thread, args):
    target = _thread_context(args[0])
    throwable = _require(vm, thread, args[1], "stop(null)")
    _deliver_stop(vm, thread, target, throwable)
    return None


def _thread_suspend(vm, thread, args):
    target = _thread_context(args[0])
    if target is not None:
        target.suspended = True
    return None


def _thread_resume(vm, thread, args):
    target = _thread_context(args[0])
    if target is not None:
        target.suspended = False
    return None


def _thread_set_priority(vm, thread, args):
    target = _thread_context(args[0])
    from .threads import MAX_PRIORITY, MIN_PRIORITY

    priority = min(MAX_PRIORITY, max(MIN_PRIORITY, args[1]))
    if target is not None:
        target.priority = priority
    return None


def _thread_get_priority(vm, thread, args):
    target = _thread_context(args[0])
    from .threads import NORM_PRIORITY

    return target.priority if target is not None else NORM_PRIORITY


def _thread_is_alive(vm, thread, args):
    target = _thread_context(args[0])
    return 1 if target is not None and target.alive else 0


# --------------------------------------------------------------------------
# registration
# --------------------------------------------------------------------------

def install_core_natives(registry):
    registry.register_many("java/lang/Object", {
        ("equals", "(Ljava/lang/Object;)Z"): _object_equals,
        ("hashCode", "()I"): _object_hash,
        ("toString", "()Ljava/lang/String;"): _object_to_string,
        ("wait", "()V"): _object_wait,
        ("notify", "()V"): _object_notify,
        ("notifyAll", "()V"): _object_notify_all,
    })
    registry.register_many("java/lang/String", {
        ("length", "()I"): _string_length,
        ("charAt", "(I)I"): _string_char_at,
        ("concat", "(Ljava/lang/String;)Ljava/lang/String;"): _string_concat,
        ("substring", "(II)Ljava/lang/String;"): _string_substring,
        ("equalsString", "(Ljava/lang/String;)Z"): _string_equals,
        ("startsWith", "(Ljava/lang/String;)Z"): _string_starts_with,
        ("indexOf", "(I)I"): _string_index_of,
        ("hashCode", "()I"): _string_hash,
        ("intern", "()Ljava/lang/String;"): _string_intern,
        ("getBytes", "()[B"): _string_get_bytes,
        ("fromBytes", "([B)Ljava/lang/String;"): _string_from_bytes,
        ("valueOfInt", "(I)Ljava/lang/String;"): _string_value_of_int,
    })
    registry.register_many("java/lang/StringBuilder", {
        ("<init>", "()V"): _sb_init,
        ("append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;"): _sb_append,
        ("appendInt", "(I)Ljava/lang/StringBuilder;"): _sb_append_int,
        ("toString", "()Ljava/lang/String;"): _sb_to_string,
    })
    registry.register_many("java/lang/System", {
        ("println", "(Ljava/lang/String;)V"): _system_println,
        ("printInt", "(I)V"): _system_print_int,
        ("nanoTime", "()D"): _system_nano_time,
        ("identityHashCode", "(Ljava/lang/Object;)I"): _system_identity_hash,
        ("arraycopy",
         "(Ljava/lang/Object;ILjava/lang/Object;II)V"): _system_arraycopy,
    })
    registry.register_many("java/lang/Thread", {
        ("start", "()V"): _thread_start,
        ("stop", "()V"): _thread_stop,
        ("stop", "(Ljava/lang/Throwable;)V"): _thread_stop_with,
        ("suspend", "()V"): _thread_suspend,
        ("resume", "()V"): _thread_resume,
        ("setPriority", "(I)V"): _thread_set_priority,
        ("getPriority", "()I"): _thread_get_priority,
        ("isAlive", "()Z"): _thread_is_alive,
        ("join", "()V"): _thread_join,
        ("currentThread", "()Ljava/lang/Thread;"): _thread_current,
        ("sleep", "(I)V"): _thread_sleep,
        ("yield", "()V"): _thread_yield,
    })
