"""Error hierarchy for the MiniJVM substrate.

Two kinds of failure exist in the VM:

* *Host errors* (subclasses of :class:`VMError`) — raised when the VM itself
  is misused or detects an inconsistency: malformed classfiles, verification
  failures, linkage problems.  These are Python exceptions aimed at the
  embedder and never visible to guest bytecode.

* *Guest exceptions* — exceptions thrown *inside* the VM by executing
  bytecode (``ATHROW``) or by the runtime (null dereference, bad cast).
  They are represented by :class:`JThrowable`, which wraps a guest heap
  object and unwinds guest frames; if no guest handler catches it, the
  embedder sees the ``JThrowable``.
"""

from __future__ import annotations


class VMError(Exception):
    """Base class for host-visible VM errors."""


class ClassFormatError(VMError):
    """A classfile is structurally malformed."""


class VerifyError(VMError):
    """Bytecode failed verification.

    Carries the class, method and program counter for diagnostics.
    """

    def __init__(self, message, class_name=None, method=None, pc=None):
        location = ""
        if class_name is not None:
            location = f" in {class_name}"
            if method is not None:
                location += f".{method}"
            if pc is not None:
                location += f" at pc={pc}"
        super().__init__(message + location)
        self.class_name = class_name
        self.method = method
        self.pc = pc


class LinkageError(VMError):
    """Symbolic resolution failed (missing class/field/method, bad access,
    or a cross-loader signature mismatch)."""


class ClassNotFoundError(LinkageError):
    """No class of the requested name is visible in the loader namespace."""


class IllegalAccessError(LinkageError):
    """A member was referenced in violation of its access modifiers."""


class IncompatibleClassChangeError(LinkageError):
    """A resolved member does not have the expected shape (e.g. static vs
    instance mismatch, or a field changed type)."""


class JThrowable(Exception):
    """A guest exception in flight.

    ``jobject`` is the guest heap object (an instance of a class assignable
    to ``java/lang/Throwable``).  The interpreter raises and catches this to
    unwind guest frames.
    """

    def __init__(self, jobject):
        self.jobject = jobject
        super().__init__(self._describe())

    def _describe(self):
        jclass = getattr(self.jobject, "jclass", None)
        name = jclass.name if jclass is not None else "<unknown>"
        detail = getattr(self.jobject, "native", None)
        if detail:
            return f"{name}: {detail}"
        return name


class DeadlockError(VMError):
    """The scheduler found every live thread blocked."""


class OutOfStepsError(VMError):
    """A bounded run exhausted its instruction budget before completing."""
