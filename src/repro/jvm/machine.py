"""The VM facade: one object owning heap, scheduler, loaders and profile.

Typical embedding::

    vm = VM(profile="sunvm")
    loader = vm.new_loader("domain-A", resolver=MapResolver({...}))
    rtclass = loader.load("demo/Main")
    result = vm.call_static(rtclass, "main", "()I")
"""

from __future__ import annotations

from .corelib import core_classfiles
from .errors import JThrowable, VMError
from .heap import Heap
from .interp import Interpreter
from .loader import ClassLoader, MapResolver
from .natives import NativeRegistry, install_core_natives
from .profiles import get_profile
from .runtime import make_array_class
from .threads import Scheduler
from .values import (
    OBJECT,
    STRING,
    THROWABLE,
    JObject,
    parse_method_descriptor,
)

_PRIMITIVE_ELEMENTS = ("I", "B", "D", "Z")


class VM:
    """One MiniJVM instance."""

    def __init__(self, profile="sunvm", verify=True, intern_weak=False,
                 quantum=None, threaded_code=True):
        self.profile = get_profile(profile)
        self.threaded_code = threaded_code
        self.heap = Heap()
        self.natives = NativeRegistry()
        install_core_natives(self.natives)
        self.monitors = self.profile.make_monitor_manager()
        self.dispatcher = self.profile.make_dispatcher()
        self.scheduler = Scheduler(
            self,
            quantum=quantum or self.profile.quantum,
            thread_lookup=self.profile.thread_lookup,
        )
        self.interpreter = Interpreter(self)
        self.interpreter.use_threaded = threaded_code
        self.intern_weak = intern_weak
        self.interned = {}
        self.pinned = set()  # host-held GC roots
        self.loaders = []
        self.output = []  # (domain_tag, text) records from System.println
        self.on_output = None
        self._array_classes = {}
        self._arg_counts = {}
        self._lazy_classes = {}
        boot_resolver = MapResolver(
            {cf.name: cf for cf in core_classfiles()}
        )
        self.boot_loader = ClassLoader(
            self, "<boot>", resolver=boot_resolver, verify=verify
        )
        self.loaders.append(self.boot_loader)

    # -- well-known classes (lazy: bootstrap order safe) ---------------------
    def _well_known(self, name):
        rtclass = self._lazy_classes.get(name)
        if rtclass is None:
            rtclass = self._lazy_classes[name] = self.boot_loader.load(name)
        return rtclass

    @property
    def object_class(self):
        return self._well_known(OBJECT)

    @property
    def string_class(self):
        return self._well_known(STRING)

    @property
    def throwable_class(self):
        return self._well_known(THROWABLE)

    # -- loaders -----------------------------------------------------------
    def new_loader(self, name, resolver=None, parent="boot", verify=True):
        """Create a loader whose parent defaults to the boot loader."""
        if parent == "boot":
            parent = self.boot_loader
        loader = ClassLoader(self, name, resolver=resolver, parent=parent,
                             verify=verify)
        self.loaders.append(loader)
        return loader

    # -- array classes --------------------------------------------------------
    def array_class_for_descriptor(self, desc, loader):
        """Runtime class for an array descriptor like ``[I`` or ``[Lx/Y;``."""
        element_desc = desc[1:]
        if element_desc in _PRIMITIVE_ELEMENTS:
            key = "[" + ("I" if element_desc == "Z" else element_desc)
            cached = self._array_classes.get(key)
            if cached is None:
                cached = make_array_class(
                    element_desc, None, self.object_class, self.boot_loader
                )
                self._array_classes[key] = cached
            return cached
        if element_desc.startswith("["):
            element_class = self.array_class_for_descriptor(element_desc, loader)
        elif element_desc.startswith("L") and element_desc.endswith(";"):
            element_class = loader.load(element_desc[1:-1])
        else:
            raise VMError(f"bad array descriptor {desc!r}")
        cached = self._array_classes.get(element_class)
        if cached is None:
            cached = make_array_class(
                None, element_class, self.object_class, element_class.loader
            )
            self._array_classes[element_class] = cached
        return cached

    # -- strings ---------------------------------------------------------------
    def new_string(self, text, owner="<system>"):
        jstring = JObject(self.string_class, [], native=text)
        return self.heap.adopt(jstring, owner, 16 + len(text))

    def intern(self, text):
        jstring = self.interned.get(text)
        if jstring is None:
            jstring = self.new_string(text, owner="<interned>")
            self.interned[text] = jstring
        return jstring

    def text_of(self, jstring):
        """Host string for a guest String reference."""
        if jstring is None:
            return None
        value = jstring.native
        return value if isinstance(value, str) else ""

    # -- throwables -------------------------------------------------------------
    def make_throwable(self, class_name, message=None, owner="<system>",
                       loader=None):
        rtclass = (loader or self.boot_loader).load(class_name)
        jobject = self.heap.new_object(rtclass, owner=owner)
        jobject.native = message
        if message is not None:
            found = rtclass.find_field("message")
            if found is not None:
                _, slot, _ = found
                jobject.fields[slot] = self.new_string(message, owner=owner)
        return jobject

    # -- misc ---------------------------------------------------------------------
    def arg_count(self, desc):
        count = self._arg_counts.get(desc)
        if count is None:
            count = len(parse_method_descriptor(desc)[0])
            self._arg_counts[desc] = count
        return count

    def emit_output(self, domain_tag, text):
        self.output.append((domain_tag, text))
        if self.on_output is not None:
            self.on_output(domain_tag, text)

    # -- synchronous call helpers ----------------------------------------------------
    def _call_native_direct(self, owner, method, args, domain_tag):
        """Invoke a non-blocking native method without spawning a thread."""
        from .interp import NATIVE_BLOCKED, GuestUnwind
        from .threads import ThreadContext

        binding = owner.native_bindings.get(method.key) or self.natives.lookup(
            owner, method
        )
        if binding is None:
            raise VMError(
                f"unbound native {owner.name}.{method.name}{method.desc}"
            )
        context = ThreadContext(f"native:{method.name}", domain_tag)
        try:
            result = binding(self, context, list(args))
        except GuestUnwind as unwind:
            raise JThrowable(unwind.jobject) from None
        if result is NATIVE_BLOCKED:
            raise VMError(
                f"native {owner.name}.{method.name} blocks; call it from "
                "guest code instead"
            )
        return result

    def call_static(self, rtclass, name, desc, args=(), domain_tag="<system>",
                    max_steps=10_000_000):
        """Run a static method to completion on a fresh guest thread."""
        found = rtclass.find_declared(name, desc)
        if found is None or not found[1].is_static:
            raise VMError(f"no static method {rtclass.name}.{name}{desc}")
        owner, method = found
        if method.is_native:
            return self._call_native_direct(owner, method, args, domain_tag)
        thread = self.scheduler.spawn(
            owner, method, list(args),
            name=f"call:{name}", domain_tag=domain_tag,
        )
        return self.scheduler.run_thread(thread, max_steps=max_steps)

    def call_virtual(self, receiver, name, desc, args=(),
                     domain_tag="<system>", max_steps=10_000_000):
        """Run a virtual method to completion on a fresh guest thread."""
        index = receiver.jclass.vindex.get((name, desc))
        if index is None:
            raise VMError(
                f"no virtual method {receiver.jclass.name}.{name}{desc}"
            )
        owner, method = receiver.jclass.vtable[index]
        full_args = [receiver, *args]
        if method.is_native:
            return self._call_native_direct(owner, method, full_args,
                                            domain_tag)
        thread = self.scheduler.spawn(
            owner, method, full_args,
            name=f"call:{name}", domain_tag=domain_tag,
        )
        return self.scheduler.run_thread(thread, max_steps=max_steps)

    def construct(self, rtclass, desc="()V", args=(), domain_tag="<system>",
                  max_steps=1_000_000):
        """Allocate and run a constructor; returns the new object."""
        found = rtclass.find_declared("<init>", desc)
        if found is None:
            raise VMError(f"no constructor {rtclass.name}.<init>{desc}")
        owner, method = found
        jobject = self.heap.new_object(rtclass, owner=domain_tag)
        thread = self.scheduler.spawn(
            owner, method, [jobject, *args],
            name="construct", domain_tag=domain_tag,
        )
        self.scheduler.run_thread(thread, max_steps=max_steps)
        return jobject

    def collect(self):
        """Run a full mark-sweep collection; returns statistics."""
        from .gc import collect

        return collect(self)
