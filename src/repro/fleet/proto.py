"""The fleet control protocol: JSON envelopes over hardened ntrpc.

Fleet verbs carry JSON (placements, tokens, usage counters — data, not
live objects; live capability references cross machines only as signed
tokens, see ``repro.fleet.tokens``).  Every handler reply is an
envelope::

    {"ok": true,  "result": ...}
    {"ok": false, "error": "<kind>", "detail": "..."}

so a host-side verdict (stale token, revoked token, missing placement)
crosses the wire as *typed data* and re-raises as the same exception
class on the coordinator side, instead of decaying into a stringly
:class:`~repro.ipc.ntrpc.RpcHandlerError`.
"""

from __future__ import annotations

import json

from repro.core.errors import DomainUnavailableException, RemoteException

from .tokens import (
    TokenInvalidError,
    TokenRevokedError,
    TokenStaleError,
)


class PlacementGoneError(RemoteException):
    """The placement no longer exists on the host (evicted or never
    placed there — e.g. a frame that outlived a failover)."""


#: error-kind tag <-> exception class, both directions.
_ERROR_KINDS = {
    "stale": TokenStaleError,
    "revoked": TokenRevokedError,
    "invalid": TokenInvalidError,
    "gone": PlacementGoneError,
    "unavailable": DomainUnavailableException,
}
_KIND_BY_TYPE = {cls: kind for kind, cls in _ERROR_KINDS.items()}


def encode_request(request):
    return json.dumps(request).encode("utf-8")


def decode_request(payload):
    return json.loads(payload.decode("utf-8")) if payload else {}


def envelope(fn):
    """Wrap a dict-in/dict-out fleet verb as a bytes ntrpc handler."""
    def handler(payload):
        try:
            result = fn(decode_request(payload))
        except Exception as exc:
            kind = "app"
            for cls, tag in _KIND_BY_TYPE.items():
                if isinstance(exc, cls):
                    kind = tag
                    break
            reply = {"ok": False, "error": kind, "detail": repr(exc)}
        else:
            reply = {"ok": True, "result": result}
        return json.dumps(reply).encode("utf-8")
    handler.__name__ = getattr(fn, "__name__", "fleet_verb")
    return handler


def decode_reply(body):
    """The ``result`` of an envelope reply, re-raising typed errors."""
    reply = json.loads(body.decode("utf-8"))
    if reply.get("ok"):
        return reply.get("result")
    kind = reply.get("error", "app")
    detail = reply.get("detail", "fleet verb failed")
    cls = _ERROR_KINDS.get(kind)
    if cls is not None:
        raise cls(detail)
    raise RemoteException(f"fleet host failure: {detail}")
