"""One fleet host: an OS process serving servlet domains over ntrpc.

The Remote Playground deployment (PAPERS.md) runs untrusted servlets on
sacrificial machines; here each "machine" is a forked agent process —
the same crash-containment boundary the cross-process LRMI hosts use,
reached through the hardened ntrpc transport instead of the LRMI wire,
because the coordinator needs exactly the fleet verbs, not a full
marshalling proxy layer.

The agent owns:

* a **placement table** — ``place`` instantiates a domain from the
  host's setup registry (the callables survive the fork; nothing is
  pickled) and ``evict`` terminates it through the ordinary
  ``Domain.terminate`` path, revoking its capabilities;
* a **token replica** — a :class:`~repro.fleet.tokens.TokenAuthority`
  built from the shared fleet secret whose epoch advances on coordinator
  broadcast, so the host itself rejects stale-epoch tokens fail-closed
  (defence in depth: the coordinator already rejects them at the front
  end, but a partitioned-then-healed host must not honour pre-failover
  references either);
* a **revocation set** — token ids delivered by the coordinator's
  sweeper broadcast; revoked ids fail with
  :class:`~repro.fleet.tokens.TokenRevokedError` at dispatch;
* **per-tenant usage counters** — requests and servlet CPU
  microseconds, reported cumulatively through ``quota_report`` for the
  coordinator's reconcile/fold federation (the same protocol
  ``OutOfProcessRegistration`` uses over the LRMI control pipe).
"""

from __future__ import annotations

import os
import socket
import tempfile
import threading
import time
import uuid

from repro.core.errors import DomainUnavailableException
from repro.ipc.ntrpc import RpcServer

from .proto import PlacementGoneError, envelope
from .tokens import TokenAuthority, TokenRevokedError

#: Fault-injection hook (``repro.testing.chaos``); None in production.
_chaos = None


class _Placement:
    __slots__ = ("placement_id", "kind", "tenant", "capability")

    def __init__(self, placement_id, kind, tenant, capability):
        self.placement_id = placement_id
        self.kind = kind
        self.tenant = tenant
        self.capability = capability


class FleetHostAgent:
    """The in-process agent state and verb handlers (fork-side)."""

    def __init__(self, host_id, registry, secret, epoch=0):
        self.host_id = host_id
        self.registry = dict(registry)
        self.tokens = TokenAuthority(secret, epoch)
        self.placements = {}
        self.revoked = set()
        self.usage = {}          # tenant -> {"cpu_ticks", "requests"}
        self._lock = threading.Lock()

    # -- verbs -------------------------------------------------------------
    def place(self, request):
        placement_id = request["placement_id"]
        kind = request["kind"]
        setup = self.registry.get(kind)
        if setup is None:
            raise KeyError(f"host {self.host_id!r} has no kind {kind!r}")
        capability = setup()
        placement = _Placement(placement_id, kind,
                               request.get("tenant"), capability)
        with self._lock:
            self.placements[placement_id] = placement
        from repro.ipc.lrmi import exported_methods

        return {"host_id": self.host_id,
                "methods": list(exported_methods(capability))}

    def evict(self, request):
        with self._lock:
            placement = self.placements.pop(request["placement_id"], None)
        if placement is None:
            return {"evicted": False}
        domain = getattr(placement.capability, "creator", None)
        if domain is not None:
            domain.terminate()
        return {"evicted": True}

    def invoke(self, request):
        claims = self.tokens.verify(request["token"])
        if claims["tid"] in self.revoked:
            raise TokenRevokedError(
                f"token {claims['tid']} was revoked fleet-wide")
        method = request["method"]
        # Fail closed: a token authorizes exactly the methods it
        # carries, so an empty claim set authorizes nothing.
        if method not in claims["methods"]:
            raise PlacementGoneError(
                f"token does not carry method {method!r}")
        with self._lock:
            placement = self.placements.get(claims["placement"])
        if placement is None:
            raise PlacementGoneError(
                f"placement {claims['placement']!r} is not on host "
                f"{self.host_id!r}")
        from repro.ipc.lrmi import exported_methods

        # Dispatch stays inside the capability's remote interface even
        # for a token that claims more: getattr must never reach a
        # private attribute of the servlet.
        if method not in exported_methods(placement.capability):
            raise PlacementGoneError(
                f"placement {claims['placement']!r} does not export "
                f"method {method!r}")
        start = time.perf_counter()
        result = getattr(placement.capability, method)(
            *request.get("args", ()))
        self._charge(placement.tenant,
                     (time.perf_counter() - start) * 1e6)
        if _chaos is not None:
            # Chaos crash point: the host dies after executing the call
            # but before replying — mid-LRMI from the caller's view.
            _chaos.crash_point("fleet.host.invoke")
        return {"result": result}

    def _charge(self, tenant, cpu_us):
        if tenant is None:
            return
        with self._lock:
            usage = self.usage.setdefault(
                tenant, {"cpu_ticks": 0, "requests": 0})
            usage["cpu_ticks"] += int(cpu_us)
            usage["requests"] += 1

    def revoke(self, request):
        with self._lock:
            self.revoked.update(request.get("ids", ()))
        return {"revoked": len(self.revoked)}

    def epoch(self, request):
        """Coordinator epoch broadcast (failover re-key).

        Monotonic: the replica only ever advances, so re-broadcasts —
        the coordinator resends on every heartbeat until the host
        acknowledges — are idempotent and a delayed or duplicated
        frame can never regress the epoch and resurrect stale tokens.
        """
        with self._lock:
            self.tokens.epoch = max(self.tokens.epoch,
                                    int(request["epoch"]))
            return {"epoch": self.tokens.epoch}

    def quota_report(self, request):
        """Cumulative per-tenant usage (the reconcile protocol: each
        report *replaces* the previous live view on the coordinator)."""
        with self._lock:
            return {tenant: dict(usage)
                    for tenant, usage in self.usage.items()}

    def stats(self, request):
        with self._lock:
            return {
                "host_id": self.host_id,
                "pid": os.getpid(),
                "epoch": self.tokens.epoch,
                "placements": sorted(self.placements),
                "revoked": len(self.revoked),
            }

    def handlers(self):
        return {
            "place": envelope(self.place),
            "evict": envelope(self.evict),
            "invoke": envelope(self.invoke),
            "revoke": envelope(self.revoke),
            "epoch": envelope(self.epoch),
            "quota_report": envelope(self.quota_report),
            "stats": envelope(self.stats),
        }


def _host_agent_main(host_id, registry, secret, epoch, path, parent_pid):
    agent = FleetHostAgent(host_id, registry, secret, epoch)
    server = RpcServer(path, agent.handlers())

    def watchdog():
        while True:
            time.sleep(0.1)
            # Orphan check against the REAL parent pid captured at fork
            # (comparing against 1 would self-destruct under PID-1
            # parents, i.e. containers).
            if os.getppid() != parent_pid:
                os._exit(0)

    threading.Thread(target=watchdog, daemon=True,
                     name=f"fleet-{host_id}-watchdog").start()
    server.serve()


class FleetHostProcess:
    """Forks an agent process for one fleet host.

    ``registry`` maps a servlet *kind* to a setup callable returning a
    capability (built inside the agent after the fork — closures are
    fine, nothing is pickled).  ``secret`` is the shared fleet secret
    the token replica derives per-epoch keys from.
    """

    def __init__(self, host_id, registry, *, secret, epoch=0):
        self.host_id = host_id
        self.path = os.path.join(
            tempfile.gettempdir(),
            f"repro-fleet-{host_id}-{uuid.uuid4().hex[:8]}.sock",
        )
        self._registry = registry
        self._secret = secret
        self._epoch = epoch
        self._pid = None

    @property
    def pid(self):
        return self._pid

    def start(self):
        parent_pid = os.getpid()
        pid = os.fork()
        if pid == 0:
            status = 0
            try:
                _host_agent_main(self.host_id, self._registry,
                                 self._secret, self._epoch, self.path,
                                 parent_pid)
            except BaseException:
                import traceback

                traceback.print_exc()
                status = 1
            finally:
                os._exit(status)
        self._pid = pid
        self._wait_for_socket()
        return self

    def _wait_for_socket(self, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive():
                raise DomainUnavailableException(
                    f"fleet host {self.host_id!r} died during startup")
            if os.path.exists(self.path):
                try:
                    probe = socket.socket(socket.AF_UNIX,
                                          socket.SOCK_STREAM)
                    probe.connect(self.path)
                    probe.close()
                    return
                except OSError:
                    pass
            time.sleep(0.005)
        raise DomainUnavailableException(
            f"fleet host {self.host_id!r} socket did not appear")

    def alive(self):
        if self._pid is None:
            return False
        try:
            pid, _status = os.waitpid(self._pid, os.WNOHANG)
        except ChildProcessError:
            return False
        if pid == self._pid:
            self._pid = None
            return False
        return True

    def kill(self):
        """SIGKILL the agent *without* unlinking its socket — a crash,
        not a stop: the stale path stays behind exactly as a dead
        machine's address would."""
        if self._pid is not None:
            try:
                os.kill(self._pid, 9)
                os.waitpid(self._pid, 0)
            except OSError:
                pass
            self._pid = None

    def stop(self):
        self.kill()
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
