"""Unforgeable cross-host capability references (Capacity-style tokens).

In-process, a capability is unforgeable because the kernel hands out the
only reference; cross-process LRMI keeps that property because export
ids are meaningless outside their connection.  Across *machines* neither
trick works — a reference must survive being printed into a frame, so it
must carry its own proof of authenticity.  Following Capacity (see
PAPERS.md), a fleet capability reference is an HMAC-signed token:

* the **claims** (token id, placement, tenant, method set, epoch) are
  JSON, base64url-encoded;
* the **signature** is HMAC-SHA256 over the claims bytes, keyed by a
  per-epoch key derived from the fleet secret (``HMAC(secret, epoch)``),
  so possession of a valid token proves the coordinator minted it;
* the **epoch** scopes validity: the coordinator bumps the fleet epoch
  on every failover, which re-keys the fleet — tokens minted before the
  bump fail closed (:class:`TokenStaleError`) everywhere that knows the
  current epoch, including hosts that receive the epoch broadcast.  A
  host cut off by a partition keeps the old epoch; after healing, the
  tokens it minted or honoured are stale fleet-wide.

Verification failures are :class:`RevokedException` subclasses: a token
that cannot be trusted is treated exactly like a revoked capability —
fail closed, typed error, never a fallback to "probably fine".
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import os
import uuid

from repro.core.errors import RevokedException

#: Signature length in bytes (HMAC-SHA256).
_MAC_BYTES = 32


class TokenError(RevokedException):
    """A fleet token failed verification (fail closed)."""


class TokenInvalidError(TokenError):
    """Malformed or forged token: bad encoding or wrong signature."""


class TokenStaleError(TokenError):
    """The token's epoch predates the current fleet epoch (minted
    before a failover re-keyed the fleet)."""


class TokenRevokedError(TokenError):
    """The token id was explicitly revoked (broadcast fleet-wide)."""


def _b64(data):
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


def _unb64(text):
    padded = text + "=" * (-len(text) % 4)
    return base64.urlsafe_b64decode(padded.encode("ascii"))


class TokenAuthority:
    """Mints and verifies epoch-keyed HMAC capability tokens.

    The coordinator owns the authoritative instance; each fleet host
    holds a replica constructed from the shared ``secret`` whose
    ``epoch`` is advanced by coordinator broadcast.  Keys never cross
    the wire — only the epoch number does; both sides derive the
    per-epoch key from the secret they were born with.
    """

    def __init__(self, secret=None, epoch=0):
        self._secret = secret if secret is not None else os.urandom(32)
        if not isinstance(self._secret, (bytes, bytearray)):
            raise TypeError("secret must be bytes")
        self.epoch = epoch

    @property
    def secret(self):
        return self._secret

    def _key(self, epoch):
        return hmac.new(self._secret, b"fleet-epoch-%d" % epoch,
                        hashlib.sha256).digest()

    def bump_epoch(self):
        """Advance the fleet epoch (failover re-key); returns it."""
        self.epoch += 1
        return self.epoch

    def mint(self, placement, *, tenant=None, methods=(), epoch=None):
        """A signed token string for one placement at ``epoch`` (the
        current epoch by default)."""
        at = self.epoch if epoch is None else epoch
        claims = {
            "tid": uuid.uuid4().hex,
            "placement": placement,
            "tenant": tenant,
            "methods": sorted(methods),
            "epoch": at,
        }
        body = json.dumps(claims, sort_keys=True).encode("utf-8")
        mac = hmac.new(self._key(at), body, hashlib.sha256).digest()
        return _b64(body) + "." + _b64(mac)

    def verify(self, token, *, epoch=None):
        """The claims dict, after signature and epoch checks.

        Raises :class:`TokenInvalidError` for anything malformed or
        forged and :class:`TokenStaleError` when the (authentically
        signed) token belongs to an older epoch.
        """
        at = self.epoch if epoch is None else epoch
        if not isinstance(token, str) or "." not in token:
            raise TokenInvalidError("malformed fleet token")
        body_text, _, mac_text = token.rpartition(".")
        try:
            body = _unb64(body_text)
            mac = _unb64(mac_text)
            claims = json.loads(body)
            token_epoch = int(claims["epoch"])
        except (ValueError, KeyError, TypeError):
            raise TokenInvalidError("malformed fleet token") from None
        # Authenticate against the key for the epoch the token CLAIMS:
        # a correctly signed old-epoch token is stale (a meaningful,
        # distinct verdict), while a bad signature is a forgery.
        expected = hmac.new(self._key(token_epoch), body,
                            hashlib.sha256).digest()
        if len(mac) != _MAC_BYTES or not hmac.compare_digest(mac, expected):
            raise TokenInvalidError("fleet token signature mismatch")
        if token_epoch != at:
            raise TokenStaleError(
                f"fleet token epoch {token_epoch} != current {at} "
                "(minted before a failover re-keyed the fleet)"
            )
        return claims
