"""Multi-host fleet coordination over hardened ntrpc.

The paper scales protection domains *within* one JVM; this package
scales them *across* OS processes standing in for machines: a
:class:`FleetCoordinator` places servlet domains on
:class:`FleetHostProcess` agents, health-checks them by heartbeat,
fails placements over to survivors when a host dies, re-keys the
fleet's HMAC capability tokens on every failover so stale references
fail closed, and federates per-tenant quotas so a tenant cannot escape
its budget by spanning hosts.  See ``docs/robustness-notes.md``
("Multi-host" section) for the state machines.
"""

from .coordinator import (
    FleetCoordinator,
    FleetError,
    FleetUnavailableError,
    NoLiveHostError,
    validate_liveness_knobs,
    wait_until,
)
from .host import FleetHostAgent, FleetHostProcess
from .proto import PlacementGoneError
from .quota import QuotaFederation
from .tokens import (
    TokenAuthority,
    TokenError,
    TokenInvalidError,
    TokenRevokedError,
    TokenStaleError,
)

__all__ = [
    "FleetCoordinator",
    "FleetError",
    "FleetHostAgent",
    "FleetHostProcess",
    "FleetUnavailableError",
    "NoLiveHostError",
    "PlacementGoneError",
    "QuotaFederation",
    "TokenAuthority",
    "TokenError",
    "TokenInvalidError",
    "TokenRevokedError",
    "TokenStaleError",
    "validate_liveness_knobs",
    "wait_until",
]
