"""Fleet-wide quota federation: one budget per tenant, N hosts.

A tenant placed on two hosts must not get two budgets.  The federation
aggregates each host's cumulative usage report into a single
:class:`~repro.core.quota.QuotaCell` per tenant through exactly the
reconcile/fold protocol ``OutOfProcessRegistration`` already uses for
one out-of-process host:

* **reconcile** — each live host's latest ``quota_report`` *replaces*
  that host's slice of the tenant's external view; the cell sees the
  element-wise sum of every live slice plus everything retained from
  dead hosts;
* **fold** — when a host is evicted (crash, partition, kill) its last
  report retires into the retained base, so a replacement host
  reporting from zero never resets the tenant's budget position, and
  fleet totals stay exact across any kill: ``totals()`` before a kill
  equals ``totals()`` after the kill plus whatever the survivors have
  since reported.

Request *rate* is charged centrally (the coordinator routes every call,
so its sliding window sees fleet-wide rate by construction); the
``requests`` counter in host reports feeds totals/reporting only —
charging it into the cell as well would double-count.
"""

from __future__ import annotations

import threading

from repro.core.quota import OK, QuotaManager

#: Usage keys folded into the cell's external (budget-bearing) view.
_BUDGET_KEYS = ("cpu_ticks", "allocated_bytes", "bytes_copied_in")


class QuotaFederation:
    """Per-tenant budget state aggregated across fleet hosts."""

    def __init__(self, manager=None):
        self.manager = manager if manager is not None else QuotaManager()
        self._lock = threading.Lock()
        self._live = {}        # host_id -> {tenant: usage}
        self._retained = {}    # tenant -> usage (from dead hosts)

    # -- budgets -----------------------------------------------------------
    def set_quota(self, tenant, spec, on_kill=None):
        return self.manager.set_quota(tenant, spec, on_kill=on_kill)

    def admit(self, tenant):
        """Current verdict for a tenant (OK/SOFT/HARD) without charging."""
        return self.manager.admit(tenant)

    def charge_request(self, tenant):
        """Central rate charge: the coordinator routes every fleet call,
        so one window here is the fleet-wide request rate."""
        return self.manager.charge_request(tenant)

    # -- the reconcile/fold protocol --------------------------------------
    def ingest(self, host_id, report):
        """Reconcile one host's cumulative ``quota_report``.

        The report replaces that host's previous live slice (cumulative
        counters, so replacement — not addition — is what keeps the sum
        exact), then every reporting tenant's cell re-evaluates against
        the fleet-wide total.
        """
        with self._lock:
            previous = self._live.get(host_id, {})
            tenants = set(previous) | set(report)
            self._live[host_id] = {tenant: dict(usage)
                                   for tenant, usage in report.items()}
        for tenant in tenants:
            self._reconcile_tenant(tenant)

    def fold_host(self, host_id):
        """Retire a dead host's last report into the retained base."""
        with self._lock:
            report = self._live.pop(host_id, {})
            for tenant, usage in report.items():
                retained = self._retained.setdefault(tenant, {})
                for key, value in usage.items():
                    retained[key] = retained.get(key, 0) + value
        for tenant in report:
            self._reconcile_tenant(tenant)

    def _total(self, tenant):
        with self._lock:
            total = dict(self._retained.get(tenant, {}))
            for report in self._live.values():
                for key, value in report.get(tenant, {}).items():
                    total[key] = total.get(key, 0) + value
        return total

    def _reconcile_tenant(self, tenant):
        cell = self.manager.cell(tenant)
        if cell is None:
            return OK
        total = self._total(tenant)
        # Budget-bearing keys only: the coordinator already charges the
        # request window centrally, and "requests" here is a cumulative
        # count, not a rate.
        return self.manager.reconcile(
            tenant, {key: total.get(key, 0) for key in _BUDGET_KEYS})

    # -- reporting ---------------------------------------------------------
    def totals(self):
        """Fleet-wide usage per tenant: retained folds + live reports."""
        with self._lock:
            tenants = set(self._retained)
            for report in self._live.values():
                tenants |= set(report)
        return {tenant: self._total(tenant) for tenant in sorted(tenants)}

    def report(self):
        return {
            "tenants": self.manager.report(),
            "totals": self.totals(),
            "live_hosts": sorted(self._live),
        }
