"""The fleet coordinator: placement, liveness, failover, federation.

One coordinator process owns a fleet of :class:`~repro.fleet.host.
FleetHostProcess` agents and keeps serving through the loss of any of
them.  The moving parts:

* **placement** — ``place(name, kind, tenant)`` instantiates a servlet
  domain on the least-loaded live host and returns an HMAC-signed
  capability token (``repro.fleet.tokens``) — the only form in which a
  fleet reference exists outside the coordinator;
* **liveness** — a supervision thread pings every host each
  ``heartbeat_interval`` seconds over the hardened ntrpc transport;
  ``max_missed`` consecutive missed beats evict the host (the paper's
  crash-containment story, one level up: the *host* is now the unit
  that dies);
* **failover** — eviction folds the host's quota slice, bumps the
  fleet epoch (re-keying every outstanding token: stale references
  fail closed, exactly like revoked capabilities), broadcasts the new
  epoch to the survivors, and re-places the dead host's domains on
  them through the same place verb that created them.  Callers racing
  the blackout see :class:`FleetUnavailableError` — a
  ``DomainUnavailableException`` the web layer maps to a retryable
  503 with ``Retry-After`` — and rebind with :meth:`FleetCoordinator.
  lookup` once the failover lands;
* **federation** — per-tenant budgets aggregate across hosts through
  :class:`~repro.fleet.quota.QuotaFederation` (reconcile on heartbeat,
  fold on eviction), and the request-rate window is charged centrally
  at the front end, so a tenant cannot escape its budget by being
  placed on two hosts;
* **revocation** — ``revoke(token)`` takes effect locally at once and
  a sweeper fans the token id out to every live host on the next beat
  (the PR 5 broadcast pattern, fleet-wide).

Knob relationship (validated at construction, see
:func:`validate_liveness_knobs`): a heartbeat ping runs under
``ping_deadline``; the supervision loop fires every
``heartbeat_interval``.  ``ping_deadline`` must not exceed
``heartbeat_interval`` — otherwise a ping still legitimately in flight
when the next beat fires would be scored as a missed beat and a merely
slow host spuriously evicted.  The eviction window is ``max_missed x
heartbeat_interval``; a client retry loop that should bridge failover
must keep retrying for at least that window plus re-placement time
(:attr:`FleetCoordinator.blackout_hint` is the coordinator's own
estimate, surfaced as ``Retry-After``).
"""

from __future__ import annotations

import os
import threading
import time

from repro.core.errors import DomainUnavailableException
from repro.core.quota import HARD
from repro.ipc.ntrpc import RpcClient, RpcError

from .host import FleetHostProcess
from .proto import PlacementGoneError, decode_reply, encode_request
from .quota import QuotaFederation
from .tokens import TokenAuthority, TokenRevokedError

#: Host liveness states.
LIVE = "live"
DEAD = "dead"


class FleetError(DomainUnavailableException):
    """Base class of coordinator-side fleet failures."""


class FleetUnavailableError(FleetError):
    """The placement cannot be served right now (host dead, partition,
    failover in progress).  Retryable: carries the coordinator's
    blackout estimate for the front end's ``Retry-After`` header."""

    def __init__(self, message, retry_after=1.0):
        super().__init__(message)
        self.retry_after = retry_after


class NoLiveHostError(FleetError):
    """No live host can take a placement (the fleet is empty or dead)."""


def validate_liveness_knobs(ping_deadline, heartbeat_interval, max_missed):
    """Reject silently-conflicting liveness knobs at construction.

    ``ping_deadline`` bounds one heartbeat round trip;
    ``heartbeat_interval`` is the beat period; ``max_missed``
    consecutive failures evict.  A deadline longer than the interval
    means a ping can still be legitimately in flight when the next
    beat fires — that beat would be scored as missed and a slow host
    spuriously evicted, so the combination is rejected rather than
    silently mis-scored.
    """
    if heartbeat_interval <= 0:
        raise ValueError("heartbeat_interval must be positive")
    if ping_deadline <= 0:
        raise ValueError("ping_deadline must be positive")
    if ping_deadline > heartbeat_interval:
        raise ValueError(
            f"ping_deadline ({ping_deadline}s) exceeds heartbeat_interval "
            f"({heartbeat_interval}s): a ping still in flight at the next "
            "beat would score as a missed beat and spuriously evict a "
            "slow host; shrink ping_deadline or stretch the interval"
        )
    if max_missed < 1:
        raise ValueError("max_missed must be at least 1")


class _HostRecord:
    __slots__ = ("host_id", "process", "data", "control", "state",
                 "missed_beats", "placements", "spawned", "epoch")

    def __init__(self, host_id, process, data, control, spawned):
        self.host_id = host_id
        self.process = process
        self.data = data
        self.control = control
        self.state = LIVE
        self.missed_beats = 0
        self.placements = set()
        self.spawned = spawned
        # Last epoch the host ACKNOWLEDGED; None until the first
        # successful sync, so a failed broadcast is retried on every
        # heartbeat rather than assumed delivered.
        self.epoch = None


class _PlacementRecord:
    __slots__ = ("name", "kind", "tenant", "host_id", "methods")

    def __init__(self, name, kind, tenant, host_id, methods):
        self.name = name
        self.kind = kind
        self.tenant = tenant
        self.host_id = host_id
        self.methods = methods


class FleetCoordinator:
    """Places servlet domains across fleet hosts and keeps them served.

    ``registry`` is the default ``{kind: setup}`` map for
    :meth:`spawn_host`.  The liveness knobs are validated by
    :func:`validate_liveness_knobs` (see the module docstring for the
    relationship); ``call_deadline``/``retries``/``backoff`` configure
    the *data-path* ntrpc client per host — fleet verbs are idempotent,
    so transport retries are safe.
    """

    def __init__(self, registry=None, *, secret=None,
                 heartbeat_interval=0.25, max_missed=3,
                 ping_deadline=None, call_deadline=5.0, retries=1,
                 backoff=0.05, reconcile_every=2, quota=None,
                 endpoint="coordinator"):
        if ping_deadline is None:
            ping_deadline = heartbeat_interval
        validate_liveness_knobs(ping_deadline, heartbeat_interval,
                                max_missed)
        self.registry = dict(registry or {})
        self.tokens = TokenAuthority(secret)
        self.heartbeat_interval = heartbeat_interval
        self.max_missed = max_missed
        self.ping_deadline = ping_deadline
        self.call_deadline = call_deadline
        self.retries = retries
        self.backoff = backoff
        self.reconcile_every = reconcile_every
        self.endpoint = endpoint
        self.federation = quota if quota is not None else QuotaFederation()
        self._hosts = {}
        self._placements = {}
        self._revoked = set()
        self._pending_revocations = set()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._beat_thread = None
        self._beats = 0
        self.heartbeats_sent = 0
        self.evictions = []      # [{host_id, reason, epoch, at_beat}]
        self.failovers = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def epoch(self):
        return self.tokens.epoch

    @property
    def blackout_hint(self):
        """Seconds a caller should wait before retrying through a
        failover: the detection window plus a re-placement beat."""
        return self.heartbeat_interval * (self.max_missed + 1)

    def start(self):
        if self._beat_thread is None:
            self._beat_thread = threading.Thread(
                target=self._supervise, daemon=True,
                name="fleet-heartbeat")
            self._beat_thread.start()
        return self

    def stop(self):
        self._stop.set()
        thread = self._beat_thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._beat_thread = None
        with self._lock:
            records = list(self._hosts.values())
        for record in records:
            record.data.close()
            record.control.close()
            if record.spawned and record.process is not None:
                record.process.stop()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # -- host registry -----------------------------------------------------
    def spawn_host(self, host_id, registry=None):
        """Fork and register a fleet host sharing this fleet's secret."""
        process = FleetHostProcess(
            host_id, registry if registry is not None else self.registry,
            secret=self.tokens.secret, epoch=self.tokens.epoch,
        ).start()
        self.register_host(process, spawned=True)
        return process

    def register_host(self, process, *, spawned=False):
        """Register a started :class:`FleetHostProcess` for placement."""
        host_id = process.host_id
        data = RpcClient(
            process.path, call_deadline=self.call_deadline,
            retries=self.retries, backoff=self.backoff,
            endpoint=self.endpoint, remote_endpoint=host_id,
        )
        control = RpcClient(
            process.path, call_deadline=self.ping_deadline,
            endpoint=self.endpoint, remote_endpoint=host_id,
        )
        record = _HostRecord(host_id, process, data, control, spawned)
        with self._lock:
            if host_id in self._hosts and \
                    self._hosts[host_id].state == LIVE:
                raise ValueError(f"host {host_id!r} already registered")
            self._hosts[host_id] = record
        # A late joiner must trust only current-epoch tokens and must
        # honour every revocation issued before it existed.  Failures
        # here are retried after the next successful heartbeat.
        self._sync_epoch(record)
        self._sync_revocations(record)
        # Capacity returning after a total-loss window: placements
        # orphaned while NO host was live stayed unplaced (eviction's
        # re-place fanout had no survivors to try).  The first host to
        # register picks them up — service resumes without an operator
        # re-placing by hand.
        with self._lock:
            orphaned = [placement
                        for placement in self._placements.values()
                        if placement.host_id is None]
        survivors = self._live_records()
        for placement in orphaned:
            self._replace(placement, survivors)
        return record

    def hosts(self):
        with self._lock:
            return {host_id: record.state
                    for host_id, record in self._hosts.items()}

    def _live_records(self):
        with self._lock:
            return [record for record in self._hosts.values()
                    if record.state == LIVE]

    # -- rpc helpers -------------------------------------------------------
    @staticmethod
    def _verb(client, verb, request, deadline=None):
        body = client.call(verb, encode_request(request),
                           deadline=deadline)
        return decode_reply(body)

    def _control(self, record, verb, request):
        return self._verb(record.control, verb, request,
                          deadline=self.ping_deadline)

    # -- epoch / revocation convergence ------------------------------------
    def _sync_epoch(self, record):
        """Bring one host's token-replica epoch up to the fleet's.

        Runs at registration, after every successful heartbeat, and in
        the eviction fanout — so a live host whose eviction-time
        broadcast was lost (tight ping deadline, momentary partition)
        converges within one beat instead of rejecting every
        current-epoch token forever.  ``record.epoch`` tracks the last
        epoch the host ACKNOWLEDGED; the host-side verb is monotonic
        (``max(current, new)``), so resends are idempotent and can
        never regress a replica.  Returns True once the host is known
        to be current.
        """
        epoch = self.tokens.epoch
        if record.epoch is not None and record.epoch >= epoch:
            return True
        try:
            reply = self._control(record, "epoch", {"epoch": epoch})
        except RpcError:
            return False  # retried after the next successful beat
        record.epoch = int(reply["epoch"])
        return True

    def _sync_revocations(self, record):
        """Deliver the FULL revoked-id set to one host (registration
        path): a host that joins after a revocation was flushed would
        otherwise never hear it, leaving a hole in the host-side
        defence-in-depth layer."""
        with self._lock:
            revoked = sorted(self._revoked)
        if not revoked:
            return True
        try:
            self._control(record, "revoke", {"ids": revoked})
        except RpcError:
            # Re-queue for the sweeper: hosts union the ids, so the
            # fleet-wide resend is idempotent.
            with self._lock:
                self._pending_revocations.update(revoked)
            return False
        return True

    # -- placement ---------------------------------------------------------
    def _least_loaded(self):
        live = self._live_records()
        if not live:
            raise NoLiveHostError("no live host available for placement")
        return min(live, key=lambda record: (len(record.placements),
                                             record.host_id))

    def place(self, name, kind, tenant=None):
        """Place a servlet domain; returns its signed capability token."""
        placement = _PlacementRecord(name, kind, tenant, None, ())
        with self._lock:
            if name in self._placements:
                raise ValueError(f"placement {name!r} already exists")
            # Reserve the name before releasing the lock: a racing
            # place() with the same name must fail the check above, not
            # instantiate a second domain whose record clobbers this
            # one (leaking the first domain as an orphan on its host).
            self._placements[name] = placement
        try:
            record = self._least_loaded()
            reply = self._verb(record.data, "place", {
                "placement_id": name, "kind": kind, "tenant": tenant,
            })
        except BaseException:
            with self._lock:
                if self._placements.get(name) is placement:
                    del self._placements[name]
            raise
        with self._lock:
            placement.host_id = record.host_id
            placement.methods = tuple(reply.get("methods", ()))
            record.placements.add(name)
        return self._mint(placement)

    def _mint(self, placement):
        return self.tokens.mint(placement.name, tenant=placement.tenant,
                                methods=placement.methods)

    def lookup(self, name):
        """A fresh current-epoch token for an existing placement — the
        rebind path after a failover staled the old token."""
        with self._lock:
            placement = self._placements.get(name)
        if placement is None:
            raise PlacementGoneError(f"no placement named {name!r}")
        return self._mint(placement)

    def placements(self):
        with self._lock:
            return {name: placement.host_id
                    for name, placement in self._placements.items()}

    # -- the data path -----------------------------------------------------
    def call(self, token, method, *args):
        """Invoke a method on the placement a token references.

        Fail-closed order: token authenticity and epoch, revocation,
        quota verdict, then routing.  Transport failures surface as
        :class:`FleetUnavailableError` (503 + Retry-After at the web
        layer), never a hang and never a raw ``OSError``.
        """
        claims = self.tokens.verify(token)
        if claims["tid"] in self._revoked:
            raise TokenRevokedError(
                f"token {claims['tid']} was revoked fleet-wide")
        tenant = claims.get("tenant")
        if tenant is not None:
            self.federation.charge_request(tenant)
            if self.federation.admit(tenant) == HARD:
                cell = self.federation.manager.cell(tenant)
                raise cell.exceeded_error()
        with self._lock:
            placement = self._placements.get(claims["placement"])
            record = (None if placement is None or placement.host_id is None
                      else self._hosts.get(placement.host_id))
        if placement is None:
            raise PlacementGoneError(
                f"placement {claims['placement']!r} is gone")
        if record is None or record.state != LIVE:
            raise FleetUnavailableError(
                f"placement {placement.name!r} is failing over",
                retry_after=self.blackout_hint)
        try:
            reply = self._verb(record.data, "invoke", {
                "token": token, "method": method, "args": list(args),
            })
        except RpcError as exc:
            raise FleetUnavailableError(
                f"host {record.host_id!r} unreachable mid-call: {exc}",
                retry_after=self.blackout_hint) from None
        return reply["result"]

    # -- revocation --------------------------------------------------------
    def revoke(self, token):
        """Revoke a token fleet-wide: local effect immediately, host
        broadcast fanned out by the sweeper on the next beat."""
        claims = self.tokens.verify(token)
        with self._lock:
            self._revoked.add(claims["tid"])
            self._pending_revocations.add(claims["tid"])

    def _flush_revocations(self, records):
        with self._lock:
            pending = set(self._pending_revocations)
        if not pending:
            return
        reached = 0
        failed = False
        for record in records:
            try:
                self._control(record, "revoke", {"ids": sorted(pending)})
                reached += 1
            except RpcError:
                failed = True  # retried next beat
        # Cleared only once every live host has actually heard the set;
        # with zero live hosts nobody has, so it stays pending for the
        # hosts that register later.
        if reached and not failed:
            with self._lock:
                self._pending_revocations -= pending

    # -- liveness and failover ---------------------------------------------
    def _supervise(self):
        while not self._stop.wait(self.heartbeat_interval):
            self._beats += 1
            records = self._live_records()
            self._flush_revocations(records)
            for record in records:
                if self._stop.is_set():
                    return
                try:
                    record.control.ping(deadline=self.ping_deadline)
                except RpcError:
                    record.missed_beats += 1
                    if record.missed_beats >= self.max_missed:
                        self._evict(record, "missed heartbeats")
                    continue
                record.missed_beats = 0
                self.heartbeats_sent += 1
                # Epoch convergence piggybacks on liveness: a host that
                # missed the eviction-time broadcast would otherwise
                # stay LIVE (pings succeed) while rejecting every
                # current-epoch token.  No-op RPC-wise once the host
                # has acknowledged the current epoch.
                self._sync_epoch(record)
                if self._beats % self.reconcile_every == 0:
                    self._reconcile(record)

    def _reconcile(self, record):
        try:
            report = self._control(record, "quota_report", {})
        except RpcError:
            return  # the beat loop scores reachability, not this
        self.federation.ingest(record.host_id, report)

    def _evict(self, record, reason):
        """Eviction + failover: fold quota, re-key the fleet, re-place."""
        with self._lock:
            if record.state == DEAD:
                return
            record.state = DEAD
            orphaned = [self._placements[name]
                        for name in sorted(record.placements)
                        if name in self._placements]
            record.placements.clear()
        record.data.close()
        record.control.close()
        # The host's last reconciled report retires into the retained
        # base: its replacement reports from zero without resetting any
        # tenant's budget position.
        self.federation.fold_host(record.host_id)
        # Re-key: every token minted before this instant is now stale,
        # fleet-wide, including on hosts this coordinator cannot reach
        # (they fail closed the moment they heal and hear the epoch).
        epoch = self.tokens.bump_epoch()
        self.evictions.append({"host_id": record.host_id,
                               "reason": reason, "epoch": epoch,
                               "at_beat": self._beats})
        survivors = self._live_records()
        for survivor in survivors:
            # A failed fanout is NOT final: record.epoch stays behind,
            # and the heartbeat loop re-sends until acknowledged.
            self._sync_epoch(survivor)
        for placement in orphaned:
            self._replace(placement, survivors)

    def _replace(self, placement, survivors):
        """Re-place one orphaned domain on a survivor (fresh domain —
        the dead host's state died with it, exactly as a crashed
        in-process domain's would)."""
        with self._lock:
            placement.host_id = None
        for survivor in sorted(survivors,
                               key=lambda r: (len(r.placements),
                                              r.host_id)):
            try:
                reply = self._verb(survivor.data, "place", {
                    "placement_id": placement.name,
                    "kind": placement.kind,
                    "tenant": placement.tenant,
                })
            except RpcError:
                continue
            with self._lock:
                placement.host_id = survivor.host_id
                placement.methods = tuple(reply.get("methods", ()))
                survivor.placements.add(placement.name)
            self.failovers += 1
            return True
        return False  # stays unplaced: callers get FleetUnavailableError

    # -- reporting ---------------------------------------------------------
    def stats(self):
        with self._lock:
            hosts = {
                host_id: {
                    "state": record.state,
                    "missed_beats": record.missed_beats,
                    "placements": sorted(record.placements),
                    "pid": (record.process.pid
                            if record.process is not None else None),
                }
                for host_id, record in self._hosts.items()
            }
            placements = {name: placement.host_id
                          for name, placement in self._placements.items()}
        return {
            "pid": os.getpid(),
            "epoch": self.tokens.epoch,
            "hosts": hosts,
            "placements": placements,
            "heartbeats_sent": self.heartbeats_sent,
            "evictions": list(self.evictions),
            "failovers": self.failovers,
            "revoked": len(self._revoked),
            "quota": self.federation.report(),
        }


def wait_until(predicate, timeout=8.0, poll=0.01):
    """Poll ``predicate`` until true or ``timeout``; returns its last
    value (the fleet suites' and benchmarks' convergence helper)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()
