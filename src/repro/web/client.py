"""Benchmark/test clients: concurrent keep-alive request generators (the
"eight multithreaded clients repeatedly request the same document"
workload of Table 5), plus single-connection keep-alive and pipelined
fetch helpers used by the conformance and stress suites."""

from __future__ import annotations

import socket
import threading
import time

from .http import format_request, read_response


def fetch_once(host, port, path, timeout=5.0):
    """One GET on a fresh connection; returns the Response."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(format_request("GET", path, keep_alive=False))
        reader = conn.makefile("rb")
        response = read_response(reader)
        reader.close()
        return response


def fetch_many(host, port, paths, timeout=10.0, version="HTTP/1.0"):
    """GET each path sequentially on ONE keep-alive connection."""
    responses = []
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reader = conn.makefile("rb")
        for path in paths:
            conn.sendall(format_request("GET", path, keep_alive=True,
                                        version=version))
            response = read_response(reader)
            if response is None:
                break
            responses.append(response)
        reader.close()
    return responses


def fetch_pipelined(host, port, paths, timeout=10.0, version="HTTP/1.1"):
    """Send every request back-to-back in one burst, then read the
    responses; the server must answer them in order."""
    burst = b"".join(
        format_request("GET", path, keep_alive=True, version=version)
        for path in paths
    )
    responses = []
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.sendall(burst)
        reader = conn.makefile("rb")
        for _ in paths:
            response = read_response(reader)
            if response is None:
                break
            responses.append(response)
        reader.close()
    return responses


def _client_worker(host, port, path, count, results, index, headers=None):
    completed = 0
    try:
        with socket.create_connection((host, port), timeout=10.0) as conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = conn.makefile("rb")
            request = format_request("GET", path, headers=headers,
                                     keep_alive=True)
            for _ in range(count):
                conn.sendall(request)
                response = read_response(reader)
                if response is None or response.status != 200:
                    break
                completed += 1
            reader.close()
    except OSError:
        pass
    results[index] = completed


def measure_throughput(host, port, path, clients=8, requests_per_client=50,
                       warmup=5, headers=None):
    """Pages/second with ``clients`` concurrent keep-alive connections.

    ``headers`` (optional dict) rides every request — the Table 5 load
    generator passes browser-shaped headers so the server parses
    WebStone-era request weight, as the paper's clients sent.
    """
    if warmup:
        warm_results = [0]
        _client_worker(host, port, path, warmup, warm_results, 0, headers)
    results = [0] * clients
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(host, port, path, requests_per_client, results, index,
                  headers),
            daemon=True,
        )
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    total = sum(results)
    if elapsed <= 0 or total == 0:
        return 0.0
    return total / elapsed


class LoadReport:
    """Aggregated result of a mixed-traffic load run."""

    def __init__(self):
        self.responses = {}      # path -> {status: count}
        self.garbled = []        # (path, status, body) with unexpected body
        self.dropped = 0         # connection died before script finished
        self.errors = []         # unexpected exceptions in workers

    def count(self, path, status=200):
        return self.responses.get(path, {}).get(status, 0)

    def total(self, status=200):
        return sum(by_status.get(status, 0)
                   for by_status in self.responses.values())

    def statuses(self, path):
        return dict(self.responses.get(path, {}))


def run_mixed_load(host, port, script, clients=8, rounds=50,
                   expectations=None, timeout=15.0):
    """Drive ``clients`` concurrent keep-alive connections through
    ``script`` (a path list) ``rounds`` times each, validating every
    response body.

    ``expectations`` maps path -> callable(response) -> bool (body
    validator, applied on 200s).  Returns a :class:`LoadReport`; any
    response whose validator fails is recorded as garbled, any
    connection that dies early as dropped.
    """
    expectations = expectations or {}
    report = LoadReport()
    lock = threading.Lock()

    def worker():
        try:
            with socket.create_connection((host, port),
                                          timeout=timeout) as conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                reader = conn.makefile("rb")
                for _ in range(rounds):
                    for path in script:
                        conn.sendall(format_request("GET", path,
                                                    keep_alive=True))
                        response = read_response(reader)
                        if response is None:
                            with lock:
                                report.dropped += 1
                            return
                        # Validate outside the lock: the soak exists to
                        # exercise concurrency, not to serialize every
                        # client through one critical section.
                        validator = expectations.get(path)
                        garbled = (response.status == 200
                                   and validator is not None
                                   and not validator(response))
                        with lock:
                            by_status = report.responses.setdefault(path, {})
                            by_status[response.status] = \
                                by_status.get(response.status, 0) + 1
                            if garbled:
                                report.garbled.append(
                                    (path, response.status, response.body)
                                )
                reader.close()
        except Exception as exc:  # noqa: BLE001 - reported, not masked
            with lock:
                report.errors.append(repr(exc))

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout + 30.0)
    stragglers = sum(1 for thread in threads if thread.is_alive())
    if stragglers:
        # Workers still running would keep mutating the report behind
        # the caller's back — surface it as a hard error instead.
        with lock:
            report.errors.append(
                f"{stragglers} load worker(s) still running after join"
            )
    return report
