"""Benchmark client: concurrent keep-alive request generators (the "eight
multithreaded clients repeatedly request the same document" workload of
Table 5)."""

from __future__ import annotations

import socket
import threading
import time

from .http import format_request, read_response


def fetch_once(host, port, path):
    """One GET on a fresh connection; returns the Response."""
    with socket.create_connection((host, port), timeout=5.0) as conn:
        conn.sendall(format_request("GET", path, keep_alive=False))
        reader = conn.makefile("rb")
        response = read_response(reader)
        reader.close()
        return response


def _client_worker(host, port, path, count, results, index):
    completed = 0
    try:
        with socket.create_connection((host, port), timeout=10.0) as conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = conn.makefile("rb")
            request = format_request("GET", path, keep_alive=True)
            for _ in range(count):
                conn.sendall(request)
                response = read_response(reader)
                if response is None or response.status != 200:
                    break
                completed += 1
            reader.close()
    except OSError:
        pass
    results[index] = completed


def measure_throughput(host, port, path, clients=8, requests_per_client=50,
                       warmup=5):
    """Pages/second with ``clients`` concurrent keep-alive connections."""
    if warmup:
        warm_results = [0]
        _client_worker(host, port, path, warmup, warm_results, 0)
    results = [0] * clients
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(host, port, path, requests_per_client, results, index),
            daemon=True,
        )
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    total = sum(results)
    if elapsed <= 0 or total == 0:
        return 0.0
    return total / elapsed
