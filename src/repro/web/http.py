"""HTTP/1.0 and /1.1 parsing and formatting.

Two parsers share one grammar: :func:`read_request` (the seed's blocking,
buffered-reader parser, kept as the reference implementation) and
:class:`RequestParser` (incremental, byte-boundary agnostic — the event
loop feeds it whatever ``recv`` returned and drains complete requests,
which is what makes keep-alive pipelining possible on a non-blocking
socket).  ``tests/web/test_http_fuzz.py`` pins the two to each other:
any split of a valid byte stream must parse identically, and any input
the reference rejects must raise :class:`HttpError` incrementally too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CRLF = b"\r\n"

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Malformed request; ``status`` is the response the server sends."""

    def __init__(self, message="", status=400):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    method: str
    path: str
    version: str = "HTTP/1.0"
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self):
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.1":
            return connection != "close"
        return connection == "keep-alive"


@dataclass
class Response:
    status: int = 200
    headers: dict = field(default_factory=dict)
    body: bytes = b""


def read_request(reader):
    """Parse one request from a buffered binary reader; None at EOF."""
    line = reader.readline(8192)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) == 2:
        method, path = parts
        version = "HTTP/1.0"
    elif len(parts) == 3:
        method, path, version = parts
    else:
        raise HttpError(f"malformed request line: {line!r}")
    headers = {}
    while True:
        line = reader.readline(8192)
        if not line:
            raise HttpError("EOF in headers")
        line = line.strip()
        if not line:
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(f"bad content-length: {raw_length!r}") from None
    if length < 0:
        # read(-1) would block until EOF — an indefinite hang on a
        # keep-alive connection, not a parse error.
        raise HttpError(f"negative content-length: {raw_length!r}")
    if length:
        body = reader.read(length)
        if len(body) != length:
            raise HttpError("EOF in body")
    return Request(method.upper(), path, version, headers, body)


class RequestParser:
    """Incremental request parser for non-blocking transports.

    ``feed()`` bytes as they arrive, then call ``next_request()`` until it
    returns None (needs more data) — a single feed may yield several
    pipelined requests.  Malformed input raises :class:`HttpError`; the
    resource limits (line length, total header bytes, body size) raise it
    too, so a hostile peer cannot buffer unboundedly.
    """

    _LINE, _HEADERS, _BODY = 0, 1, 2

    __slots__ = ("max_line", "max_header_bytes", "max_body", "_buf", "_pos",
                 "_state", "_method", "_path", "_version", "_headers",
                 "_length", "_header_bytes")

    def __init__(self, max_line=8192, max_header_bytes=32768,
                 max_body=1 << 20):
        self.max_line = max_line
        self.max_header_bytes = max_header_bytes
        self.max_body = max_body
        self._buf = bytearray()
        self._pos = 0
        self._state = self._LINE
        self._headers = None
        self._length = 0
        self._header_bytes = 0

    def feed(self, data):
        self._buf += data

    @property
    def buffered(self):
        """Bytes received but not yet consumed by a returned request."""
        return len(self._buf) - self._pos

    @property
    def mid_request(self):
        """True when EOF now would truncate a partially-received request."""
        return self._state != self._LINE or self.buffered > 0

    def _take_line(self, what):
        buf = self._buf
        index = buf.find(b"\n", self._pos)
        if index < 0:
            if len(buf) - self._pos > self.max_line:
                raise HttpError(f"{what} too long")
            if self._pos:
                del buf[:self._pos]
                self._pos = 0
            return None
        if index - self._pos > self.max_line:
            raise HttpError(f"{what} too long")
        line = bytes(buf[self._pos:index + 1])
        self._pos = index + 1
        return line

    def next_request(self):
        """One complete request, or None until more bytes arrive."""
        while True:
            if self._state == self._LINE:
                line = self._take_line("request line")
                if line is None:
                    return None
                parts = line.decode("latin-1").strip().split()
                if len(parts) == 2:
                    method, path = parts
                    version = "HTTP/1.0"
                elif len(parts) == 3:
                    method, path, version = parts
                else:
                    raise HttpError(f"malformed request line: {line!r}")
                self._method = method
                self._path = path
                self._version = version
                self._headers = {}
                self._header_bytes = 0
                self._state = self._HEADERS
            elif self._state == self._HEADERS:
                line = self._take_line("header line")
                if line is None:
                    return None
                self._header_bytes += len(line)
                if self._header_bytes > self.max_header_bytes:
                    raise HttpError("headers too large")
                stripped = line.strip()
                if not stripped:
                    self._length = self._content_length()
                    self._state = self._BODY
                    continue
                name, _, value = stripped.decode("latin-1").partition(":")
                self._headers[name.strip().lower()] = value.strip()
            else:  # _BODY
                if self.buffered < self._length:
                    return None
                end = self._pos + self._length
                body = bytes(self._buf[self._pos:end])
                del self._buf[:end]
                self._pos = 0
                self._state = self._LINE
                headers = self._headers
                self._headers = None
                return Request(self._method.upper(), self._path,
                               self._version, headers, body)

    def _content_length(self):
        raw = self._headers.get("content-length", "0") or "0"
        try:
            length = int(raw)
        except ValueError:
            raise HttpError(f"bad content-length: {raw!r}") from None
        if length < 0:
            raise HttpError(f"negative content-length: {raw!r}")
        if length > self.max_body:
            raise HttpError(f"body of {length} bytes exceeds limit",
                            status=413)
        return length


def format_response(response, keep_alive=False, version="HTTP/1.0"):
    status = response.status
    body = response.body
    if type(body) is not bytes:
        # A sealed shared-memory region body (repro.core.regions): the
        # socket write needs contiguous private bytes, and a revoked
        # region raises typed here rather than framing stale bytes.
        body = bytes(body)
    headers = response.headers
    lines = [f"{version} {status} {REASONS.get(status, 'Unknown')}"]
    append = lines.append
    for name, value in headers.items():
        append(f"{name}: {value}")
    # Same defaulting (and header order) as a dict copy + setdefault,
    # without copying: callers' headers rarely carry either name.
    if "Content-Length" not in headers:
        append(f"Content-Length: {len(body)}")
    if "Connection" not in headers:
        append("Connection: keep-alive" if keep_alive
               else "Connection: close")
    return "\r\n".join(lines).encode("latin-1") + CRLF + CRLF + body


def format_request(method, path, headers=None, body=b"",
                   keep_alive=True, version="HTTP/1.0"):
    lines = [f"{method} {path} {version}"]
    header_map = dict(headers or {})
    if keep_alive and version != "HTTP/1.1":
        header_map.setdefault("Connection", "keep-alive")
    elif not keep_alive and version == "HTTP/1.1":
        header_map.setdefault("Connection", "close")
    if body:
        header_map.setdefault("Content-Length", str(len(body)))
    for name, value in header_map.items():
        lines.append(f"{name}: {value}")
    return "\r\n".join(lines).encode("latin-1") + CRLF + CRLF + body


def read_response(reader):
    """Parse one response from a buffered binary reader; None at EOF."""
    line = reader.readline(8192)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split(None, 2)
    if len(parts) < 2:
        raise HttpError(f"malformed status line: {line!r}")
    status = int(parts[1])
    headers = {}
    while True:
        line = reader.readline(8192)
        if not line:
            raise HttpError("EOF in headers")
        line = line.strip()
        if not line:
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = reader.read(length) if length else b""
    return Response(status, headers, body)
