"""Minimal HTTP/1.0 (+keep-alive) parsing and formatting."""

from __future__ import annotations

from dataclasses import dataclass, field

CRLF = b"\r\n"

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    pass


@dataclass
class Request:
    method: str
    path: str
    version: str = "HTTP/1.0"
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self):
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.1":
            return connection != "close"
        return connection == "keep-alive"


@dataclass
class Response:
    status: int = 200
    headers: dict = field(default_factory=dict)
    body: bytes = b""


def read_request(reader):
    """Parse one request from a buffered binary reader; None at EOF."""
    line = reader.readline(8192)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) == 2:
        method, path = parts
        version = "HTTP/1.0"
    elif len(parts) == 3:
        method, path, version = parts
    else:
        raise HttpError(f"malformed request line: {line!r}")
    headers = {}
    while True:
        line = reader.readline(8192)
        if not line:
            raise HttpError("EOF in headers")
        line = line.strip()
        if not line:
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0") or "0")
    if length:
        body = reader.read(length)
        if len(body) != length:
            raise HttpError("EOF in body")
    return Request(method.upper(), path, version, headers, body)


def format_response(response, keep_alive=False):
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.0 {response.status} {reason}"]
    headers = dict(response.headers)
    headers.setdefault("Content-Length", str(len(response.body)))
    headers.setdefault(
        "Connection", "keep-alive" if keep_alive else "close"
    )
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + CRLF + CRLF
    return head + response.body


def format_request(method, path, headers=None, body=b"",
                   keep_alive=True):
    lines = [f"{method} {path} HTTP/1.0"]
    header_map = dict(headers or {})
    if keep_alive:
        header_map.setdefault("Connection", "keep-alive")
    if body:
        header_map.setdefault("Content-Length", str(len(body)))
    for name, value in header_map.items():
        lines.append(f"{name}: {value}")
    return "\r\n".join(lines).encode("latin-1") + CRLF + CRLF + body


def read_response(reader):
    """Parse one response from a buffered binary reader; None at EOF."""
    line = reader.readline(8192)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split(None, 2)
    if len(parts) < 2:
        raise HttpError(f"malformed status line: {line!r}")
    status = int(parts[1])
    headers = {}
    while True:
        line = reader.readline(8192)
        if not line:
            raise HttpError("EOF in headers")
        line = line.strip()
        if not line:
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = reader.read(length) if length else b""
    return Response(status, headers, body)
