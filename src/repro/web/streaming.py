"""SCM_RIGHTS reply streaming for out-of-process servlets.

The classic cross-process reply path costs three copies: the domain host
serializes the response, the master deserializes it, and the reactor
formats it back into HTTP bytes on the client socket.  Reply streaming
collapses all three — the master passes the *client socket's file
descriptor* to the host with the call (``SCM_RIGHTS`` over the AF_UNIX
wire), and the host writes the formatted HTTP response straight to the
browser.  The LRMI reply shrinks to a tiny ``("streamed", nbytes)``
acknowledgement.

Safety model — who may write the client socket, and when:

* the reactor only opens a *stream offer* on the inline dispatch path,
  while the event loop thread is blocked inside the handler, with no
  queued output (``conn.out`` empty) and no earlier pipelined response
  pending — so for the duration of the LRMI round trip exactly one
  party can write the socket, and HTTP response order is preserved;
* the descriptor crosses via ``SCM_RIGHTS``, i.e. dup semantics: the
  host's copy shares file status flags with the reactor's non-blocking
  socket, so :func:`write_all_fd` must park in ``select`` on EAGAIN
  rather than ever flipping the socket to blocking under the reactor;
* the grant is recorded (``offer.grant``) immediately before the call
  frame leaves the master.  From that moment the host *may* have
  written bytes, so any failure afterwards poisons the connection's
  HTTP framing — the reactor answers by closing it (``offer.fail``),
  never by appending a formatted error response to a half-written one.
  A failure *before* the grant leaves the socket untouched and falls
  back to the ordinary marshalled reply path.

The thread-local offer plumbing keeps the reactor and the gateway
decoupled: the event loop publishes the offer, the out-of-process
gateway ``claim()``s it (popping it, so nested dispatches can never
observe a stale offer), and the loop inspects the outcome when the
handler returns.
"""

from __future__ import annotations

import os
import select
import threading
import time

from repro.core import Remote
from repro.ipc.lrmi import claim_fd


class _Streamed:
    """Sentinel response: the bytes already went out on the granted fd."""

    __slots__ = ()

    def __repr__(self):
        return "<STREAMED>"


#: Returned through the servlet plumbing (gateway -> system servlet ->
#: bridge -> reactor) in place of a response carrier when the reply was
#: written directly to the client socket by the domain host.
STREAMED = _Streamed()


class StreamWriteError(OSError):
    """A direct-to-socket write died partway; ``written`` bytes are out."""

    def __init__(self, written, cause):
        super().__init__(f"reply stream failed after {written} bytes: "
                         f"{cause}")
        self.written = written


def write_all_fd(fd, data, timeout=30.0):
    """Write every byte of ``data`` to ``fd``; returns the byte count.

    The descriptor arrived via SCM_RIGHTS and therefore shares file
    status flags with the master's reactor socket — it is O_NONBLOCK
    and must stay that way.  EAGAIN parks in ``select`` until writable,
    bounded by ``timeout``.  On any failure raises
    :class:`StreamWriteError` carrying how many bytes escaped (the
    caller reports that to the master, which decides whether the HTTP
    framing is salvageable — it is only when the count is zero).
    """
    view = memoryview(data)
    total = len(view)
    deadline = time.monotonic() + timeout
    written = 0
    while written < total:
        try:
            written += os.write(fd, view[written:])
        except BlockingIOError:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise StreamWriteError(written, "write timeout") from None
            try:
                select.select((), (fd,), (), min(remaining, 1.0))
            except OSError as exc:
                raise StreamWriteError(written, exc) from None
        except OSError as exc:
            raise StreamWriteError(written, exc) from None
    return written


# -- master side: the reactor's stream offer ----------------------------------

class StreamOffer:
    """One dispatch's offer of the client socket to a domain host.

    State flows strictly forward: ``granted`` flips right before the
    call frame (and the fd) leave the master; then either ``complete``
    (the host confirmed a full response went out) or ``fail`` (bytes
    may be stranded mid-response; the connection must close).
    """

    __slots__ = ("fd", "version", "keep_alive", "granted", "streamed",
                 "failed", "nbytes")

    def __init__(self, fd, version, keep_alive):
        self.fd = fd
        self.version = version
        self.keep_alive = keep_alive
        self.granted = False
        self.streamed = False
        self.failed = False
        self.nbytes = 0

    def grant(self):
        self.granted = True

    def retract(self):
        """Void the grant: the host completed the LRMI round trip with a
        typed exception *reply*, which its adapter can only produce
        before the first byte goes out — so the socket is untouched and
        the ordinary marshalled-response path owns it again."""
        self.granted = False

    def complete(self, nbytes):
        self.streamed = True
        self.nbytes = nbytes

    def fail(self):
        self.failed = True


_local = threading.local()

#: Live stream-capable registrations.  The reactor consults this before
#: publishing an offer so servers with no out-of-process servlets pay
#: one integer compare per inline dispatch and nothing else.
_armed_count = 0
_armed_lock = threading.Lock()


def arm():
    global _armed_count
    with _armed_lock:
        _armed_count += 1


def disarm():
    global _armed_count
    with _armed_lock:
        _armed_count -= 1


def armed():
    return _armed_count > 0


def open_offer(fd, version, keep_alive):
    """Publish a stream offer for the current dispatch thread."""
    offer = StreamOffer(fd, version, keep_alive)
    _local.offer = offer
    return offer


def close_offer():
    _local.offer = None


def claim():
    """Pop the current thread's offer (None when there is none).

    Popping — rather than peeking — means a gateway that decides not to
    stream, or any code it calls, can never hand the same offer to a
    second callee.
    """
    offer = getattr(_local, "offer", None)
    if offer is not None:
        _local.offer = None
    return offer


# -- host side: the streaming terminus ----------------------------------------

class ReplyStream(Remote):
    """Remote interface for the host-side reply-streaming terminus."""

    def service(self, request, version, keep_alive):
        raise NotImplementedError


class ReplyStreamAdapter(ReplyStream):
    """Runs in the domain host: claims the granted client-socket fd,
    crosses into the servlet's domain for the response, formats it for
    the wire and writes it straight to the browser.

    Servlet exceptions propagate *before* any byte is written (the fd is
    closed untouched), so they surface to the master as ordinary LRMI
    error replies and take the in-process error path — 503 for revoked/
    unavailable, 500 otherwise — over the normal marshalled reply.
    """

    def __init__(self, servlet_capability):
        self._servlet = servlet_capability

    def service(self, request, version, keep_alive):
        fd = claim_fd()
        try:
            response = self._servlet.service(request)
            payload = _wire_payload(response, version, keep_alive)
            try:
                nbytes = write_all_fd(fd, payload)
            except StreamWriteError as exc:
                return ("stream-failed", exc.written)
            return ("streamed", nbytes)
        finally:
            try:
                os.close(fd)
            except OSError:
                pass


def _wire_payload(response, version, keep_alive):
    """HTTP bytes for a response carrier: its memoized ``wire_bytes``
    when it has one (sealed ServletResponse), a fresh formatting via the
    shared formatter otherwise."""
    wire = getattr(response, "wire_bytes", None)
    if wire is not None:
        return wire(version, keep_alive)
    from .http import format_response

    return format_response(response, keep_alive, version)
