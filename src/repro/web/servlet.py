"""The servlet API (paper §4).

Servlets customize HTTP request processing for a subset of the server's
URL space; each user servlet runs in its own protection domain and is
reached through a capability.  ``ServletRequest``/``ServletResponse`` are
registered both as fast-copy and serializable classes, so they can cross
domain boundaries under either copy mechanism.

The fields carry primitive type annotations so the transfer layer's
compiled copiers specialize them: ``method``/``path``/``status``/``body``
become direct assignments (fast copy) or inline length-prefixed writes
(serialization), and the headers dict rides the homogeneous
scan-then-copy container path — every servlet request and response
crosses two domain boundaries, so this is the hottest copied data in the
web stack.  Both classes are registered ``acyclic``: a request or
response never participates in wire-level sharing, so the serializer
skips back-reference bookkeeping for them.
"""

from repro.core import Remote, fast_copy, serializable


@fast_copy(fields=("method", "path", "headers", "body"))
@serializable(fields=("method", "path", "headers", "body"), acyclic=True)
class ServletRequest:
    """One HTTP request as seen by a servlet."""

    method: str
    path: str
    headers: dict
    body: bytes

    def __init__(self, method, path, headers=None, body=b""):
        self.method = method
        self.path = path
        self.headers = dict(headers or {})
        self.body = body

    def __repr__(self):
        return f"<ServletRequest {self.method} {self.path}>"


@fast_copy(fields=("status", "headers", "body"))
@serializable(fields=("status", "headers", "body"), acyclic=True)
class ServletResponse:
    """One HTTP response produced by a servlet."""

    status: int
    headers: dict
    body: bytes

    def __init__(self, status=200, headers=None, body=b""):
        self.status = status
        self.headers = dict(headers or {})
        self.body = body

    def __repr__(self):
        return f"<ServletResponse {self.status} ({len(self.body)} bytes)>"


class Servlet(Remote):
    """The remote interface every servlet implements."""

    def service(self, request):
        """Handle one request; returns a ServletResponse."""


def text_response(text, status=200, content_type="text/plain"):
    return ServletResponse(
        status,
        {"Content-Type": content_type},
        text.encode("utf-8") if isinstance(text, str) else text,
    )


def error_response(status, message=""):
    return ServletResponse(
        status, {"Content-Type": "text/plain"},
        (message or f"error {status}").encode("utf-8"),
    )
