"""The servlet API (paper §4).

Servlets customize HTTP request processing for a subset of the server's
URL space; each user servlet runs in its own protection domain and is
reached through a capability.

``ServletRequest``/``ServletResponse`` are *sealed* classes
(``repro.core.sealed``): validated deeply immutable at construction —
exact ``str``/``int``/``bytes`` fields plus a :class:`FrozenMap` of
headers — then frozen, final, and registered to cross domain boundaries
by reference.  Every request and response crosses two boundaries (native
server → system servlet → user servlet and back), so this is the hottest
transferred data in the web stack; sealing moves the cost of isolation
from four deep copies per request to one validation per object, the same
immutability argument the calling convention has always applied to
primitives and the enforced kernel applies to final String classes.
Mutable or cyclic payloads still ride the Table 4 copy machinery — the
body is a ``bytes`` snapshot taken at construction.
"""

import weakref

from repro.core import Remote, register_class
from repro.core import regions as _regions
from repro.core.regions import SealedRegion
from repro.core.sealed import FrozenMap, sealed

from .http import format_response


def _text(value, what):
    if type(value) is str:
        return value
    coerced = str(value)
    if type(coerced) is not str:
        raise TypeError(f"{what} must coerce to exact str")
    return coerced


def _binary(value, what):
    if type(value) is bytes:
        return value
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("utf-8")
    raise TypeError(f"{what} must be bytes-like or str, "
                    f"not {type(value).__name__}")


def _headers(value):
    if type(value) is FrozenMap:
        return value
    return FrozenMap(value or ())


@sealed
class ServletRequest:
    """One HTTP request as seen by a servlet (sealed: immutable)."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method, path, headers=None, body=b""):
        _set = object.__setattr__
        _set(self, "method",
             method if type(method) is str else _text(method, "method"))
        _set(self, "path",
             path if type(path) is str else _text(path, "path"))
        _set(self, "headers",
             headers if type(headers) is FrozenMap else _headers(headers))
        _set(self, "body",
             body if type(body) is bytes else _binary(body, "body"))

    def __repr__(self):
        return f"<ServletRequest {self.method} {self.path}>"


#: Memoized wire forms, keyed by response id with a weakref finalizer
#: evicting the entry when the response dies (the callback runs during
#: deallocation, before the id can be recycled; the identity re-check in
#: ``wire_bytes`` guards the remainder).  Module-private rather than an
#: instance slot: a slot-held dict would hand any code that can read the
#: attribute a mutation handle, and a servlet that poisoned its own
#: response's cached bytes could desynchronize HTTP framing (response
#: splitting) for later requests on the connection.  An id-keyed plain
#: dict beats a WeakKeyDictionary here because the lookup is on the
#: per-request hot path.
_WIRE_MEMO = {}


def _evict_wire(ident):
    _WIRE_MEMO.pop(ident, None)


@sealed
class ServletResponse:
    """One HTTP response produced by a servlet (sealed: immutable)."""

    __slots__ = ("status", "headers", "body", "__weakref__")

    def __init__(self, status=200, headers=None, body=b""):
        if type(status) is not int:
            status = int(status)
        _set = object.__setattr__
        _set(self, "status", status)
        _set(self, "headers",
             headers if type(headers) is FrozenMap else _headers(headers))
        if type(body) is not bytes and type(body) is not SealedRegion:
            body = _binary(body, "body")
        if type(body) is bytes and len(body) >= _regions.SEAL_THRESHOLD:
            # Bulk bodies ride a sealed shared-memory region end to end:
            # across a process boundary the response marshals as a tiny
            # generation-checked grant instead of its bytes (the LRMI
            # side table), and in-process the region crosses by
            # reference like any sealed value.
            body = SealedRegion.seal(body)
        _set(self, "body", body)

    def wire_bytes(self, version="HTTP/1.0", keep_alive=False):
        """Formatted response bytes, memoized per (version, keep-alive).

        A sealed response is immutable, so its wire form is a pure
        function of the transport flags: memoizing it is unobservable
        derived state, the same pattern as str's cached hash.  Servlets
        that keep one response object per static page (see the Table 5
        ``DocServlet``) thereby amortize formatting across every request,
        like the native server's own response cache.
        """
        ident = id(self)
        entry = _WIRE_MEMO.get(ident)
        if entry is None or entry[0]() is not self:
            anchor = weakref.ref(
                self, lambda _ref, _ident=ident: _evict_wire(_ident)
            )
            entry = _WIRE_MEMO[ident] = (anchor, {})
        wire = entry[1]
        key = (version, keep_alive)
        cached = wire.get(key)
        if cached is None:
            cached = wire[key] = format_response(self, keep_alive, version)
        return cached

    def __repr__(self):
        return f"<ServletResponse {self.status} ({len(self.body)} bytes)>"


# Wire forms for the cross-process servlet tier (``repro.ipc.lrmi``):
# in-process crossings keep the sealed by-reference fast path; over a
# process boundary the carriers byte-encode through the compiled
# serializer and the sealing constructors re-validate them on arrival.
register_class(ServletRequest, name="repro.web.ServletRequest",
               fields=("method", "path", "headers", "body"),
               rebuild=ServletRequest)
register_class(ServletResponse, name="repro.web.ServletResponse",
               fields=("status", "headers", "body"),
               rebuild=ServletResponse)


class Servlet(Remote):
    """The remote interface every servlet implements."""

    def service(self, request):
        """Handle one request; returns a ServletResponse."""


def text_response(text, status=200, content_type="text/plain"):
    return ServletResponse(
        status,
        {"Content-Type": content_type},
        text.encode("utf-8") if isinstance(text, str) else text,
    )


def error_response(status, message="", headers=None):
    merged = {"Content-Type": "text/plain"}
    if headers:
        merged.update(headers)
    return ServletResponse(
        status, merged,
        (message or f"error {status}").encode("utf-8"),
    )
