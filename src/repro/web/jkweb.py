"""The extensible J-Kernel web server (paper §4).

"The HTTP system servlet forwards each request to the appropriate user
servlet, each of which runs in its own J-Kernel domain."

Structure::

    NativeHttpServer ──(extension hook)── IsapiBridge
        └── LRMI #1 ──> SystemServlet   (domain "http-system")
                └── LRMI #2 ──> user servlet (one domain per servlet)

Servlets are installed, replaced and terminated at run time without
restarting the server — the failure-isolation story the CS314 servlets
motivated: a crashing servlet produces a 500 for its own URLs and nothing
else, and replacing a servlet terminates its domain (revoking its
capabilities) before the replacement goes live.
"""

from __future__ import annotations

import threading

from repro.core import (
    Capability,
    Domain,
    RemoteException,
    RevokedException,
)

from .httpd import NativeHttpServer
from .isapi import IsapiBridge
from .servlet import Servlet, ServletResponse, error_response


class SystemServlet(Servlet):
    """Routes requests to user-servlet capabilities by URL prefix."""

    def __init__(self):
        self._lock = threading.Lock()
        self._routes = []  # (prefix, capability) longest prefix first

    # -- admin (host-side API, not reachable through capabilities) --------------
    def add_route(self, prefix, capability):
        with self._lock:
            self._routes = [
                entry for entry in self._routes if entry[0] != prefix
            ]
            self._routes.append((prefix, capability))
            self._routes.sort(key=lambda entry: -len(entry[0]))

    def remove_route(self, prefix):
        with self._lock:
            removed = [c for p, c in self._routes if p == prefix]
            self._routes = [
                entry for entry in self._routes if entry[0] != prefix
            ]
        return removed[0] if removed else None

    def routes(self):
        with self._lock:
            return [prefix for prefix, _ in self._routes]

    # -- the remote method ---------------------------------------------------------
    def service(self, request):
        with self._lock:
            routes = list(self._routes)
        for prefix, capability in routes:
            if request.path.startswith(prefix):
                try:
                    return capability.service(request)
                except RevokedException:
                    return error_response(
                        503, f"servlet for {prefix} was terminated"
                    )
                except RemoteException as exc:
                    return error_response(500, f"servlet failed: {exc}")
                except Exception as exc:
                    return error_response(500, f"servlet error: {exc!r}")
        return error_response(404, f"no servlet for {request.path}")


class ServletRegistration:
    """Book-keeping for one installed servlet."""

    def __init__(self, prefix, domain, capability):
        self.prefix = prefix
        self.domain = domain
        self.capability = capability


class JKernelWebServer:
    """IIS + ISAPI bridge + system servlet + per-servlet domains."""

    def __init__(self, server=None, mount="/servlet"):
        self.server = server or NativeHttpServer()
        self.mount = mount
        self.system_domain = Domain("http-system")
        self._system = SystemServlet()
        self.system_capability = self.system_domain.run(
            lambda: Capability.create(self._system, label="system-servlet")
        )
        self.bridge = IsapiBridge(self.system_capability, strip_prefix=mount)
        self.server.add_extension(mount, self.bridge.handle)
        self._registrations = {}
        self._lock = threading.Lock()

    # -- servlet lifecycle --------------------------------------------------
    def install_servlet(self, prefix, servlet_factory, domain_name=None,
                        copy="auto"):
        """Create a domain, instantiate the servlet inside it, route it."""
        name = domain_name or f"servlet{prefix.replace('/', '-')}"
        domain = Domain(name)

        def build():
            servlet = servlet_factory()
            if not isinstance(servlet, Servlet):
                raise TypeError(
                    f"{type(servlet).__name__} does not implement Servlet"
                )
            return Capability.create(servlet, copy=copy, label=name)

        capability = domain.run(build)
        registration = ServletRegistration(prefix, domain, capability)
        with self._lock:
            old = self._registrations.get(prefix)
            self._registrations[prefix] = registration
        self._system.add_route(prefix, capability)
        if old is not None:
            old.domain.terminate()
        return registration

    def install_source(self, prefix, source, servlet_class_name="servlet",
                       domain_name=None, grants=None):
        """Upload servlet *source code* into a fresh domain (the paper's
        "users … dynamically extend the functionality of the server by
        uploading Java programs").

        The source runs in the domain's restricted namespace and must
        define ``servlet_class_name`` (a Servlet subclass or factory).
        """
        name = domain_name or f"servlet{prefix.replace('/', '-')}"
        domain = Domain(name)
        resolver = domain.resolver
        resolver.grant("Servlet", Servlet)
        resolver.grant("ServletResponse", ServletResponse)
        for grant_name, value in (grants or {}).items():
            resolver.grant(grant_name, value)
        module = domain.load_module(f"upload:{prefix}", source)
        factory = getattr(module, servlet_class_name)

        def build():
            servlet = factory()
            return Capability.create(servlet, label=name)

        capability = domain.run(build)
        registration = ServletRegistration(prefix, domain, capability)
        with self._lock:
            old = self._registrations.get(prefix)
            self._registrations[prefix] = registration
        self._system.add_route(prefix, capability)
        if old is not None:
            old.domain.terminate()
        return registration

    def replace_servlet(self, prefix, servlet_factory, domain_name=None):
        """Hot-replace: the old domain terminates, the new one takes over
        without restarting the server (the chart-component story of §1)."""
        return self.install_servlet(prefix, servlet_factory,
                                    domain_name=domain_name)

    def terminate_servlet(self, prefix):
        """Kill a servlet: unroute it and terminate its domain."""
        with self._lock:
            registration = self._registrations.pop(prefix, None)
        self._system.remove_route(prefix)
        if registration is not None:
            registration.domain.terminate()
        return registration

    def registrations(self):
        with self._lock:
            return dict(self._registrations)

    # -- server control ----------------------------------------------------------
    def start(self):
        self.server.start()
        return self

    def stop(self):
        self.server.stop()
        with self._lock:
            registrations = list(self._registrations.values())
        for registration in registrations:
            registration.domain.terminate()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
