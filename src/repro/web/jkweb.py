"""The extensible J-Kernel web server (paper §4).

"The HTTP system servlet forwards each request to the appropriate user
servlet, each of which runs in its own J-Kernel domain."

Structure (default, the paper's architecture — the bridge reaches the
trusted system servlet by a plain call, the JNI analogue; pass
``system_lrmi=True`` for the seed's stricter model where that hop is a
full LRMI too)::

    NativeHttpServer ──(extension hook)── IsapiBridge
        └── trusted call ──> SystemServlet   (domain "http-system")
                └── LRMI ──> user servlet (one domain per servlet)

Servlets are installed, replaced and terminated at run time without
restarting the server — the failure-isolation story the CS314 servlets
motivated: a crashing servlet produces a 500 for its own URLs and nothing
else.  Replacement and termination are *graceful* under traffic: the
route swap is atomic (an immutable snapshot), requests already inside the
old servlet drain to completion before its domain is terminated, and a
request that races the drain window is answered 503 rather than crossing
into a dying domain.  Every request a servlet services is charged to its
domain's resource account (``repro.core.accounting``), so per-domain
traffic reconciles against client-side counts.
"""

from __future__ import annotations

import math
import threading
import time

from repro.core import (
    AccessDeniedError,
    Capability,
    Domain,
    DomainUnavailableException,
    RemoteException,
    RevokedException,
    get_accountant,
)
from repro.core.accounting import ShardedCounter
from repro.core.quota import QuotaManager

from . import streaming
from .control import AdmissionController
from .httpd import NativeHttpServer
from .isapi import IsapiBridge
from .servlet import Servlet, ServletResponse, error_response


class _Route:
    """One routing-table entry (immutable once published)."""

    __slots__ = ("prefix", "capability", "registration")

    def __init__(self, prefix, capability, registration):
        self.prefix = prefix
        self.capability = capability
        self.registration = registration


class SystemServlet(Servlet):
    """Routes requests to user-servlet capabilities by URL prefix.

    The routing table is an immutable tuple swapped under a lock on
    mutation and read lock-free on the request path (a single attribute
    load publishes the whole snapshot).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._routes = ()  # _Route entries, longest prefix first
        self._exact = {}   # prefix -> route: exact-path fast lookup

    # -- admin (host-side API, not reachable through capabilities) ---------
    def add_route(self, prefix, capability, registration=None):
        with self._lock:
            entries = [r for r in self._routes if r.prefix != prefix]
            entries.append(_Route(prefix, capability, registration))
            entries.sort(key=lambda route: -len(route.prefix))
            self._routes = tuple(entries)
            self._exact = {route.prefix: route for route in self._routes}

    def remove_route(self, prefix, expected_registration=None):
        """Unroute ``prefix``.  With ``expected_registration`` the route
        is only removed while it still belongs to that registration —
        a terminate racing a fresh install must not unroute the
        replacement."""
        with self._lock:
            matched = [r for r in self._routes if r.prefix == prefix]
            if expected_registration is not None and not any(
                r.registration is expected_registration for r in matched
            ):
                return None
            self._routes = tuple(
                r for r in self._routes if r.prefix != prefix
            )
            self._exact = {route.prefix: route for route in self._routes}
        return matched[0].capability if matched else None

    def routes(self):
        return [route.prefix for route in self._routes]

    # -- the remote method -------------------------------------------------
    def service(self, request):
        path = request.path
        # Exact-prefix hit (one dict probe) before the longest-prefix scan.
        route = self._exact.get(path)
        if route is not None:
            return self._serve(route, request)
        for route in self._routes:
            if path.startswith(route.prefix):
                return self._serve(route, request)
        return error_response(404, f"no servlet for {request.path}")

    @classmethod
    def _serve(cls, route, request):
        registration = route.registration
        if registration is not None and registration.draining:
            return error_response(
                503, f"servlet for {route.prefix} is draining"
            )
        return cls._invoke(route, request)

    @staticmethod
    def _invoke(route, request):
        registration = route.registration
        # Service time is charged as CPU ticks only for quota-armed
        # servlets, so unmetered routes (the Table 5 path) pay nothing.
        timed = (registration is not None
                 and getattr(registration, "quota", None) is not None)
        start = time.perf_counter() if timed else 0.0
        try:
            response = route.capability.service(request)
        except AccessDeniedError as exc:
            # A stack-based permission check failed inside the servlet's
            # restricted domain: the client's request asked for something
            # the operator never granted — Forbidden, not a server error.
            return error_response(403, f"access denied: {exc}")
        except RevokedException:
            return error_response(
                503, f"servlet for {route.prefix} was terminated"
            )
        except DomainUnavailableException as exc:
            # The servlet's host process is (momentarily) gone — a
            # retryable condition, unlike a revoked capability's
            # permanent one: the supervisor is already respawning it.
            # A fleet failover says how long (FleetUnavailableError
            # carries the coordinator's blackout estimate); surface it
            # as Retry-After so clients pace their rebind.  RFC 9110
            # allows only integer delay-seconds, so round up.
            retry_after = getattr(exc, "retry_after", None)
            return error_response(
                503, f"servlet for {route.prefix} is unavailable",
                headers=({"Retry-After":
                          str(max(1, math.ceil(retry_after)))}
                         if retry_after is not None else None),
            )
        except RemoteException as exc:
            return error_response(500, f"servlet failed: {exc}")
        except Exception as exc:
            return error_response(500, f"servlet error: {exc!r}")
        if registration is not None:
            # Charged only when the servlet produced the response itself —
            # exactly the population a well-behaved client can count.
            registration.charge_request()
            if timed:
                registration.charge_cpu(
                    (time.perf_counter() - start) * 1e6
                )
        return response


class ServletRegistration:
    """Book-keeping for one installed servlet: its domain, capability,
    the draining flag used for graceful retirement, and the domain's
    resource account (per-request charges land there).

    In-flight tracking costs nothing on the request path: every LRMI
    into the domain registers a thread segment for its duration (that
    is how ``Domain.terminate`` finds victims), so drain just watches
    ``Domain.in_flight_calls()`` fall to zero.
    """

    #: Consecutive idle observations (at _IDLE_POLL_S spacing) required
    #: before a drain believes the domain is quiescent — together a
    #: ~10 ms continuous-idle window, wider than routine GIL/scheduler
    #: preemption gaps, covering the lag between a request passing the
    #: draining-flag check and its segment registration.
    _IDLE_CONFIRMATIONS = 5
    _IDLE_POLL_S = 0.002

    def __init__(self, prefix, domain, capability):
        self.prefix = prefix
        self.domain = domain
        self.capability = capability
        self.account = get_accountant().account(domain)
        self._draining = False
        # Armed by the web server when the prefix has a QuotaSpec.
        self.quota = None
        self.quota_key = None

    @property
    def in_flight(self):
        """LRMI calls currently executing inside the servlet's domain."""
        return self.domain.in_flight_calls()

    @property
    def draining(self):
        return self._draining

    def charge_request(self):
        self.account.charge_request()
        if self.quota is not None:
            self.quota.charge_request(self.quota_key)

    def charge_cpu(self, ticks):
        if self.quota is not None:
            self.quota.charge_cpu(self.quota_key, ticks)

    def retire(self, timeout=5.0):
        """Full graceful teardown: drain, terminate the domain, close
        its resource account (the charges were this incarnation's; a
        replacement domain starts a fresh account)."""
        drained = self.drain(timeout)
        self.domain.terminate()
        get_accountant().release_domain(self.domain)
        return drained

    def drain(self, timeout=5.0):
        """Stop admitting requests, wait for in-flight ones to finish.

        Returns True when the servlet went idle within the timeout.  A
        request that read the draining flag just before it flipped may
        slip past an idle-looking registry; the consecutive-idle
        confirmation window catches the common interleavings, and the
        residual race resolves through the LRMI revocation check to a
        clean 503 — the window the issue's "new ones get 503" allows —
        never through a dying domain's shared state.
        """
        self._draining = True
        deadline = time.monotonic() + timeout
        idle_streak = 0
        while idle_streak < self._IDLE_CONFIRMATIONS:
            if self.domain.in_flight_calls() == 0:
                idle_streak += 1
            else:
                idle_streak = 0
                if time.monotonic() >= deadline:
                    return False
            time.sleep(self._IDLE_POLL_S)
        return True


class _OutOfProcessGateway:
    """The stable routing target for one out-of-process servlet.

    The routing table holds this object (not the proxy), so a host
    respawn swaps the underlying proxy without republishing the route.
    In-flight tracking mirrors the in-process segment registration: the
    drain logic watches the counter instead of domain segments.
    """

    __slots__ = ("_registration",)

    def __init__(self, registration):
        self._registration = registration

    def service(self, request):
        registration = self._registration
        registration._in_flight.add(1)
        try:
            offer = streaming.claim()
            if offer is not None and registration.stream_proxy is not None:
                return self._stream(registration, offer, request)
            return registration.proxy.service(request)
        finally:
            registration._in_flight.add(-1)

    @staticmethod
    def _stream(registration, offer, request):
        """Reply streaming: grant the client socket's fd to the domain
        host and let it write the HTTP response directly.

        Failure split on the grant boundary: an error *before*
        ``offer.grant`` ran means the fd never left this process — the
        socket is untouched, so the exception propagates into the system
        servlet's ordinary 503/500 path and a marshalled response goes
        out normally.  An error *after* the grant (host died mid-call,
        partial write) leaves the framing unknowable; the offer is
        failed and the reactor closes the connection without appending.
        """
        with registration._lock:
            # One snapshot: a supervisor respawn swaps client and stream
            # proxy together; reading them piecemeal could pair a fresh
            # client with a dead host's export id.
            client = registration.client
            stream = registration.stream_proxy
        if stream is None:
            return registration.proxy.service(request)
        try:
            result = client.call_streamed(
                stream._export_id, "service",
                (request, offer.version, offer.keep_alive),
                offer.fd, on_grant=offer.grant,
            )
        except (DomainUnavailableException, OSError):
            # Transport-level death after the grant: the host may have
            # written part of a response, so the framing is unknowable.
            if not offer.granted:
                raise
            offer.fail()
            return streaming.STREAMED
        except Exception:
            # A typed exception *reply*: the round trip completed and the
            # host's adapter raises strictly before the first byte (write
            # failures come back as ("stream-failed", n) tuples instead),
            # so the connection framing is intact — retract the grant and
            # propagate into the ordinary error path (403/500/503).
            offer.retract()
            raise
        if (isinstance(result, tuple) and len(result) == 2
                and result[0] == "streamed"):
            offer.complete(result[1])
        else:
            offer.fail()
        return streaming.STREAMED


class OutOfProcessRegistration:
    """Book-keeping for one servlet deployed in a separate OS process
    (the Remote-Playground deployment: untrusted code behind a hard
    process boundary, reached through cross-process LRMI).

    Duck-compatible with :class:`ServletRegistration` where the system
    servlet and web server touch it (``capability``/``draining``/
    ``charge_request``/``retire``), plus a supervisor that respawns the
    host process when it dies — in-flight requests during the outage get
    503s (via :class:`DomainUnavailableException`), never hangs.
    """

    _RESPAWN_POLL_S = 0.05

    def __init__(self, prefix, setup, host, client, proxy, *,
                 supervise=True, max_respawns=8):
        from repro.ipc.lrmi import DomainHostProcess

        self.prefix = prefix
        self.name = f"xproc{prefix.replace('/', '-')}"
        self._setup = setup
        self._host_factory = lambda: DomainHostProcess(
            setup, name=self.name
        ).start()
        self.host = host
        self.client = client
        self.proxy = proxy
        # Reply streaming is an optimization the host may decline (an
        # old host image without the __stream__ binding): the gateway
        # falls back to marshalled replies when this stays None.
        self.stream_proxy = self._lookup_stream(client)
        self._stream_armed = self.stream_proxy is not None
        if self._stream_armed:
            streaming.arm()
        self.account = get_accountant().account(self)
        self.respawns = 0
        self.max_respawns = max_respawns
        self._draining = False
        self._in_flight = ShardedCounter()
        self._monitor = None
        self._lock = threading.Lock()
        # Armed by the web server when the prefix has a QuotaSpec.
        self.quota = None
        self.quota_key = None
        self._reconcile_every = 10  # supervisor polls between stats RPCs
        self._poll_count = 0
        if supervise:
            self._monitor = threading.Thread(
                target=self._supervise, daemon=True,
                name=f"{self.name}-supervisor",
            )
            self._monitor.start()

    @staticmethod
    def _lookup_stream(client):
        try:
            return client.lookup("__stream__")
        except Exception:
            return None

    # -- ServletRegistration duck interface --------------------------------
    @property
    def capability(self):
        return _OutOfProcessGateway(self)

    @property
    def draining(self):
        return self._draining

    @property
    def in_flight(self):
        return self._in_flight.value

    def charge_request(self):
        self.account.charge_request()
        if self.quota is not None:
            self.quota.charge_request(self.quota_key)

    def charge_cpu(self, ticks):
        if self.quota is not None:
            self.quota.charge_cpu(self.quota_key, ticks)

    def remote_stats(self):
        """The host process's own accounting report (reconciliation)."""
        return self.client.stats()

    def reconcile_quota(self):
        """Pull the host's accounting report over the control pipe and
        fold it into the tenant's budget position (summed across the
        host's domains — they all belong to this tenant)."""
        if self.quota is None:
            return None
        report = self.client.stats()
        snapshot = {}
        for account in (report.get("accounts") or {}).values():
            for key, value in account.items():
                snapshot[key] = snapshot.get(key, 0) + value
        return self.quota.reconcile(self.quota_key, snapshot)

    def _fold_quota(self):
        """Retire the last live host report (the host died/stopped);
        the replacement reports from zero without resetting usage."""
        if self.quota is None:
            return
        cell = self.quota.cell(self.quota_key)
        if cell is not None:
            cell.fold_external()

    def drain(self, timeout=5.0):
        self._draining = True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._in_flight.value == 0:
                return True
            time.sleep(0.002)
        return self._in_flight.value == 0

    def retire(self, timeout=5.0):
        drained = self.drain(timeout)
        with self._lock:
            host, client = self.host, self.client
            self.host = None
            self.stream_proxy = None
            if self._stream_armed:
                self._stream_armed = False
                streaming.disarm()
        try:
            client.terminate("servlet")
        except Exception:
            pass  # a dead host has terminated already
        client.close()
        if host is not None:
            host.stop()
        self._fold_quota()
        get_accountant().release_domain(self)
        return drained

    # -- supervision -------------------------------------------------------
    def _supervise(self):
        from repro.ipc.lrmi import connect

        while True:
            time.sleep(self._RESPAWN_POLL_S)
            with self._lock:
                host = self.host
                if self._draining or host is None:
                    return
                if host.alive():
                    self._poll_count += 1
                    if (self.quota is not None
                            and self._poll_count % self._reconcile_every
                            == 0):
                        try:
                            self.reconcile_quota()
                        except Exception:
                            pass  # host mid-crash; the death path folds
                    continue
                # Host is dead: retire its last reported usage so the
                # replacement (reporting from zero) cannot reset the
                # tenant's budget position.
                self._fold_quota()
                if self.respawns >= self.max_respawns:
                    self.host = None
                    return
                # Replace the dead worker: fresh fork, fresh connection,
                # proxy swap.  Requests racing the window keep getting
                # DomainUnavailableException -> 503 from the gateway.
                try:
                    replacement = self._host_factory()
                    client = connect(replacement)
                    proxy = client.lookup("servlet")
                except Exception:
                    self.respawns += 1
                    continue
                old_client = self.client
                old_host = host
                self.host = replacement
                self.client = client
                self.proxy = proxy
                # Fresh host, fresh export table: the old stream proxy's
                # export id means nothing to the replacement.
                self.stream_proxy = self._lookup_stream(client)
                armed = self.stream_proxy is not None
                if armed and not self._stream_armed:
                    streaming.arm()
                elif not armed and self._stream_armed:
                    streaming.disarm()
                self._stream_armed = armed
                self.respawns += 1
                old_client.close()
                # The dead host was reaped by alive(); stop() still
                # unlinks its /tmp socket path so crash-looping servlets
                # cannot litter the temp directory.
                old_host.stop()


class JKernelWebServer:
    """IIS + ISAPI bridge + system servlet + per-servlet domains.

    ``bridge_inline`` controls where servlet requests execute: True (the
    default) runs the bridge on the server's event-loop thread — the §4
    arrangement ("the same thread as IIS uses to invoke the bridge") and
    the configuration Table 5 measures; False routes them through the
    server's domain worker pool so a slow servlet cannot stall a loop.

    ``system_lrmi`` selects the crossing model for bridge → system
    servlet: False (default, the paper's architecture) treats the system
    servlet as trusted kernel code reached by a plain call — the JNI
    analogue — so each request pays exactly one LRMI, into the user
    servlet's domain; True routes the bridge through the system
    capability as well, the seed's stricter double-LRMI accounting.

    ``workers`` sizes the underlying reactor's event-loop pool when no
    ``server`` is supplied (``JKernelWebServer(workers=4)``); for
    multi-*process* serving wrap the construction in
    :class:`~repro.web.prefork.PreforkServer`, which forks one of these
    per worker process.
    """

    def __init__(self, server=None, mount="/servlet", *, workers=None,
                 bridge_inline=True, system_lrmi=False, drain_timeout=5.0,
                 quotas=None, admission=None):
        if server is None:
            server = (NativeHttpServer(workers=workers)
                      if workers is not None else NativeHttpServer())
        self.server = server
        self.mount = mount
        self.drain_timeout = drain_timeout
        # -- fleet control plane -------------------------------------------
        # ``quotas`` is {prefix: QuotaSpec} (or a prebuilt QuotaManager):
        # each installed servlet at a quoted prefix gets a budget cell
        # wired to its resource account, with this server's
        # terminate_servlet as the hard-breach kill path.  Supplying
        # quotas (or ``admission``) arms an AdmissionController on the
        # underlying reactor; with neither, behaviour is exactly PR 5's.
        self.quota = None
        self._quota_specs = {}
        if quotas is not None:
            if isinstance(quotas, QuotaManager):
                self.quota = quotas
            else:
                self.quota = QuotaManager()
                self._quota_specs = dict(quotas)
        self.admission = (admission if admission is not None
                          else getattr(server, "admission", None))
        if self.admission is None and self.quota is not None:
            self.admission = AdmissionController(quota_manager=self.quota)
        if self.admission is not None:
            if self.quota is not None:
                self.admission.attach_quota_manager(self.quota)
            if getattr(server, "admission", None) is None:
                server.admission = self.admission
        self.system_domain = Domain("http-system")
        self._system = SystemServlet()
        self.system_capability = self.system_domain.run(
            lambda: Capability.create(self._system, label="system-servlet")
        )
        self.bridge = IsapiBridge(
            self.system_capability if system_lrmi else self._system,
            strip_prefix=mount,
        )
        self.server.add_extension(mount, self.bridge.handle,
                                  inline=bridge_inline)
        self._registrations = {}
        self._lock = threading.Lock()
        #: (prefix, breached-triple, monotonic) per hard-quota kill.
        self.quota_kills = []

    # -- servlet lifecycle --------------------------------------------------
    def _publish(self, prefix, registration):
        """Swap the new registration in (atomically for new requests),
        then gracefully retire the old one: drain in-flight requests and
        terminate its domain (revoking its capabilities).

        The registration-map and routing-table swaps happen under one
        lock so concurrent installs/replaces on a prefix retire in a
        consistent order — the route a loser publishes can never outlive
        its own drain-and-terminate.  The (potentially slow) drain runs
        outside the lock.
        """
        with self._lock:
            old = self._registrations.get(prefix)
            self._registrations[prefix] = registration
            self._system.add_route(prefix, registration.capability,
                                   registration)
        self._arm_quota(prefix, registration)
        if old is not None:
            old.retire(self.drain_timeout)
        return registration

    def _arm_quota(self, prefix, registration):
        """Give the registration a budget cell when its prefix has a
        spec.  A replacement servlet is a fresh domain with a fresh
        account, so it also starts a fresh budget — mirroring how
        ``release_domain`` closes the old incarnation's account."""
        if self.quota is None:
            return
        spec = self._quota_specs.get(prefix)
        if spec is None:
            cell = self.quota.cell(prefix)
            if cell is None:
                return
            spec = cell.spec
        self.quota.set_quota(prefix, spec, account=registration.account,
                             on_kill=self._quota_kill)
        registration.quota = self.quota
        registration.quota_key = prefix

    def _quota_kill(self, prefix, cell):
        """Hard-breach teardown (runs on the quota reaper thread): the
        same drain → terminate → release path as an administrative
        terminate, so callers see typed errors/503s, never a hang."""
        self.quota_kills.append(
            (prefix, cell.breached, time.monotonic())
        )
        self.terminate_servlet(prefix)

    def set_quota(self, prefix, spec):
        """Set or replace a tenant budget at run time; arms the current
        registration (if any) immediately."""
        if self.quota is None:
            self.quota = QuotaManager()
            if self.admission is None:
                self.admission = AdmissionController(
                    quota_manager=self.quota
                )
                if getattr(self.server, "admission", None) is None:
                    self.server.admission = self.admission
            else:
                self.admission.attach_quota_manager(self.quota)
        self._quota_specs[prefix] = spec
        with self._lock:
            registration = self._registrations.get(prefix)
        if registration is not None:
            self._arm_quota(prefix, registration)
        return self

    def install_servlet(self, prefix, servlet_factory, domain_name=None,
                        copy="auto", policy=None):
        """Create a domain, instantiate the servlet inside it, route it.

        ``policy`` restricts the servlet's domain to a permission set
        (``repro.core.policy``): guarded capabilities it calls — and any
        explicit ``check_permission`` on its call chain — deny with 403
        unless the set implies the demanded permission.  ``None`` (the
        default) leaves the domain unrestricted, exactly as before.
        """
        name = domain_name or f"servlet{prefix.replace('/', '-')}"
        domain = Domain(name)
        if policy is not None:
            domain.set_policy(policy)

        def build():
            servlet = servlet_factory()
            if not isinstance(servlet, Servlet):
                raise TypeError(
                    f"{type(servlet).__name__} does not implement Servlet"
                )
            return Capability.create(servlet, copy=copy, label=name)

        capability = domain.run(build)
        return self._publish(
            prefix, ServletRegistration(prefix, domain, capability)
        )

    def install_source(self, prefix, source, servlet_class_name="servlet",
                       domain_name=None, grants=None, policy=None):
        """Upload servlet *source code* into a fresh domain (the paper's
        "users … dynamically extend the functionality of the server by
        uploading Java programs").

        The source runs in the domain's restricted namespace and must
        define ``servlet_class_name`` (a Servlet subclass or factory).

        ``policy`` restricts the domain like :meth:`install_servlet`;
        the special value ``"generate"`` runs the static policy
        generator (``repro.toolchain.policygen``) over the uploaded
        source and installs the least-privilege proposal — the union of
        the guards on exactly those ``grants`` the source references.
        """
        name = domain_name or f"servlet{prefix.replace('/', '-')}"
        domain = Domain(name)
        if policy == "generate":
            from repro.toolchain.policygen import propose_policy_source

            policy = propose_policy_source(source, grants,
                                           filename=f"upload:{prefix}")
        if policy is not None:
            domain.set_policy(policy)
        resolver = domain.resolver
        resolver.grant("Servlet", Servlet)
        resolver.grant("ServletResponse", ServletResponse)
        for grant_name, value in (grants or {}).items():
            resolver.grant(grant_name, value)
        module = domain.load_module(f"upload:{prefix}", source)
        factory = getattr(module, servlet_class_name)

        def build():
            servlet = factory()
            return Capability.create(servlet, label=name)

        capability = domain.run(build)
        return self._publish(
            prefix, ServletRegistration(prefix, domain, capability)
        )

    def install_servlet_out_of_process(self, prefix, servlet_factory,
                                       domain_name=None, *, supervise=True,
                                       max_respawns=8, policy=None):
        """Deploy a servlet in its own OS *process* (Remote-Playground
        style): the servlet's domain lives in a forked domain host, and
        its capability here is a cross-process LRMI proxy — requests
        marshal through the compiled serializer over a UNIX socket while
        trusted/system crossings stay on the in-process fast path.

        ``servlet_factory`` runs in the child after fork (closures are
        fine).  With ``supervise=True`` a monitor thread respawns the
        host if it dies; requests racing the outage are answered 503.
        ``policy`` restricts the servlet's domain *inside the host
        process* (and again after every respawn) — its restricted
        context rides the LRMI wire, so guarded capabilities back in
        this process still deny; the typed error marshals home as a 403.
        """
        from repro.ipc.lrmi import DomainHostProcess, connect

        name = domain_name or f"servlet{prefix.replace('/', '-')}"

        def setup():
            from .streaming import ReplyStreamAdapter

            domain = Domain(name)
            if policy is not None:
                domain.set_policy(policy)

            def build():
                servlet = servlet_factory()
                if not isinstance(servlet, Servlet):
                    raise TypeError(
                        f"{type(servlet).__name__} does not implement "
                        "Servlet"
                    )
                return Capability.create(servlet, label=name)

            servlet_cap = domain.run(build)
            # Reply-streaming terminus: trusted host plumbing, so its
            # capability lives in the host's *system* domain — each
            # streamed request still crosses into the servlet's domain
            # exactly once (through servlet_cap), keeping the domain's
            # LRMI accounting identical to the marshalled-reply path.
            stream_cap = Capability.create(
                ReplyStreamAdapter(servlet_cap), label=f"{name}-stream"
            )
            return {"servlet": servlet_cap, "__stream__": stream_cap}

        host = DomainHostProcess(setup, name=name).start()
        client = connect(host)
        proxy = client.lookup("servlet")
        registration = OutOfProcessRegistration(
            prefix, setup, host, client, proxy,
            supervise=supervise, max_respawns=max_respawns,
        )
        return self._publish(prefix, registration)

    def replace_servlet(self, prefix, servlet_factory, domain_name=None):
        """Hot-replace: new requests go to the replacement the moment its
        route is published; the old domain drains, then terminates —
        without restarting the server (the chart-component story of §1)."""
        return self.install_servlet(prefix, servlet_factory,
                                    domain_name=domain_name)

    def terminate_servlet(self, prefix):
        """Kill a servlet: unroute it (new arrivals see 404), drain
        in-flight requests, terminate its domain.  The conditional
        remove means a terminate racing a fresh install/replace never
        unroutes the replacement."""
        with self._lock:
            registration = self._registrations.pop(prefix, None)
            self._system.remove_route(
                prefix, expected_registration=registration
            )
        if registration is not None:
            registration.retire(self.drain_timeout)
        return registration

    def registrations(self):
        with self._lock:
            return dict(self._registrations)

    # -- server control ----------------------------------------------------
    def start(self, listener=None):
        self.server.start(listener)
        return self

    def stop_accepting(self):
        """Prefork drain phase 1: delegate to the reactor."""
        self.server.stop_accepting()

    def drain(self, timeout=5.0):
        """Stop accepting and wait for live connections to finish."""
        return self.server.drain(timeout)

    def live_connections(self):
        return self.server.live_connections()

    @property
    def requests_served(self):
        return self.server.requests_served

    @property
    def port(self):
        return self.server.port

    def stats(self):
        snapshot = self.server.stats()
        if self.quota is not None:
            snapshot["quotas"] = self.quota.report()
        return snapshot

    def stop(self):
        self.server.stop()
        with self._lock:
            registrations = list(self._registrations.values())
            self._registrations.clear()
        for registration in registrations:
            registration.retire(self.drain_timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
