"""The native HTTP server (the IIS analogue of §4 / Table 5).

Event-driven reactor edition.  A single acceptor thread feeds N
selector-based worker event loops through bounded hand-off queues (real
backpressure: when every loop's queue is full the acceptor stops
accepting and lets the kernel backlog absorb the burst).  Each loop runs
non-blocking sockets through an incremental HTTP/1.1 parser with
keep-alive and pipelining, pausing reads on any connection whose
pipeline, parse buffer or write buffer exceeds its bound.

Documents (the NT file-cache analogue) are served on the loop itself
from a per-loop LRU cache of preformatted response bytes, invalidated by
the document store's generation counter.  *Extension* handlers
registered under URL prefixes intercept matching requests — exactly the
role ISAPI extensions play for IIS; the J-Kernel attaches through such
an extension (``repro.web.isapi``).  An extension runs either inline on
the loop thread ("it allows the Java code to run in the same thread as
IIS uses to invoke the bridge", §4) or on a bounded domain worker pool
that keeps a slow handler from stalling the loop; when the pool is
saturated the request is answered 503 instead of queueing unboundedly.

Every shared counter is a :class:`~repro.core.accounting.ShardedCounter`
(the seed's bare ``requests_served += 1`` lost updates under concurrent
connections).
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import OrderedDict, deque

from repro.core.accounting import ShardedCounter

from .http import HttpError, RequestParser, Response, format_response
from . import streaming as _streaming

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE

_RECV_SIZE = 65536

#: Sentinel from accept_next: the listener is done, stop accepting.
ACCEPT_STOP = object()


def make_listener(host, port, *, reuse_port=False, backlog=128,
                  timeout=0.2):
    """A bound, listening TCP socket ready for an accept loop.

    ``reuse_port=True`` sets ``SO_REUSEPORT`` so several processes can
    bind the same port and let the kernel spread connections across them
    (the prefork tier's primary mode); it raises ``OSError`` on platforms
    without the option, letting callers fall back to sharing one
    inherited listener fd across forks instead.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise OSError("SO_REUSEPORT is not available")
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(backlog)
        if timeout is not None:
            sock.settimeout(timeout)
    except BaseException:
        sock.close()
        raise
    return sock


def accept_next(listener, is_running):
    """One accept attempt with transient-error retry semantics.

    Returns the accepted socket, None to poll again (timeout or a
    transient error such as ECONNABORTED/EMFILE), or :data:`ACCEPT_STOP`
    when shutdown/listener closure ends the accept loop.  Shared by the
    reactor's and JWS's acceptor threads so the retry policy cannot
    drift between them."""
    try:
        sock, _ = listener.accept()
        return sock
    except socket.timeout:
        return None
    except OSError:
        if not is_running() or listener.fileno() == -1:
            return ACCEPT_STOP
        time.sleep(0.01)
        return None


class DocumentStore:
    """In-memory documents served on the fast path.

    Every mutation bumps the store-wide ``generation`` and stamps the
    touched path with it; response caches tag entries with the *path's*
    stamp (``version(path)``) and treat any mismatch as a miss — so a
    ``put`` is visible on the next request without cross-thread
    invalidation calls, and mutating one document never invalidates the
    cached responses of any other.
    """

    def __init__(self):
        self._documents = {}
        self._versions = {}
        self._lock = threading.Lock()
        self.generation = 0

    def put(self, path, body, content_type="text/html"):
        if isinstance(body, str):
            body = body.encode("utf-8")
        # The bump is locked: a lost generation increment (the classic
        # read-modify-write race) would let caches serve stale entries
        # as fresh forever.  Reads stay lock-free (single dict probes).
        with self._lock:
            self._documents[path] = (body, content_type)
            self.generation += 1
            self._versions[path] = self.generation
        return self

    def remove(self, path):
        with self._lock:
            removed = self._documents.pop(path, None)
            if removed is not None:
                self.generation += 1
                self._versions[path] = self.generation
        return removed

    def get(self, path):
        return self._documents.get(path)

    def version(self, path):
        """The path's last-mutation stamp (0 for never-touched paths)."""
        return self._versions.get(path, 0)

    def paths(self):
        return sorted(self._documents)


class ResponseCache:
    """LRU of preformatted document responses.

    Keyed by ``(path, version, keep_alive)`` so the cached bytes carry
    the right status line and Connection header.  One instance per event
    loop: single-threaded access, no lock.  Entries are tagged with the
    document's per-path version stamp; stale entries read as misses.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses")

    def __init__(self, capacity=256):
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key, generation):
        entry = self._entries.get(key)
        if entry is None or entry[0] != generation:
            if entry is not None:
                del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[1]

    def put(self, key, generation, payload):
        entries = self._entries
        entries[key] = (generation, payload)
        entries.move_to_end(key)
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    def __len__(self):
        return len(self._entries)


#: Response carrier types _safe_handle has vetted (status/headers/body
#: protocol): one set probe on the hot path instead of three hasattrs.
KNOWN_RESPONSE_TYPES = {Response}


def _safe_handle(handler, request):
    """Run one extension handler; failures become 500s, never raises.

    Handlers may return :class:`~repro.web.http.Response` or any
    duck-compatible carrier with ``status``/``headers``/``body`` (e.g. a
    sealed ``ServletResponse``, whose memoized ``wire_bytes`` the
    dispatcher then uses instead of re-formatting).
    """
    try:
        response = handler(request)
    except Exception as exc:
        return Response(
            500, {"Content-Type": "text/plain"},
            f"extension error: {exc!r}".encode("utf-8"),
        )
    if type(response) in KNOWN_RESPONSE_TYPES:
        return response
    if isinstance(response, Response) or (
        hasattr(response, "status") and hasattr(response, "headers")
        and hasattr(response, "body")
    ):
        if len(KNOWN_RESPONSE_TYPES) < 64:  # bounded trust cache
            KNOWN_RESPONSE_TYPES.add(type(response))
        return response
    return Response(
        500, {"Content-Type": "text/plain"},
        f"extension returned {type(response).__name__}".encode("utf-8"),
    )


def _format_payload(response, keep_alive, version):
    """Wire bytes for one response: the carrier's memoized form when it
    has one, a fresh formatting otherwise.

    Never raises: a response whose headers/body cannot be formatted
    (non-latin-1 header values, duck-typed carriers with broken
    protocols) degrades to a 500 instead of killing the calling loop or
    pool thread — the reactor equivalent of the seed losing only the
    one connection.
    """
    try:
        wire = getattr(response, "wire_bytes", None)
        payload = (wire(version, keep_alive) if wire is not None
                   else format_response(response, keep_alive, version))
        if type(payload) is bytes:
            return payload
    except Exception:
        pass
    return format_response(
        Response(500, {"Content-Type": "text/plain"},
                 b"response formatting failed"),
        keep_alive, version,
    )


class _PoolTask:
    """One pooled extension invocation: runs the handler, formats the
    response off-loop, posts the bytes back to the owning event loop."""

    __slots__ = ("loop", "conn", "slot", "handler", "request")

    def __init__(self, loop, conn, slot, handler, request):
        self.loop = loop
        self.conn = conn
        self.slot = slot
        self.handler = handler
        self.request = request

    def __call__(self):
        response = _safe_handle(self.handler, self.request)
        payload = _format_payload(
            response, not self.slot.close_after, self.slot.version
        )
        self.loop.post(("complete", self.conn, self.slot, payload))


class DomainWorkerPool:
    """Bounded thread pool executing extension handlers off the loops.

    ``submit`` refuses (returns False) when the queue is at capacity or
    the pool is stopped — the caller answers 503, so a stuck servlet
    cannot queue work unboundedly.
    """

    def __init__(self, workers=2, capacity=128, name="httpd-pool"):
        self.workers = workers
        self.capacity = capacity
        self.name = name
        self._queue = deque()
        self._not_empty = threading.Condition(threading.Lock())
        self._threads = []
        self._running = False
        self.submitted = ShardedCounter()
        self.rejected = ShardedCounter()
        self.completed = ShardedCounter()

    def start(self):
        with self._not_empty:
            if self._running:
                return self
            self._running = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._run, name=f"{self.name}-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()
        return self

    @property
    def running(self):
        return self._running

    def submit(self, task):
        with self._not_empty:
            if not self._running or len(self._queue) >= self.capacity:
                self.rejected.add(1)
                return False
            self._queue.append(task)
            self._not_empty.notify()
        self.submitted.add(1)
        return True

    def _run(self):
        while True:
            with self._not_empty:
                while self._running and not self._queue:
                    self._not_empty.wait(0.5)
                if not self._queue:
                    if not self._running:
                        return
                    continue
                task = self._queue.popleft()
            try:
                task()
            except Exception:
                # A task failure must not kill the worker: the pool
                # would shrink one crash at a time until every pooled
                # request got 503.  (_PoolTask already degrades handler
                # and formatting errors to 500 responses itself.)
                pass
            self.completed.add(1)

    def stop(self, timeout=5.0):
        with self._not_empty:
            self._running = False
            self._queue.clear()
            self._not_empty.notify_all()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def stats(self):
        return {
            "submitted": self.submitted.value,
            "completed": self.completed.value,
            "rejected": self.rejected.value,
        }


class _Slot:
    """One pipelined response slot: requests are answered strictly in
    arrival order, so each request reserves a slot at dispatch and the
    flusher only emits the completed prefix."""

    __slots__ = ("payload", "ready", "close_after", "version", "tenant",
                 "t_start")

    def __init__(self, close_after, version):
        self.payload = b""
        self.ready = False
        self.close_after = close_after
        self.version = version
        # Admission bookkeeping: the tenant key holding one in-flight
        # unit until this slot is ready (None for shed/unadmitted work).
        self.tenant = None
        self.t_start = 0.0


class _Connection:
    """Per-socket reactor state (owned by exactly one event loop)."""

    __slots__ = ("sock", "parser", "pending", "out", "mask", "read_closed",
                 "close_after_flush", "stop_dispatch", "closed",
                 "last_activity", "reaped")

    def __init__(self, sock, parser):
        self.sock = sock
        self.parser = parser
        self.pending = deque()
        self.out = bytearray()
        self.mask = 0
        self.read_closed = False
        self.close_after_flush = False
        self.stop_dispatch = False
        self.closed = False
        self.last_activity = time.monotonic()
        self.reaped = False


class _EventLoop(threading.Thread):
    """One selector-driven worker loop.

    Cross-thread input arrives through ``post``/``offer`` (a deque plus a
    wakeup socketpair; the wake byte is only written on the empty→
    non-empty transition, so completions batch under load).  Everything
    else — parsing, dispatch, response ordering, socket writes — happens
    on this thread only.
    """

    def __init__(self, server, index):
        super().__init__(name=f"httpd-loop-{index}", daemon=True)
        self.server = server
        self.selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self.selector.register(self._wake_r, _READ, None)
        self._inbox = deque()
        self._inbox_lock = threading.Lock()
        self.connections = set()
        self.cache = ResponseCache(server.cache_size)
        self._running = True
        self._served_cell = None

    # -- cross-thread input -------------------------------------------------
    def post(self, item):
        with self._inbox_lock:
            if not self._running:
                return False
            was_empty = not self._inbox
            self._inbox.append(item)
        if was_empty:
            self._wake()
        return True

    def offer(self, sock):
        """Adopt a new connection unless the hand-off queue is full
        (the acceptor's backpressure signal)."""
        with self._inbox_lock:
            if not self._running:
                return False
            if len(self._inbox) >= self.server.accept_queue_limit:
                return False
            was_empty = not self._inbox
            self._inbox.append(("adopt", sock))
        if was_empty:
            self._wake()
        return True

    def load(self):
        return len(self.connections) + len(self._inbox)

    def shutdown(self):
        with self._inbox_lock:
            self._running = False
        self._wake()

    def _wake(self):
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass

    # -- the loop -----------------------------------------------------------
    def run(self):
        self._served_cell = self.server._served.cell()
        selector = self.selector
        last_sweep = time.monotonic()
        while self._running:
            try:
                events = selector.select(0.25)
            except OSError:
                break
            now = time.monotonic()
            if now - last_sweep >= 1.0:
                last_sweep = now
                self._sweep_idle(now)
            for key, mask in events:
                conn = key.data
                if conn is None:
                    self._drain_wake()
                    continue
                # A bug anywhere in per-connection handling costs that
                # connection, never the loop — a dead loop would strand
                # every connection it owns and blackhole new ones.
                try:
                    if mask & _READ and not conn.closed:
                        self._on_readable(conn)
                    if mask & _WRITE and not conn.closed:
                        self._on_writable(conn)
                except Exception:
                    self._close(conn)
            self._drain_inbox()
        self._cleanup()

    def _drain_wake(self):
        try:
            while self._wake_r.recv(4096):
                pass
        except OSError:
            pass

    def _drain_inbox(self):
        while True:
            with self._inbox_lock:
                if not self._inbox:
                    return
                items = list(self._inbox)
                self._inbox.clear()
            for item in items:
                kind = item[0]
                if kind == "adopt":
                    try:
                        self._adopt(item[1])
                    except Exception:
                        try:
                            item[1].close()
                        except OSError:
                            pass
                elif kind == "complete":
                    _, conn, slot, payload = item
                    slot.payload = payload
                    slot.ready = True
                    # Release the admission unit even for a connection
                    # that died while the pool ran the handler — the
                    # in-flight gauge must track work, not sockets.
                    self._finish_slot(slot)
                    if conn.closed:
                        continue
                    try:
                        self._pump(conn)
                    except Exception:
                        self._close(conn)

    def _adopt(self, sock):
        if not self._running:
            try:
                sock.close()
            except OSError:
                pass
            return
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        conn = _Connection(sock, self.server._new_parser())
        self.connections.add(conn)
        self._set_mask(conn, _READ)

    # -- socket events ------------------------------------------------------
    def _sweep_idle(self, now):
        """Reap connections with no traffic for ``idle_timeout`` seconds:
        a slow-loris peer (or an abandoned keep-alive socket) cannot pin
        an fd forever.  A victim caught mid-request is answered 408.
        A connection with pending response slots is NOT idle — its
        request is executing in the domain worker pool, which is exactly
        the slow work the pool exists to absorb."""
        timeout = self.server.idle_timeout
        if not timeout:
            return
        for conn in [c for c in self.connections
                     if not c.pending and now - c.last_activity > timeout]:
            if conn.reaped:
                # already 408'd on a previous sweep and the client never
                # read it: finish the close without recounting.
                self._close(conn)
                continue
            conn.reaped = True
            self.server._idle_closed.add(1)
            if (conn.parser.mid_request and not conn.out
                    and not conn.stop_dispatch):
                self._reject(conn, HttpError("request timeout", status=408))
            else:
                self._close(conn)

    def _on_readable(self, conn):
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(conn)
            return
        conn.last_activity = time.monotonic()
        if not data:
            conn.read_closed = True
            self._pump(conn)
            return
        conn.parser.feed(data)
        self._pump(conn)

    def _on_writable(self, conn):
        self._pump(conn)

    # -- request processing -------------------------------------------------
    def _pump(self, conn):
        """Dispatch whatever the parser has ready (pipeline permitting),
        flush the completed response prefix, refresh event interest.
        Every read, write and completion funnels through here, and it
        loops while flushing frees pipeline capacity for requests the
        parser already buffered — a deep pipelined burst is fully served
        even though no further bytes ever arrive."""
        while True:
            try:
                dispatched = self._dispatch_ready(conn)
            except HttpError as exc:
                self._reject(conn, exc)
                return
            if (conn.read_closed and not conn.stop_dispatch
                    and conn.parser.mid_request
                    and len(conn.pending) < self.server.max_pipeline):
                # pending < max_pipeline means _dispatch_ready stopped
                # because the parser genuinely needs more bytes, not
                # because the pipeline was full of complete requests.
                # EOF truncated a request mid-parse: the reference parser
                # raises HttpError here, so answer 400 the same way
                # (after any responses already owed).
                self._reject(conn, HttpError("EOF mid-request"))
                return
            self._flush(conn)
            if conn.closed:
                return
            if (not dispatched or not conn.parser.buffered
                    or len(conn.out) >= self.server.out_highwater):
                # The out_highwater check matters: a pipelined burst of
                # cheap requests for large responses would otherwise
                # amplify into an unbounded conn.out in this very loop
                # (reads only pause AFTER it).  _on_writable pumps again
                # as the client drains the buffer.
                break
        self._update_interest(conn)

    def _dispatch_ready(self, conn):
        parser = conn.parser
        max_pipeline = self.server.max_pipeline
        out_highwater = self.server.out_highwater
        dispatched = 0
        while (not conn.stop_dispatch
               and len(conn.pending) < max_pipeline
               and len(conn.out) < out_highwater):
            request = parser.next_request()
            if request is None:
                break
            self._dispatch(conn, request)
            dispatched += 1
        return dispatched

    def _finish_slot(self, slot):
        """Release the slot's admission unit and record its latency."""
        tenant = slot.tenant
        if tenant is None:
            return
        slot.tenant = None
        self.server.admission.finish(
            tenant, (time.monotonic() - slot.t_start) * 1e6
        )

    def _dispatch(self, conn, request):
        self._served_cell[0] += 1
        server = self.server
        keep = request.keep_alive
        version = "HTTP/1.1" if request.version == "HTTP/1.1" else "HTTP/1.0"
        slot = _Slot(not keep, version)
        conn.pending.append(slot)
        if not keep:
            conn.stop_dispatch = True

        # Admission control AT the parse boundary: a shed request costs
        # exactly one preformatted 503 here — no extension match, no
        # pool hand-off, no domain crossing.
        admission = server.admission
        if admission is not None:
            decision = admission.decide(request.path)
            if not decision.admitted:
                retry = max(1, int(decision.retry_after or 1))
                slot.payload = format_response(
                    Response(503,
                             {"Content-Type": "text/plain",
                              "Retry-After": str(retry)},
                             f"overloaded: {decision.reason}".encode(
                                 "latin-1")),
                    keep, version,
                )
                slot.ready = True
                return
            slot.tenant = decision.tenant
            slot.t_start = time.monotonic()

        entry = server._match_extension(request.path)
        if entry is not None:
            _, handler, inline = entry
            pool = server.pool
            if inline or pool is None or not pool.running:
                # Reply-streaming offer: while THIS loop thread is blocked
                # inside the handler, nothing else can write the socket —
                # so if no output is queued and this request is the only
                # pending slot, an out-of-process gateway may pass the
                # socket's fd to its domain host (SCM_RIGHTS) and let the
                # host write the HTTP response directly.
                offer = None
                if (_streaming.armed() and not conn.out
                        and len(conn.pending) == 1):
                    offer = _streaming.open_offer(
                        conn.sock.fileno(), version, keep
                    )
                try:
                    response = _safe_handle(handler, request)
                finally:
                    if offer is not None:
                        _streaming.close_offer()
                if offer is not None and offer.granted:
                    # The host wrote (or may have started writing) the
                    # response itself: this slot owes the client nothing.
                    # A grant that did not complete cleanly leaves the
                    # HTTP framing unknowable — close, never append.
                    slot.payload = b""
                    slot.ready = True
                    if offer.failed or not offer.streamed:
                        slot.close_after = True
                    self._finish_slot(slot)
                    return
                slot.payload = _format_payload(response, keep, version)
                slot.ready = True
                self._finish_slot(slot)
            elif not pool.submit(_PoolTask(self, conn, slot, handler,
                                           request)):
                slot.payload = format_response(
                    Response(503, {"Content-Type": "text/plain"},
                             b"server busy"),
                    keep, version,
                )
                slot.ready = True
                self._finish_slot(slot)
            return

        store = server.documents
        # Capture the path version BEFORE fetching the document: a put()
        # racing in after the capture leaves the entry tagged with the
        # old version (a harmless extra miss next time), whereas
        # re-reading after the fetch could tag stale bytes as fresh.
        generation = store.version(request.path)
        key = (request.path, version, keep)
        payload = self.cache.get(key, generation)
        if payload is None:
            document = store.get(request.path)
            if document is None:
                payload = format_response(
                    Response(404, {"Content-Type": "text/plain"},
                             b"not found"),
                    keep, version,
                )
            else:
                body, content_type = document
                payload = format_response(
                    Response(200, {"Content-Type": content_type}, body),
                    keep, version,
                )
                self.cache.put(key, generation, payload)
        slot.payload = payload
        slot.ready = True
        self._finish_slot(slot)

    def _reject(self, conn, exc):
        """Malformed input: answer with the error status, then close."""
        conn.stop_dispatch = True
        slot = _Slot(True, "HTTP/1.0")
        slot.payload = format_response(
            Response(getattr(exc, "status", 400), {}, b"bad request")
        )
        slot.ready = True
        conn.pending.append(slot)
        self._flush(conn)
        if not conn.closed:
            self._update_interest(conn)

    # -- output -------------------------------------------------------------
    def _flush(self, conn):
        pending = conn.pending
        out = conn.out
        highwater = self.server.out_highwater
        # The high-water check bounds each sweep: a burst of
        # already-ready slots (pipelined cache hits) must not balloon
        # conn.out past the mark at once.  The outer loop moves deferred
        # slots only after the kernel fully drained the buffer, so memory
        # stays bounded while a fast-reading client still gets the whole
        # pipeline without waiting for another readiness event.
        while True:
            while pending and pending[0].ready and len(out) < highwater:
                slot = pending.popleft()
                out += slot.payload
                if slot.close_after:
                    conn.close_after_flush = True
                    conn.stop_dispatch = True
                    pending.clear()
                    break
            if not out:
                break
            try:
                sent = conn.sock.send(out)
            except (BlockingIOError, InterruptedError):
                sent = 0
            except OSError:
                self._close(conn)
                return
            if sent:
                del out[:sent]
                conn.last_activity = time.monotonic()
            if out or sent == 0:
                # Kernel buffer full (or partial write): _on_writable
                # resumes the drain when the client catches up.
                break
            if conn.close_after_flush or not pending or not pending[0].ready:
                break
        if not out:
            if conn.close_after_flush:
                self._close(conn)
            elif conn.read_closed and not pending:
                # Fully half-closed and nothing owed — unless the parser
                # still holds complete requests the pipeline cap deferred
                # (the next _pump dispatches them).
                if conn.stop_dispatch or not conn.parser.buffered:
                    self._close(conn)

    def _update_interest(self, conn):
        server = self.server
        mask = 0
        if not conn.read_closed and not conn.stop_dispatch:
            if (len(conn.pending) < server.max_pipeline
                    and conn.parser.buffered < server._buffer_bound
                    and len(conn.out) < server.out_highwater):
                mask |= _READ
            elif conn.mask & _READ:
                server._backpressure_pauses.add(1)
        if conn.out:
            mask |= _WRITE
        self._set_mask(conn, mask)

    def _set_mask(self, conn, mask):
        if mask == conn.mask or conn.closed:
            return
        selector = self.selector
        try:
            if conn.mask == 0:
                selector.register(conn.sock, mask, conn)
            elif mask == 0:
                selector.unregister(conn.sock)
            else:
                selector.modify(conn.sock, mask, conn)
        except (KeyError, ValueError, OSError):
            self._close(conn)
            return
        conn.mask = mask

    def _close(self, conn):
        if conn.closed:
            return
        conn.closed = True
        if conn.mask:
            try:
                self.selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.mask = 0
        try:
            conn.sock.close()
        except OSError:
            pass
        self.connections.discard(conn)

    def _cleanup(self):
        # First thing: stop accepting cross-thread work.  A loop dying
        # on its own (selector failure) must make offer()/post() refuse,
        # or the acceptor would keep adopting sockets into a black hole.
        with self._inbox_lock:
            self._running = False
        for conn in list(self.connections):
            self._close(conn)
        with self._inbox_lock:
            leftovers = list(self._inbox)
            self._inbox.clear()
        for item in leftovers:
            if item[0] == "adopt":
                try:
                    item[1].close()
                except OSError:
                    pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        try:
            self.selector.close()
        except OSError:
            pass


class NativeHttpServer:
    """Reactor HTTP server: documents + prefix-registered extensions.

    Public surface is a superset of the seed's thread-per-connection
    server: ``documents``, ``add_extension``/``remove_extension``,
    transport-independent ``process``, ``start``/``stop`` and
    ``requests_served`` all keep their meaning.
    """

    def __init__(self, host="127.0.0.1", port=0, *, workers=2,
                 pool_workers=2, pool_capacity=128, max_pipeline=32,
                 max_buffered=65536, max_body=None, out_highwater=1 << 20,
                 accept_queue_limit=64, cache_size=256, idle_timeout=60.0,
                 admission=None):
        self.host = host
        self.port = port
        #: Optional :class:`repro.web.control.AdmissionController`
        #: consulted at the parse boundary; None (the default) keeps
        #: the PR-4/5 admit-everything behaviour and zero overhead.
        self.admission = admission
        self.documents = DocumentStore()
        self.workers = max(1, workers)
        self.pool = (DomainWorkerPool(pool_workers, pool_capacity)
                     if pool_workers > 0 else None)
        self.max_pipeline = max_pipeline
        self.max_buffered = max_buffered
        # The largest accepted request body.  The read-pause bound below
        # must cover it: a known-length body in progress may never trip
        # the backpressure pause (paused reads with no pending response
        # would never resume — a stall, not flow control).
        self.max_body = max_buffered if max_body is None else max_body
        self._buffer_bound = max(self.max_buffered, self.max_body)
        self.out_highwater = out_highwater
        self.accept_queue_limit = accept_queue_limit
        self.cache_size = cache_size
        self.idle_timeout = idle_timeout

        self._extensions = ()  # (prefix, handler, inline), longest-first
        self._extension_lock = threading.Lock()
        self._listener = None
        self._accept_thread = None
        self._loops = []
        self._running = False
        self._served = ShardedCounter()
        self._backpressure_pauses = ShardedCounter()
        self._accept_backpressure = ShardedCounter()
        self._idle_closed = ShardedCounter()

    # -- configuration ----------------------------------------------------
    def add_extension(self, prefix, handler, *, inline=False):
        """Register an in-process extension for a URL prefix.

        ``handler(request) -> Response``.  With ``inline=True`` the
        handler runs on the event-loop thread — the same thread IIS hands
        an ISAPI extension (§4: "it allows the Java code to run in the
        same thread as IIS uses to invoke the bridge"); the default
        routes it through the domain worker pool so a slow handler
        cannot stall the loop.
        """
        with self._extension_lock:
            entries = [e for e in self._extensions if e[0] != prefix]
            entries.append((prefix, handler, inline))
            entries.sort(key=lambda entry: -len(entry[0]))
            self._extensions = tuple(entries)
        return self

    def remove_extension(self, prefix):
        with self._extension_lock:
            self._extensions = tuple(
                entry for entry in self._extensions if entry[0] != prefix
            )

    def _match_extension(self, path):
        for entry in self._extensions:
            if path.startswith(entry[0]):
                return entry
        return None

    def _new_parser(self):
        # A body that could never fit the buffer bound must 413 up
        # front; the pause bound (_buffer_bound) covers max_body, so an
        # accepted body can always finish arriving.
        return RequestParser(max_header_bytes=self.max_buffered,
                             max_body=self.max_body)

    # -- request processing (transport-independent) -----------------------
    def process(self, request):
        """Handle one request; usable directly for in-process benchmarks."""
        self._served.add(1)
        entry = self._match_extension(request.path)
        if entry is not None:
            return _safe_handle(entry[1], request)
        document = self.documents.get(request.path)
        if document is None:
            return Response(404, {"Content-Type": "text/plain"},
                            b"not found")
        body, content_type = document
        return Response(200, {"Content-Type": content_type}, body)

    @property
    def requests_served(self):
        return self._served.value

    # -- introspection ------------------------------------------------------
    def live_connections(self):
        return sum(len(loop.connections) for loop in self._loops)

    def stats(self):
        snapshot = {
            "requests_served": self.requests_served,
            "live_connections": self.live_connections(),
            "cache_hits": sum(loop.cache.hits for loop in self._loops),
            "cache_misses": sum(loop.cache.misses for loop in self._loops),
            "backpressure_pauses": self._backpressure_pauses.value,
            "accept_backpressure": self._accept_backpressure.value,
            "idle_closed": self._idle_closed.value,
        }
        if self.pool is not None:
            snapshot["pool"] = self.pool.stats()
        if self.admission is not None:
            admission = self.admission.stats()
            snapshot["admission"] = admission
            snapshot["p99_latency_ms"] = admission["p99_latency_ms"]
        return snapshot

    # -- socket plumbing ---------------------------------------------------
    def start(self, listener=None):
        """Start serving.  ``listener`` (optional) is a pre-bound
        listening socket to adopt instead of binding a fresh one — the
        prefork tier passes either a worker-owned ``SO_REUSEPORT`` socket
        or the listener fd inherited from the master across ``fork``."""
        if self._running:
            return self
        if listener is not None:
            self._listener = listener
            self.host, self.port = listener.getsockname()[:2]
            if listener.gettimeout() is None:
                listener.settimeout(0.2)
        else:
            self._listener = make_listener(self.host, self.port)
            self.port = self._listener.getsockname()[1]
        self._running = True
        self._loops = [_EventLoop(self, index)
                       for index in range(self.workers)]
        for loop in self._loops:
            loop.start()
        if self.pool is not None:
            self.pool.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="httpd-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self):
        listener = self._listener
        while self._running:
            sock = accept_next(listener, lambda: self._running)
            if sock is None:
                continue
            if sock is ACCEPT_STOP:
                break
            self._place(sock)

    def _place(self, sock):
        """Hand a fresh connection to the least-loaded loop; when every
        hand-off queue is full, hold accepting (the kernel backlog queues
        behind us) instead of growing an unbounded list."""
        while self._running:
            # Least-loaded first, but try every loop: a loop that died
            # (offer refuses) must not wedge placement while healthy
            # loops remain.
            for loop in sorted(self._loops, key=_EventLoop.load):
                if loop.offer(sock):
                    return
            self._accept_backpressure.add(1)
            time.sleep(0.005)
        try:
            sock.close()
        except OSError:
            pass

    def stop_accepting(self):
        """Close the listener and retire the acceptor, keeping existing
        connections served — the first phase of a graceful drain.
        Idempotent; ``stop`` finishes the teardown.  The closed listener
        object stays referenced (its fileno reads -1), so leak checks
        and restarts can observe the state."""
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(2.0)
            self._accept_thread = None

    def drain(self, timeout=5.0, poll=0.01):
        """Stop accepting and wait for live connections to finish.

        Returns True when the reactor went quiet inside ``timeout``.
        Keep-alive connections that simply stay open count against the
        deadline — the caller decides whether to cut them off (stop).
        """
        self.stop_accepting()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.live_connections() == 0:
                return True
            time.sleep(poll)
        return self.live_connections() == 0

    def stop(self):
        self._running = False
        self.stop_accepting()
        for loop in self._loops:
            loop.shutdown()
        for loop in self._loops:
            loop.join(5.0)
        if self.pool is not None:
            self.pool.stop()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
