"""The native HTTP server (the IIS analogue of §4 / Table 5).

A thread-per-connection server with an in-memory document store (the NT
file-cache analogue) and an in-process *extension* hook: handlers
registered under URL prefixes intercept matching requests — exactly the
role ISAPI extensions play for IIS.  The J-Kernel attaches through such an
extension (``repro.web.isapi``).
"""

from __future__ import annotations

import socket
import threading

from .http import HttpError, Request, Response, format_response, read_request


class DocumentStore:
    """In-memory documents served on the fast path."""

    def __init__(self):
        self._documents = {}

    def put(self, path, body, content_type="text/html"):
        if isinstance(body, str):
            body = body.encode("utf-8")
        self._documents[path] = (body, content_type)
        return self

    def get(self, path):
        return self._documents.get(path)

    def paths(self):
        return sorted(self._documents)


class NativeHttpServer:
    """Threaded HTTP server: documents + prefix-registered extensions."""

    def __init__(self, host="127.0.0.1", port=0):
        self.host = host
        self.port = port
        self.documents = DocumentStore()
        self._extensions = []  # (prefix, handler) sorted longest-first
        self._listener = None
        self._accept_thread = None
        self._running = False
        self._connections = set()
        self._lock = threading.Lock()
        self.requests_served = 0

    # -- configuration ----------------------------------------------------
    def add_extension(self, prefix, handler):
        """Register an in-process extension for a URL prefix.

        ``handler(request) -> Response`` runs on the connection's thread —
        the same thread IIS hands an ISAPI extension (§4: "it allows the
        Java code to run in the same thread as IIS uses to invoke the
        bridge").
        """
        self._extensions.append((prefix, handler))
        self._extensions.sort(key=lambda entry: -len(entry[0]))
        return self

    def remove_extension(self, prefix):
        self._extensions = [
            entry for entry in self._extensions if entry[0] != prefix
        ]

    # -- request processing (transport-independent) -----------------------------
    def process(self, request):
        """Handle one request; usable directly for in-process benchmarks."""
        self.requests_served += 1
        for prefix, handler in self._extensions:
            if request.path.startswith(prefix):
                try:
                    return handler(request)
                except Exception as exc:
                    return Response(
                        500, {"Content-Type": "text/plain"},
                        f"extension error: {exc!r}".encode("utf-8"),
                    )
        document = self.documents.get(request.path)
        if document is None:
            return Response(404, {"Content-Type": "text/plain"},
                            b"not found")
        body, content_type = document
        return Response(200, {"Content-Type": content_type}, body)

    # -- socket plumbing ----------------------------------------------------------
    def start(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self.port = self._listener.getsockname()[1]
        self._listener.listen(64)
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="httpd-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self):
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break
            with self._lock:
                self._connections.add(conn)
            worker = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            worker.start()

    def _serve_connection(self, conn):
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reader = conn.makefile("rb")
        try:
            while self._running:
                try:
                    request = read_request(reader)
                except HttpError:
                    conn.sendall(format_response(
                        Response(400, {}, b"bad request")
                    ))
                    return
                if request is None:
                    return
                response = self.process(request)
                keep = request.keep_alive
                conn.sendall(format_response(response, keep_alive=keep))
                if not keep:
                    return
        except OSError:
            pass
        finally:
            reader.close()
            conn.close()
            with self._lock:
                self._connections.discard(conn)

    def stop(self):
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(1.0)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
