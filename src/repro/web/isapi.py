"""The ISAPI bridge (paper §4).

"The J-Kernel runs within the same process as IIS (as an in-proc ISAPI
extension) and includes a system servlet … that allows it to receive HTTP
requests from IIS and return corresponding replies."

The bridge converts native-server requests into sealed ``ServletRequest``
objects and forwards them to the system servlet.  In the paper's
architecture that crossing is a JNI call from native code into *trusted*
J-Kernel kernel code — the system servlet is kernel infrastructure, not
an isolated user domain — and the LRMI domain crossing happens where the
protection boundary actually is: system servlet → user servlet.  The
default configuration models exactly that (``system`` is the
:class:`~repro.web.jkweb.SystemServlet` itself, called host-side); pass
the system *capability* instead to reproduce the seed's stricter
double-LRMI accounting, where even the bridge→system hop pays a full
domain crossing (``JKernelWebServer(system_lrmi=True)``).

``handle`` is called concurrently from every event loop (and pool
worker) of the native server, so the bridged-request counter is sharded
rather than a bare ``+= 1``.
"""

from __future__ import annotations

from repro.core import RemoteException
from repro.core.accounting import ShardedCounter

from .http import Response
from .servlet import ServletRequest


class IsapiBridge:
    """Adapter between the native server and the J-Kernel system servlet.

    ``system`` is anything exposing ``service(request)``: the system
    servlet object (paper-faithful trusted call) or its capability (full
    LRMI accounting).
    """

    def __init__(self, system, strip_prefix="", request_cache=512):
        self._system = system
        self._strip_prefix = strip_prefix
        self._bridged = ShardedCounter()
        # Request interning: a sealed ServletRequest is immutable, so
        # identical bodiless requests (the keep-alive GET steady state)
        # may share one carrier object across time and connections —
        # the request-side counterpart of the document response cache.
        self._requests = {} if request_cache else None
        self._requests_cap = request_cache

    @property
    def requests_bridged(self):
        return self._bridged.value

    def _intern_request(self, request):
        # Keyed by (method, path) with a C-speed dict equality check on
        # the headers — cheaper than hashing a headers tuple per request
        # in the steady state where each client repeats one request.
        cache = self._requests
        key = (request.method, request.path)
        entry = cache.get(key)
        headers = request.headers
        if entry is not None and entry[0] == headers:
            return entry[1]
        built = self._build(request)
        # Only a genuinely NEW key can grow the dict: replacing an
        # existing entry at capacity must not wipe every other path.
        if key not in cache and len(cache) >= self._requests_cap:
            cache.clear()
        cache[key] = (headers, built)
        return built

    def _build(self, request):
        path = request.path
        if self._strip_prefix and path.startswith(self._strip_prefix):
            path = path[len(self._strip_prefix):] or "/"
        return ServletRequest(
            request.method, path, request.headers, request.body
        )

    def handle(self, request):
        """Native-server extension entry point."""
        self._bridged.add(1)
        if self._requests is not None and not request.body:
            servlet_request = self._intern_request(request)
        else:
            servlet_request = self._build(request)
        try:
            # Sealed and immutable, the response needs no defensive
            # re-wrap — it goes back to the server as-is (keeping its
            # memoized wire form when the servlet reuses responses).
            return self._system.service(servlet_request)
        except RemoteException as exc:
            return Response(
                503, {"Content-Type": "text/plain"},
                f"servlet unavailable: {exc}".encode("utf-8"),
            )
