"""The ISAPI bridge (paper §4).

"The J-Kernel runs within the same process as IIS (as an in-proc ISAPI
extension) and includes a system servlet … that allows it to receive HTTP
requests from IIS and return corresponding replies."

The bridge converts native-server requests into ``ServletRequest`` objects
and forwards them through the system-servlet *capability* — so every
request pays one LRMI into the J-Kernel (plus one more into the user
servlet's domain), which is precisely the ~20% overhead Table 5 measures.
"""

from __future__ import annotations

from repro.core import RemoteException

from .http import Response
from .servlet import ServletRequest


class IsapiBridge:
    """Adapter between the native server and the J-Kernel system servlet."""

    def __init__(self, system_capability, strip_prefix=""):
        self._system = system_capability
        self._strip_prefix = strip_prefix
        self.requests_bridged = 0

    def handle(self, request):
        """Native-server extension entry point."""
        self.requests_bridged += 1
        path = request.path
        if self._strip_prefix and path.startswith(self._strip_prefix):
            path = path[len(self._strip_prefix):] or "/"
        servlet_request = ServletRequest(
            request.method, path, request.headers, request.body
        )
        try:
            servlet_response = self._system.service(servlet_request)
        except RemoteException as exc:
            return Response(
                503, {"Content-Type": "text/plain"},
                f"servlet unavailable: {exc}".encode("utf-8"),
            )
        # The response already crossed the domain boundary, so its headers
        # dict is a private copy — no defensive re-copy needed.
        return Response(
            servlet_response.status,
            servlet_response.headers,
            servlet_response.body,
        )
