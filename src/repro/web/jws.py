"""The "Java Web Server" analogue (Table 5's JWS column).

"The order-of-magnitude gap between J-Kernel and JWS is due to the fact
that JWS is written entirely in Java and is executed without a JIT
compiler."

Accordingly, this server's request handling — request-line parsing, URL
matching and response assembly — executes as MiniJVM *bytecode on the
interpreter*: every byte of the response is produced by interpreted guest
instructions.  The native layer only moves bytes between sockets and the
guest heap.
"""

from __future__ import annotations

import array as _array
import socket
import threading
import time

from repro.jvm import VM, ClassAssembler, MapResolver
from repro.jvm.classfile import ACC_PUBLIC, ACC_STATIC
from repro.jvm.errors import JThrowable
from repro.jvm.instructions import (
    AALOAD,
    ALOAD,
    ARETURN,
    ARRAYLENGTH,
    ASTORE,
    BALOAD,
    BASTORE,
    GETSTATIC,
    GOTO,
    IADD,
    ICONST,
    IF_ICMPEQ,
    IF_ICMPGE,
    IF_ICMPNE,
    IINC,
    ILOAD,
    ISTORE,
    ISUB,
    NEWARRAY,
)

HANDLER = "jws/Handler"

_BAD_REQUEST = (
    b"HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\nConnection: close"
    b"\r\n\r\n"
)


def _handler_classfile():
    """The interpreted request handler: parse, match, assemble — all guest
    bytecode (see module docstring for why there is no arraycopy here)."""
    ca = ClassAssembler(HANDLER)
    static = ACC_PUBLIC | ACC_STATIC
    ca.field("nDocs", "I", static)
    ca.field("paths", "[[B", static)
    ca.field("headers", "[[B", static)
    ca.field("bodies", "[[B", static)
    ca.field("notFound", "[B", static)

    m = ca.method("handle", "([B)[B", static)
    # locals: 0=req 1=i 2=start 3=end 4=d 5=j 6=p/h 7=b 8=resp 9=plen
    not_found = m.label("notfound")
    # --- find first space ---
    m.emit(ICONST, 0)
    m.emit(ISTORE, 1)
    scan1 = m.here()
    m.emit(ALOAD, 0)
    m.emit(ILOAD, 1)
    m.emit(BALOAD)
    m.emit(ICONST, 32)
    found1 = m.label()
    m.emit(IF_ICMPEQ, found1)
    m.emit(IINC, 1, 1)
    m.emit(GOTO, scan1.pc)
    m.mark(found1)
    # start = i + 1; i = start
    m.emit(ILOAD, 1)
    m.emit(ICONST, 1)
    m.emit(IADD)
    m.emit(ISTORE, 2)
    m.emit(ILOAD, 2)
    m.emit(ISTORE, 1)
    # --- find second space ---
    scan2 = m.here()
    m.emit(ALOAD, 0)
    m.emit(ILOAD, 1)
    m.emit(BALOAD)
    m.emit(ICONST, 32)
    found2 = m.label()
    m.emit(IF_ICMPEQ, found2)
    m.emit(IINC, 1, 1)
    m.emit(GOTO, scan2.pc)
    m.mark(found2)
    m.emit(ILOAD, 1)
    m.emit(ISTORE, 3)  # end
    # --- document loop ---
    m.emit(ICONST, 0)
    m.emit(ISTORE, 4)
    loop_d = m.here()
    m.emit(ILOAD, 4)
    m.emit(GETSTATIC, HANDLER, "nDocs")
    m.emit(IF_ICMPGE, not_found)
    m.emit(GETSTATIC, HANDLER, "paths")
    m.emit(ILOAD, 4)
    m.emit(AALOAD)
    m.emit(ASTORE, 6)
    m.emit(ALOAD, 6)
    m.emit(ARRAYLENGTH)
    m.emit(ISTORE, 9)
    next_d = m.label("next_d")
    m.emit(ILOAD, 9)
    m.emit(ILOAD, 3)
    m.emit(ILOAD, 2)
    m.emit(ISUB)
    m.emit(IF_ICMPNE, next_d)
    # byte-compare path
    m.emit(ICONST, 0)
    m.emit(ISTORE, 5)
    cmp_loop = m.here()
    m.emit(ILOAD, 5)
    m.emit(ILOAD, 9)
    match = m.label("match")
    m.emit(IF_ICMPGE, match)
    m.emit(ALOAD, 6)
    m.emit(ILOAD, 5)
    m.emit(BALOAD)
    m.emit(ALOAD, 0)
    m.emit(ILOAD, 2)
    m.emit(ILOAD, 5)
    m.emit(IADD)
    m.emit(BALOAD)
    m.emit(IF_ICMPNE, next_d)
    m.emit(IINC, 5, 1)
    m.emit(GOTO, cmp_loop.pc)
    m.mark(next_d)
    m.emit(IINC, 4, 1)
    m.emit(GOTO, loop_d.pc)
    # --- assemble response ---
    m.mark(match)
    m.emit(GETSTATIC, HANDLER, "headers")
    m.emit(ILOAD, 4)
    m.emit(AALOAD)
    m.emit(ASTORE, 6)  # h
    m.emit(GETSTATIC, HANDLER, "bodies")
    m.emit(ILOAD, 4)
    m.emit(AALOAD)
    m.emit(ASTORE, 7)  # b
    m.emit(ALOAD, 6)
    m.emit(ARRAYLENGTH)
    m.emit(ALOAD, 7)
    m.emit(ARRAYLENGTH)
    m.emit(IADD)
    m.emit(NEWARRAY, "B")
    m.emit(ASTORE, 8)
    # copy header bytes
    m.emit(ICONST, 0)
    m.emit(ISTORE, 5)
    copy_h = m.here()
    m.emit(ILOAD, 5)
    m.emit(ALOAD, 6)
    m.emit(ARRAYLENGTH)
    body_start = m.label("body")
    m.emit(IF_ICMPGE, body_start)
    m.emit(ALOAD, 8)
    m.emit(ILOAD, 5)
    m.emit(ALOAD, 6)
    m.emit(ILOAD, 5)
    m.emit(BALOAD)
    m.emit(BASTORE)
    m.emit(IINC, 5, 1)
    m.emit(GOTO, copy_h.pc)
    # copy body bytes
    m.mark(body_start)
    m.emit(ICONST, 0)
    m.emit(ISTORE, 5)
    copy_b = m.here()
    m.emit(ILOAD, 5)
    m.emit(ALOAD, 7)
    m.emit(ARRAYLENGTH)
    done = m.label("done")
    m.emit(IF_ICMPGE, done)
    m.emit(ALOAD, 8)
    m.emit(ALOAD, 6)
    m.emit(ARRAYLENGTH)
    m.emit(ILOAD, 5)
    m.emit(IADD)
    m.emit(ALOAD, 7)
    m.emit(ILOAD, 5)
    m.emit(BALOAD)
    m.emit(BASTORE)
    m.emit(IINC, 5, 1)
    m.emit(GOTO, copy_b.pc)
    m.mark(done)
    m.emit(ALOAD, 8)
    m.emit(ARETURN)
    # 404
    m.mark(not_found)
    m.emit(GETSTATIC, HANDLER, "notFound")
    m.emit(ARETURN)
    return ca.build()


def _signed_list(data):
    """Bytes -> list of signed guest byte values, via one C-level cast."""
    return memoryview(data).cast("b").tolist()


class JWSServer:
    """Interpreted-servlet web server over real sockets."""

    def __init__(self, documents, host="127.0.0.1", port=0, profile="sunvm"):
        self.host = host
        self.port = port
        self.vm = VM(profile=profile)
        classfile = _handler_classfile()
        loader = self.vm.new_loader(
            "jws", resolver=MapResolver({classfile.name: classfile})
        )
        self.handler_class = loader.load(HANDLER)
        self._byte_array_class = self.vm.array_class_for_descriptor(
            "[B", self.vm.boot_loader
        )
        self._install_documents(documents)
        self._vm_lock = threading.Lock()
        self._listener = None
        self._accept_thread = None
        self._running = False
        self._connections = set()
        self._conn_lock = threading.Lock()
        self._served = 0  # guarded by _vm_lock (every request holds it)

    def _guest_bytes(self, data):
        array = self.vm.heap.new_array(
            self._byte_array_class, len(data), owner="jws"
        )
        array.elems[:] = _signed_list(data)
        return array

    def _install_documents(self, documents):
        rtclass = self.handler_class
        entries = sorted(documents.items())
        paths = []
        headers = []
        bodies = []
        for path, body in entries:
            if isinstance(body, str):
                body = body.encode("utf-8")
            header = (
                "HTTP/1.0 200 OK\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: keep-alive\r\n\r\n"
            ).encode("latin-1")
            paths.append(self._guest_bytes(path.encode("latin-1")))
            headers.append(self._guest_bytes(header))
            bodies.append(self._guest_bytes(body))
        array_of_arrays = self.vm.array_class_for_descriptor(
            "[[B", self.vm.boot_loader
        )

        def ref_array(items):
            array = self.vm.heap.new_array(
                array_of_arrays, len(items), owner="jws"
            )
            array.elems[:] = items
            return array

        not_found_payload = (
            b"HTTP/1.0 404 Not Found\r\nContent-Length: 9\r\n"
            b"Connection: keep-alive\r\n\r\nnot found"
        )
        statics = {
            "nDocs": len(entries),
            "paths": ref_array(paths),
            "headers": ref_array(headers),
            "bodies": ref_array(bodies),
            "notFound": self._guest_bytes(not_found_payload),
        }
        for name, value in statics.items():
            rtclass.static_slots[rtclass.static_index[name]] = value

    @property
    def requests_served(self):
        return self._served

    # -- request processing -------------------------------------------------------
    def handle_bytes(self, raw_request):
        """Run one raw HTTP request through the interpreted handler."""
        with self._vm_lock:
            self._served += 1
            request_array = self._guest_bytes(raw_request)
            try:
                response = self.vm.call_static(
                    self.handler_class, "handle", "([B)[B",
                    [request_array], domain_tag="jws",
                )
            except JThrowable:
                return _BAD_REQUEST
            try:
                # Guest byte arrays hold i8-wrapped values; one C-level
                # pack beats a per-byte mask loop.
                return _array.array("b", response.elems).tobytes()
            except (OverflowError, TypeError):
                return bytes((value & 0xFF) for value in response.elems)

    # -- sockets --------------------------------------------------------------------
    def start(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self.port = self._listener.getsockname()[1]
        self._listener.listen(64)
        self._listener.settimeout(0.2)
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="jws-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self):
        from .httpd import ACCEPT_STOP, accept_next

        while self._running:
            conn = accept_next(self._listener, lambda: self._running)
            if conn is None:
                continue
            if conn is ACCEPT_STOP:
                break
            with self._conn_lock:
                self._connections.add(conn)
            worker = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            worker.start()

    def _serve_connection(self, conn):
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            buffer = b""
            while self._running:
                while b"\r\n\r\n" not in buffer:
                    chunk = conn.recv(8192)
                    if not chunk:
                        return
                    buffer += chunk
                raw, _, buffer = buffer.partition(b"\r\n\r\n")
                conn.sendall(self.handle_bytes(raw + b"\r\n\r\n"))
        except OSError:
            pass
        finally:
            conn.close()
            with self._conn_lock:
                self._connections.discard(conn)

    def stop(self):
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(2.0)
            self._accept_thread = None
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
