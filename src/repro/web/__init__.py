"""The extensible HTTP server stack (paper §4, Table 5)."""

from .client import fetch_once, measure_throughput
from .http import (
    HttpError,
    Request,
    Response,
    format_request,
    format_response,
    read_request,
    read_response,
)
from .httpd import DocumentStore, NativeHttpServer
from .isapi import IsapiBridge
from .jkweb import JKernelWebServer, ServletRegistration, SystemServlet
from .jws import JWSServer
from .servlet import (
    Servlet,
    ServletRequest,
    ServletResponse,
    error_response,
    text_response,
)

__all__ = [
    "DocumentStore",
    "HttpError",
    "IsapiBridge",
    "JKernelWebServer",
    "JWSServer",
    "NativeHttpServer",
    "Request",
    "Response",
    "Servlet",
    "ServletRegistration",
    "ServletRequest",
    "ServletResponse",
    "SystemServlet",
    "error_response",
    "fetch_once",
    "format_request",
    "format_response",
    "measure_throughput",
    "read_request",
    "read_response",
    "text_response",
]
