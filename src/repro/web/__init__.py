"""The extensible HTTP server stack (paper §4, Table 5)."""

from .client import (
    LoadReport,
    fetch_many,
    fetch_once,
    fetch_pipelined,
    measure_throughput,
    run_mixed_load,
)
from .http import (
    HttpError,
    Request,
    RequestParser,
    Response,
    format_request,
    format_response,
    read_request,
    read_response,
)
from .httpd import (
    DocumentStore,
    DomainWorkerPool,
    NativeHttpServer,
    ResponseCache,
    make_listener,
)
from .isapi import IsapiBridge
from .jkweb import (
    JKernelWebServer,
    OutOfProcessRegistration,
    ServletRegistration,
    SystemServlet,
)
from .prefork import PreforkError, PreforkServer, WorkerHandle
from .jws import JWSServer
from .servlet import (
    Servlet,
    ServletRequest,
    ServletResponse,
    error_response,
    text_response,
)

__all__ = [
    "DocumentStore",
    "DomainWorkerPool",
    "HttpError",
    "IsapiBridge",
    "JKernelWebServer",
    "JWSServer",
    "LoadReport",
    "NativeHttpServer",
    "OutOfProcessRegistration",
    "PreforkError",
    "PreforkServer",
    "Request",
    "RequestParser",
    "Response",
    "ResponseCache",
    "Servlet",
    "ServletRegistration",
    "ServletRequest",
    "ServletResponse",
    "SystemServlet",
    "WorkerHandle",
    "error_response",
    "fetch_many",
    "fetch_once",
    "fetch_pipelined",
    "format_request",
    "format_response",
    "make_listener",
    "measure_throughput",
    "read_request",
    "read_response",
    "run_mixed_load",
    "text_response",
]
