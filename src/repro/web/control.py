"""Fleet control plane: admission control and worker autoscaling.

The PR-5 prefork master *measures* (STATS control-pipe reports) and
*replaces* (crash respawn, rolling restarts); this module makes the
fleet self-defending and self-sizing:

* :class:`AdmissionController` — bounded admission with weighted
  per-tenant fairness, consulted by the reactor **at the parse
  boundary**: a shed request costs one preformatted 503 (with
  ``Retry-After``) before any servlet dispatch, extension match or
  domain crossing.  Under overload (in-flight above the bound, or p99
  latency above the SLO) tenants above their weighted fair share are
  shed first; tenants the quota layer marked throttled
  (``repro.core.quota``) are deprioritized — shed ahead of everyone
  at a fraction of their share — while still served on an idle box.
* :class:`Autoscaler` — sizes the prefork fleet from the shed-rate and
  p99-latency signals already flowing over the STATS pipe: scale-up
  forks a worker through the crash-replacement path, scale-down drains
  one through the rolling-restart retirement path, so neither direction
  ever drops an in-flight request.
* :class:`LatencyTracker` — the shared p99 estimator (lock-free ring;
  writers race benignly under the GIL, readers snapshot).
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.core.accounting import ShardedCounter
from repro.core.quota import HARD, get_quota_manager


class LatencyTracker:
    """Fixed-size ring of service-time samples (microseconds).

    ``note`` is lock-free: the slot index comes from an atomic counter
    and the list store is a single C-level op, so the per-request cost
    is two attribute loads and a store.  Percentile reads snapshot the
    ring — approximate under concurrent writes, which is exactly what a
    load signal needs.
    """

    __slots__ = ("_ring", "_size", "_next")

    def __init__(self, size=2048):
        self._ring = [None] * size
        self._size = size
        self._next = itertools.count().__next__

    def note(self, us):
        self._ring[self._next() % self._size] = us

    def percentile(self, fraction):
        samples = sorted(s for s in self._ring if s is not None)
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(len(samples) * fraction))
        return samples[index]

    def p99_ms(self):
        return self.percentile(0.99) / 1000.0

    def p50_ms(self):
        return self.percentile(0.50) / 1000.0

    def sample_count(self):
        return sum(1 for s in self._ring if s is not None)


def default_classifier(path):
    """Tenant key for a request path: the first path segment after the
    servlet mount when present (one tenant per servlet prefix), else a
    shared static bucket — so documents and servlets are bounded
    separately."""
    if not path.startswith("/"):
        return "_other"
    parts = path.split("/", 3)
    if len(parts) >= 3 and parts[1] == "servlet":
        return f"/{parts[2]}"
    return "_static"


class AdmissionDecision:
    """The parse-boundary verdict for one request."""

    __slots__ = ("admitted", "tenant", "retry_after", "reason")

    def __init__(self, admitted, tenant, retry_after=None, reason="ok"):
        self.admitted = admitted
        self.tenant = tenant
        self.retry_after = retry_after
        self.reason = reason

    def __repr__(self):
        verdict = "admit" if self.admitted else f"shed({self.reason})"
        return f"<AdmissionDecision {self.tenant}: {verdict}>"


class _Tenant:
    __slots__ = ("key", "weight", "in_flight", "admitted", "shed",
                 "deprioritized")

    def __init__(self, key, weight):
        self.key = key
        self.weight = weight
        self.in_flight = 0
        self.admitted = 0
        self.shed = 0
        self.deprioritized = False


class AdmissionController:
    """Bounded weighted-fair admission with load shedding.

    ``max_inflight`` bounds requests admitted-but-not-completed across
    the server (the queue-depth signal: every admitted request holds one
    unit until its response slot is ready).  Below ``shed_threshold`` of
    the bound and with p99 under ``slo_ms``, everything is admitted —
    fairness only bites under pressure.  Above it:

    * a tenant whose in-flight share exceeds ``weight/total_weight *
      max_inflight`` is shed (it is the one causing the overload);
    * a *deprioritized* tenant (quota-throttled) is shed at
      ``deprioritized_fraction`` of its fair share — soft-limit
      enforcement as admission priority, not a hard wall;
    * at the full bound everything is shed (fast 503, bounded memory).

    Decisions and completions are counter updates under one small lock
    (hundreds of ns) — admission stays far cheaper than the parse that
    preceded it.
    """

    def __init__(self, max_inflight=256, slo_ms=250.0, classifier=None,
                 weights=None, shed_threshold=0.5,
                 deprioritized_fraction=0.25, retry_after_s=1.0,
                 quota_manager=None, latency=None):
        self.max_inflight = max_inflight
        self.slo_ms = slo_ms
        self.classify = classifier or default_classifier
        self.shed_threshold = shed_threshold
        self.deprioritized_fraction = deprioritized_fraction
        self.retry_after_s = retry_after_s
        self.latency = latency if latency is not None else LatencyTracker()
        self._quota = quota_manager
        self._lock = threading.Lock()
        self._tenants = {}
        self._weights = dict(weights or {})
        self._total_weight = 0.0
        self._total_inflight = 0
        self.admitted = ShardedCounter()
        self.shed = ShardedCounter()

    # -- configuration -----------------------------------------------------
    def set_weight(self, tenant_key, weight):
        with self._lock:
            self._weights[tenant_key] = weight
            tenant = self._tenants.get(tenant_key)
            if tenant is not None:
                self._total_weight += weight - tenant.weight
                tenant.weight = weight
        return self

    def set_deprioritized(self, tenant_key, flag=True):
        """Mark a tenant for shed-first treatment (the quota layer calls
        this when a tenant crosses its soft limit)."""
        with self._lock:
            self._tenant(tenant_key).deprioritized = flag
        return self

    def attach_quota_manager(self, manager):
        self._quota = manager
        return self

    def _tenant(self, key):
        tenant = self._tenants.get(key)
        if tenant is None:
            weight = self._weights.get(key, 1.0)
            tenant = self._tenants[key] = _Tenant(key, weight)
            self._total_weight += weight
        return tenant

    # -- the parse-boundary decision ---------------------------------------
    def decide(self, path, now=None):
        key = self.classify(path)
        quota = self._quota if self._quota is not None \
            else get_quota_manager()
        quota_state = quota.admit(key, now)
        with self._lock:
            tenant = self._tenant(key)
            if quota_state == HARD:
                # The tenant is being terminated for blowing a hard
                # budget; its traffic sheds at the door while teardown
                # completes (routing answers 503 afterwards too).
                tenant.shed += 1
                self.shed.add(1)
                return AdmissionDecision(False, key, self.retry_after_s,
                                         "quota-exceeded")
            deprioritized = tenant.deprioritized or quota_state != "ok"
            total = self._total_inflight
            if total >= self.max_inflight:
                tenant.shed += 1
                self.shed.add(1)
                return AdmissionDecision(False, key, self.retry_after_s,
                                         "at-capacity")
            pressured = (total >= self.max_inflight * self.shed_threshold
                         or self.latency.p99_ms() > self.slo_ms)
            if pressured:
                share = (tenant.weight / max(self._total_weight, 1e-9)
                         ) * self.max_inflight
                if deprioritized:
                    share *= self.deprioritized_fraction
                if tenant.in_flight >= max(share, 1.0):
                    tenant.shed += 1
                    self.shed.add(1)
                    reason = ("deprioritized" if deprioritized
                              else "over-fair-share")
                    return AdmissionDecision(False, key,
                                             self.retry_after_s, reason)
            tenant.in_flight += 1
            tenant.admitted += 1
            self._total_inflight = total + 1
        self.admitted.add(1)
        return AdmissionDecision(True, key)

    def finish(self, tenant_key, latency_us=None):
        """One admitted request completed (its response slot is ready)."""
        if latency_us is not None:
            self.latency.note(latency_us)
        with self._lock:
            tenant = self._tenants.get(tenant_key)
            if tenant is not None and tenant.in_flight > 0:
                tenant.in_flight -= 1
                self._total_inflight -= 1

    # -- signals -----------------------------------------------------------
    def inflight(self):
        return self._total_inflight

    def shed_rate(self):
        """Fraction of all decisions that shed (lifetime; per-window
        rates come from the stats consumers diffing snapshots)."""
        admitted = self.admitted.value
        shed = self.shed.value
        total = admitted + shed
        return (shed / total) if total else 0.0

    def stats(self):
        with self._lock:
            tenants = {
                key: {"weight": tenant.weight,
                      "in_flight": tenant.in_flight,
                      "admitted": tenant.admitted,
                      "shed": tenant.shed,
                      "deprioritized": tenant.deprioritized}
                for key, tenant in sorted(self._tenants.items())
            }
        return {
            "admitted": self.admitted.value,
            "shed": self.shed.value,
            "shed_rate": round(self.shed_rate(), 4),
            "in_flight": self._total_inflight,
            "max_inflight": self.max_inflight,
            "p99_latency_ms": round(self.latency.p99_ms(), 3),
            "tenants": tenants,
        }


class AutoscalePolicy:
    """When to grow/shrink the prefork fleet.

    Scale-up on ``up_consecutive`` ticks with shed-rate above
    ``shed_high`` or p99 above ``p99_high_ms``; scale-down on
    ``down_consecutive`` calm ticks (hysteresis, so the fleet does not
    flap around a noisy signal), with a cooldown after every action.
    """

    __slots__ = ("min_workers", "max_workers", "shed_high", "p99_high_ms",
                 "p99_low_ms", "interval_s", "up_consecutive",
                 "down_consecutive", "cooldown_s")

    def __init__(self, min_workers=1, max_workers=4, shed_high=0.02,
                 p99_high_ms=200.0, p99_low_ms=50.0, interval_s=0.5,
                 up_consecutive=2, down_consecutive=6, cooldown_s=2.0):
        if min_workers < 1 or max_workers < min_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.shed_high = shed_high
        self.p99_high_ms = p99_high_ms
        self.p99_low_ms = p99_low_ms
        self.interval_s = interval_s
        self.up_consecutive = up_consecutive
        self.down_consecutive = down_consecutive
        self.cooldown_s = cooldown_s


def fleet_signals(stats):
    """Aggregate (shed_rate, p99_ms, sheds, decisions) from a prefork
    ``stats()`` report: each worker's reactor stats ride the STATS pipe
    under ``server``/``admission``."""
    sheds = admitted = 0
    p99 = 0.0
    for report in stats.get("workers", ()):
        server = report.get("server") or {}
        p99 = max(p99, server.get("p99_latency_ms", 0.0) or 0.0)
        admission = server.get("admission") or {}
        sheds += admission.get("shed", 0)
        admitted += admission.get("admitted", 0)
    total = sheds + admitted
    rate = (sheds / total) if total else 0.0
    return rate, p99, sheds, total


class Autoscaler:
    """Drives ``prefork.scale_to`` from STATS-pipe signals.

    Shed-rate is computed over the *window between ticks* (diffing
    cumulative counters), so one historical burst cannot pin the fleet
    at max forever.
    """

    def __init__(self, prefork, policy=None):
        self.prefork = prefork
        self.policy = policy or AutoscalePolicy()
        self._thread = None
        self._stop = threading.Event()
        self._hot_ticks = 0
        self._calm_ticks = 0
        self._last_action_at = 0.0
        self._last_sheds = 0
        self._last_total = 0
        self.decisions = []  # (monotonic, action, workers, reason)

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(2.0)
            self._thread = None

    def _run(self):
        while not self._stop.wait(self.policy.interval_s):
            try:
                self.tick()
            except Exception:
                # A flaky stats poll (worker mid-restart) must not kill
                # the scaling loop.
                pass

    # -- one evaluation ----------------------------------------------------
    def tick(self, stats=None):
        """Evaluate signals once; returns the action taken (or None).
        Injectable ``stats`` makes the loop unit-testable without forks."""
        policy = self.policy
        if stats is None:
            stats = self.prefork.stats()
        rate, p99, sheds, total = fleet_signals(stats)
        window = total - self._last_total
        window_sheds = sheds - self._last_sheds
        self._last_total, self._last_sheds = total, sheds
        window_rate = (window_sheds / window) if window > 0 else 0.0

        hot = window_rate > policy.shed_high or p99 > policy.p99_high_ms
        calm = window_rate == 0.0 and p99 < policy.p99_low_ms
        self._hot_ticks = self._hot_ticks + 1 if hot else 0
        self._calm_ticks = self._calm_ticks + 1 if calm else 0

        now = time.monotonic()
        if now - self._last_action_at < policy.cooldown_s:
            return None
        workers = stats.get("worker_count", self.prefork.workers)
        if self._hot_ticks >= policy.up_consecutive \
                and workers < policy.max_workers:
            return self._act("up", workers + 1,
                             f"shed={window_rate:.3f} p99={p99:.1f}ms",
                             now)
        if self._calm_ticks >= policy.down_consecutive \
                and workers > policy.min_workers:
            return self._act("down", workers - 1, f"p99={p99:.1f}ms", now)
        return None

    def _act(self, action, target, reason, now):
        self.prefork.scale_to(target)
        self._last_action_at = now
        self._hot_ticks = 0
        self._calm_ticks = 0
        self.decisions.append((now, action, target, reason))
        return action
