"""Prefork multi-process serving: N reactor workers behind one port.

The PR 4 reactor parallelized I/O across event-loop *threads*, but every
thread shares one GIL — the scaling axis a single CPython process cannot
cross.  This tier forks N worker processes, each running its own full
reactor (built by ``app_factory`` in the child), so request processing
uses real cores.

Socket strategy
---------------

* ``SO_REUSEPORT`` (primary): the master binds once to pick the port,
  then each worker binds its *own* listener with ``SO_REUSEPORT`` — the
  kernel hashes incoming connections across the bound sockets, so there
  is no shared accept lock and no thundering herd.
* inherited-listener fallback: on platforms without the option the
  master keeps its bound listener and every forked worker accepts on the
  inherited fd (the classic prefork accept model).

Control plane
-------------

Each worker gets a ``socketpair`` control pipe speaking length-prefixed
JSON frames (the ``repro.ipc.wire`` framing): ``READY`` on startup,
``STATS`` polls, ``DRAIN`` for graceful retirement (stop accepting,
let in-flight requests finish, report final counters, exit) and ``STOP``
for immediate teardown.  The master's monitor thread detects crashed
workers with ``waitpid(WNOHANG)`` and forks replacements, and
``rolling_restart()`` hot-swaps the whole fleet one worker at a time —
each replacement is READY before its predecessor starts draining, so
the port is always served.

Accounting
----------

Every worker's counters are :class:`~repro.core.accounting.ShardedCounter`
cells *within* its process; across processes the master reconciles by
summing STATS/DRAINED reports plus the retained totals of retired
workers — ``stats()["requests_served"]`` equals what clients observed,
whichever worker served them.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time

from repro.ipc.wire import WireError, recv_frame, send_frame

from .httpd import NativeHttpServer, make_listener

#: Fault-injection hook (``repro.testing.chaos``); None in production.
_chaos = None


class PreforkError(Exception):
    """Master/worker orchestration failure (startup, drain, control)."""


def _send_msg(sock, message):
    try:
        send_frame(sock, json.dumps(message).encode("utf-8"))
    except (OSError, WireError) as exc:
        # A crashed worker's pipe may already be closed (the monitor
        # closes it when it replaces the worker); callers handle
        # PreforkError by falling back to the retained last report.
        raise PreforkError(f"control channel failed: {exc}") from None


def _recv_msg(sock, timeout=None, scratch=None):
    """One JSON control message.  ``scratch`` (a per-channel bytearray)
    lets the frame fill a preallocated buffer instead of allocating one
    per poll — the master polls every worker's stats on a timer, so the
    buffers would otherwise churn steadily for the server's lifetime."""
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        return json.loads(recv_frame(sock, scratch).decode("utf-8"))
    except socket.timeout:
        raise PreforkError("control-channel timeout") from None
    except (OSError, WireError, ValueError) as exc:
        raise PreforkError(f"control channel failed: {exc}") from None


class WorkerHandle:
    """Master-side record of one worker process."""

    __slots__ = ("pid", "control", "generation", "last_stats", "retiring",
                 "seq", "_pipe_lock", "_scratch")

    def __init__(self, pid, control, generation):
        self.pid = pid
        self.control = control
        self.generation = generation
        self.last_stats = {}
        self.retiring = False
        self.seq = 0
        self._pipe_lock = threading.Lock()
        # recv buffer for this handle's frames, reused under _pipe_lock.
        self._scratch = bytearray(65536)

    def request(self, message, timeout):
        """One sequence-tagged control round trip.

        The control pipe is one-reply-per-request; a reply that missed
        an earlier deadline would otherwise be consumed as the answer to
        the NEXT request (e.g. a stale STATS acknowledged as DRAINED and
        the worker killed mid-drain).  Tagging requests and discarding
        replies with older tags keeps the pipe self-healing, and the
        per-handle lock keeps concurrent callers (a stats() poll racing
        a rolling restart) from interleaving reads of one frame stream.
        """
        with self._pipe_lock:
            self.seq += 1
            message = dict(message, seq=self.seq)
            _send_msg(self.control, message)
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise PreforkError("control-channel timeout")
                reply = _recv_msg(self.control, timeout=remaining,
                                  scratch=self._scratch)
                if reply.get("seq") == self.seq:
                    self.control.settimeout(None)
                    return reply
                # stale reply from a timed-out earlier request: discard

    def __repr__(self):
        return f"<WorkerHandle pid={self.pid} gen={self.generation}>"


class PreforkServer:
    """Master process orchestrating N forked reactor workers.

    ``app_factory`` runs **in each child** after fork and returns the
    server to run there — a :class:`~repro.web.httpd.NativeHttpServer`,
    a :class:`~repro.web.jkweb.JKernelWebServer`, or anything exposing
    ``start(listener)`` / ``drain(timeout)`` / ``live_connections()`` /
    ``requests_served`` / ``stop()``.
    """

    def __init__(self, app_factory=None, *, host="127.0.0.1", port=0,
                 workers=2, reuse_port=None, ready_timeout=15.0,
                 drain_timeout=5.0, max_respawns=8):
        self.app_factory = app_factory or NativeHttpServer
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        if reuse_port is None:
            reuse_port = hasattr(socket, "SO_REUSEPORT")
        self.reuse_port = reuse_port
        self.ready_timeout = ready_timeout
        self.drain_timeout = drain_timeout
        self.max_respawns = max_respawns

        self._listener = None
        self._handles = []
        self._lock = threading.RLock()
        self._monitor = None
        self._running = False
        self._generation = 0
        self._retired_requests = 0
        self._crash_replacements = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        if self._running:
            return self
        listener = make_listener(self.host, self.port,
                                 reuse_port=self.reuse_port)
        self.port = listener.getsockname()[1]
        if self.reuse_port:
            # Each worker binds its own SO_REUSEPORT listener; the
            # master's reservation socket must close before workers
            # serve, or the kernel would hash a share of connections
            # into a queue nobody accepts from.
            listener.close()
        else:
            self._listener = listener
        self._running = True
        try:
            with self._lock:
                for _ in range(self.workers):
                    self._handles.append(self._spawn())
        except BaseException:
            self._running = False
            self._teardown_workers(graceful=False)
            if self._listener is not None:
                self._listener.close()
                self._listener = None
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True, name="prefork-monitor"
        )
        self._monitor.start()
        return self

    def stop(self):
        if not self._running:
            return
        self._running = False
        if self._monitor is not None:
            self._monitor.join(2.0)
            self._monitor = None
        self._teardown_workers(graceful=True)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    def __del__(self):  # best-effort: tests forgetting stop() leak no forks
        try:
            if self._running:
                self.stop()
        except Exception:
            pass

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # -- spawning ----------------------------------------------------------
    def _spawn(self):
        """Fork one worker; returns its handle once the worker is READY."""
        parent_side, child_side = socket.socketpair()
        self._generation += 1
        generation = self._generation
        pid = os.fork()
        if pid == 0:
            # -- child ----------------------------------------------------
            parent_side.close()
            status = 1
            try:
                self._worker_main(child_side)
                status = 0
            except BaseException:
                try:
                    _send_msg(child_side, {"type": "ERROR"})
                except Exception:
                    pass
            finally:
                os._exit(status)
        # -- parent -------------------------------------------------------
        child_side.close()
        handle = WorkerHandle(pid, parent_side, generation)
        try:
            ready = _recv_msg(parent_side, timeout=self.ready_timeout)
        except PreforkError:
            # A wedged child (e.g. a fork-inherited lock) would leak —
            # and, in reuse-port mode, could later bind the port as an
            # unsupervised orphan.  Reap it before propagating.
            self._kill(handle)
            raise
        if ready.get("type") != "READY":
            self._kill(handle)
            raise PreforkError(
                f"worker {pid} failed to start: {ready!r}"
            )
        parent_side.settimeout(None)
        return handle

    def _worker_main(self, control):
        """Child body: build the app, serve, obey the control pipe."""
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        # Drop the master-side control fds of sibling workers inherited
        # across fork: a sibling holding a copy would keep another
        # worker's control channel open after the master dies, defeating
        # the EOF-means-orphaned teardown below.
        for handle in self._handles:
            try:
                handle.control.close()
            except OSError:
                pass
        self._handles = []
        if self.reuse_port:
            listener = make_listener(self.host, self.port, reuse_port=True)
        else:
            listener = self._listener
        server = self.app_factory()
        server.start(listener)
        _send_msg(control, {"type": "READY", "pid": os.getpid(),
                            "port": self.port})
        scratch = bytearray(65536)
        while True:
            try:
                message = _recv_msg(control, scratch=scratch)
            except PreforkError:
                # Master died (EOF on the pipe): orphaned workers must
                # not linger and keep the port bound.
                server.stop()
                return
            kind = message.get("type")
            seq = message.get("seq")
            if _chaos is not None:
                # Chaos crash points: die between receiving a control
                # message and acting on it (the master must replace the
                # worker and keep its retained counters consistent).
                _chaos.crash_point("prefork.worker.message")
                if kind in ("STATS", "PING"):
                    _chaos.crash_point("prefork.worker.stats")
            if kind in ("STATS", "PING"):
                _send_msg(control, dict(self._worker_stats(server),
                                        seq=seq))
            elif kind == "DRAIN":
                server.drain(message.get("timeout", 5.0))
                final = self._worker_stats(server)
                final.update(type="DRAINED", seq=seq)
                server.stop()
                _send_msg(control, final)
                return
            elif kind == "STOP":
                final = self._worker_stats(server)
                final.update(type="STOPPED", seq=seq)
                server.stop()
                _send_msg(control, final)
                return

    @staticmethod
    def _worker_stats(server):
        stats = {
            "type": "STATS",
            "pid": os.getpid(),
            "requests_served": server.requests_served,
            "live_connections": server.live_connections(),
        }
        richer = getattr(server, "stats", None)
        if callable(richer):
            try:
                stats["server"] = richer()
            except Exception:
                pass
        try:
            from repro.core import get_accountant

            stats["accounts"] = get_accountant().report()
        except Exception:
            pass
        return stats

    # -- supervision -------------------------------------------------------
    def _monitor_loop(self):
        while self._running:
            time.sleep(0.05)
            with self._lock:
                for handle in list(self._handles):
                    if handle.retiring or handle not in self._handles:
                        continue
                    if not self._dead(handle):
                        continue
                    # Crashed: retain what it last reported, replace it.
                    self._retired_requests += handle.last_stats.get(
                        "requests_served", 0
                    )
                    try:
                        handle.control.close()
                    except OSError:
                        pass
                    if (not self._running
                            or self._crash_replacements >= self.max_respawns):
                        self._handles.remove(handle)
                        continue
                    try:
                        replacement = self._spawn()
                    except PreforkError:
                        self._handles.remove(handle)
                        continue
                    # Re-derive the slot NOW: earlier removals in this
                    # same pass shift positions, and a stale snapshot
                    # index would overwrite a live sibling's handle.
                    self._handles[self._handles.index(handle)] = replacement
                    self._crash_replacements += 1

    @staticmethod
    def _dead(handle):
        try:
            pid, _status = os.waitpid(handle.pid, os.WNOHANG)
        except ChildProcessError:
            return True
        return pid == handle.pid

    # -- autoscaling -------------------------------------------------------
    def scale_to(self, target):
        """Resize the fleet to ``target`` workers.

        Scale-up forks through the READY-gated :meth:`_spawn` path;
        scale-down reuses the rolling-restart drain machinery
        (:meth:`_retire`), so in-flight requests on departing workers
        finish and their counters fold into the retained totals.
        Returns the actual worker count afterwards.
        """
        if not self._running:
            raise PreforkError("prefork server is not running")
        target = max(1, int(target))
        while True:
            with self._lock:
                current = len(self._handles)
                if current < target:
                    self._handles.append(self._spawn())
                    continue
                if current > target:
                    # Retire the newest non-retiring worker.
                    victim = next(
                        (handle for handle in reversed(self._handles)
                         if not handle.retiring), None)
                    if victim is None:
                        return current
                    victim.retiring = True
                    self._handles.remove(victim)
                else:
                    self.workers = current
                    return current
            self._retire(victim)

    def autoscale(self, policy=None):
        """Start a :class:`repro.web.control.Autoscaler` driving
        :meth:`scale_to` from this master's shed-rate and p99 signals.
        Returns the (already started) autoscaler; stop it with its
        ``stop()`` before stopping the server."""
        from .control import Autoscaler, AutoscalePolicy

        scaler = Autoscaler(self, policy or AutoscalePolicy())
        scaler.start()
        return scaler

    # -- rolling restart ---------------------------------------------------
    def rolling_restart(self):
        """Hot-swap every worker, one at a time, without dropping the
        port: fork the replacement, wait until it is READY (and, in
        reuse-port mode, bound), then drain and retire the old worker.
        """
        if not self._running:
            raise PreforkError("prefork server is not running")
        with self._lock:
            old_handles = list(self._handles)
        for old in old_handles:
            with self._lock:
                if old not in self._handles:
                    continue  # crashed and replaced mid-rotation
                replacement = self._spawn()
                old.retiring = True
                self._handles[self._handles.index(old)] = replacement
            self._retire(old)
        return self

    def _retire(self, handle):
        """Graceful worker retirement: DRAIN, fold its final counters
        into the retained totals, reap the process."""
        try:
            final = handle.request({"type": "DRAIN",
                                    "timeout": self.drain_timeout},
                                   timeout=self.drain_timeout + 5.0)
            with self._lock:
                self._retired_requests += final.get("requests_served", 0)
        except PreforkError:
            with self._lock:
                self._retired_requests += handle.last_stats.get(
                    "requests_served", 0
                )
        finally:
            self._kill(handle)

    def _kill(self, handle, wait=2.0):
        try:
            handle.control.close()
        except OSError:
            pass
        deadline = time.monotonic() + wait
        while time.monotonic() < deadline:
            try:
                pid, _status = os.waitpid(handle.pid, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == handle.pid:
                return
            time.sleep(0.01)
        try:
            os.kill(handle.pid, signal.SIGKILL)
            os.waitpid(handle.pid, 0)
        except OSError:
            pass

    def _teardown_workers(self, graceful):
        with self._lock:
            handles, self._handles = self._handles, []
        for handle in handles:
            if graceful:
                try:
                    final = handle.request({"type": "STOP"}, timeout=5.0)
                    self._retired_requests += final.get(
                        "requests_served", 0
                    )
                except PreforkError:
                    self._retired_requests += handle.last_stats.get(
                        "requests_served", 0
                    )
            self._kill(handle)

    # -- introspection -----------------------------------------------------
    def worker_pids(self):
        with self._lock:
            return [handle.pid for handle in self._handles]

    def stats(self):
        """Cross-process reconciliation: per-worker reports plus retained
        totals of every retired/crashed worker."""
        polled = []
        with self._lock:
            handles = list(self._handles)
        for handle in handles:
            try:
                report = handle.request({"type": "STATS"}, timeout=5.0)
                handle.last_stats = report
            except PreforkError:
                report = dict(handle.last_stats)
                report["stale"] = True
            polled.append((handle, report))
        # Sum under the lock, counting only handles STILL in the fleet:
        # the monitor folds a crashed worker's last_stats into
        # _retired_requests and swaps the handle out atomically, so a
        # stale report for a replaced handle would double-count.
        with self._lock:
            reports = [report for handle, report in polled
                       if handle in self._handles]
            retired = self._retired_requests
            crash_replacements = self._crash_replacements
        return {
            "workers": reports,
            "worker_count": len(reports),
            "requests_served": retired + sum(
                report.get("requests_served", 0) for report in reports
            ),
            "retired_requests": retired,
            "crash_replacements": crash_replacements,
            "reuse_port": self.reuse_port,
            "port": self.port,
        }
