"""The LRMI calling convention (paper §3).

"Arguments and return values are passed by reference if they are also
capabilities, but they are passed by copy if they are primitive types or
non-capability objects.  When an object is copied, these rules are applied
recursively to the data in the object's fields, so that a deep copy of the
object is made.  The effect is that only capabilities can be shared between
protection domains and references to regular objects are confined to single
domains."

Mechanism selection per value (paper §3.1):

* capabilities — by reference, always;
* immutable primitives — as-is (copying is unobservable);
* classes registered with :func:`~repro.core.fastcopy.fast_copy` — the
  generated fast-copy code;
* built-in containers and classes registered ``@serializable`` — the
  serializer (byte-array round trip), unless ``mode="fast"`` forces the
  direct structural path;
* anything else — :class:`NotSerializableError`.
"""

from __future__ import annotations

from . import fastcopy as _fastcopy
from . import serial as _serial
from .errors import NotSerializableError, RemoteException

_IMMUTABLE_TYPES = frozenset(
    {int, float, bool, str, bytes, complex, type(None), range}
)

_CONTAINER_TYPES = (list, tuple, dict, set, frozenset, bytearray)

MODE_AUTO = "auto"
MODE_SERIAL = "serial"
MODE_FAST = "fast"

_MODES = frozenset({MODE_AUTO, MODE_SERIAL, MODE_FAST})


def check_mode(mode):
    if mode not in _MODES:
        raise ValueError(f"unknown copy mode {mode!r}; one of {sorted(_MODES)}")
    return mode


def transfer(value, mode=MODE_AUTO, memo=None,
             serial_registry=None, fastcopy_registry=None):
    """Copy one value across a domain boundary per the calling convention."""
    value_type = type(value)
    if value_type in _IMMUTABLE_TYPES:
        return value

    from .capability import Capability

    if isinstance(value, Capability):
        return value

    fc_registry = fastcopy_registry or _fastcopy.DEFAULT_REGISTRY
    info = None if mode == MODE_SERIAL else fc_registry.lookup(value_type)
    if info is not None:
        if info.cyclic and memo is None:
            memo = {}

        def field_transfer(field_value, field_memo):
            return transfer(
                field_value, mode=mode, memo=field_memo,
                serial_registry=serial_registry,
                fastcopy_registry=fastcopy_registry,
            )

        return info.copier(value, memo, field_transfer)

    if mode == MODE_FAST and isinstance(value, _CONTAINER_TYPES):
        return _structural_copy(
            value, mode, memo, serial_registry, fastcopy_registry
        )

    registry = serial_registry or _serial.DEFAULT_REGISTRY
    if (
        isinstance(value, _CONTAINER_TYPES)
        or registry.knows(value_type)
        or isinstance(value, BaseException)
    ):
        return _serial.copy_via_serialization(value, registry)

    raise NotSerializableError(
        f"cannot pass {value_type.__qualname__} across domains: not a "
        "capability, not primitive, and no copy mechanism is registered"
    )


def _structural_copy(value, mode, memo, serial_registry, fastcopy_registry):
    """Direct container copy used in forced-fast mode (no byte array)."""
    if memo is None:
        memo = {}
    hit = memo.get(id(value))
    if hit is not None:
        return hit

    def item(element):
        return transfer(element, mode=mode, memo=memo,
                        serial_registry=serial_registry,
                        fastcopy_registry=fastcopy_registry)

    value_type = type(value)
    if value_type is list:
        copied = []
        memo[id(value)] = copied
        copied.extend(item(element) for element in value)
        return copied
    if value_type is dict:
        copied = {}
        memo[id(value)] = copied
        for key, element in value.items():
            copied[item(key)] = item(element)
        return copied
    if value_type is bytearray:
        copied = bytearray(value)
        memo[id(value)] = copied
        return copied
    copied = value_type(item(element) for element in value)
    memo[id(value)] = copied
    return copied


def transfer_args(args, kwargs=None, mode=MODE_AUTO,
                  serial_registry=None, fastcopy_registry=None):
    """Apply the calling convention to a full argument list."""
    copied_args = tuple(
        transfer(arg, mode=mode, serial_registry=serial_registry,
                 fastcopy_registry=fastcopy_registry)
        for arg in args
    )
    if not kwargs:
        return copied_args, {}
    copied_kwargs = {
        name: transfer(value, mode=mode, serial_registry=serial_registry,
                       fastcopy_registry=fastcopy_registry)
        for name, value in kwargs.items()
    }
    return copied_args, copied_kwargs


def transfer_exception(exc, mode=MODE_AUTO, serial_registry=None,
                       fastcopy_registry=None):
    """Copy a callee exception for re-raising in the caller.

    Kernel-level RemoteExceptions pass through unchanged (they carry no
    domain state); other exceptions are copied like any value, falling back
    to a RemoteException wrapper carrying the repr when uncopyable.
    """
    if isinstance(exc, RemoteException):
        return exc
    try:
        return transfer(exc, mode=mode, serial_registry=serial_registry,
                        fastcopy_registry=fastcopy_registry)
    except NotSerializableError:
        return RemoteException(
            f"{type(exc).__qualname__} in callee domain: {exc}"
        )
