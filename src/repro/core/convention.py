"""The LRMI calling convention (paper §3).

"Arguments and return values are passed by reference if they are also
capabilities, but they are passed by copy if they are primitive types or
non-capability objects.  When an object is copied, these rules are applied
recursively to the data in the object's fields, so that a deep copy of the
object is made.  The effect is that only capabilities can be shared between
protection domains and references to regular objects are confined to single
domains."

Mechanism selection per value (paper §3.1):

* capabilities — by reference, always;
* immutable primitives — as-is (copying is unobservable);
* classes registered with :func:`~repro.core.fastcopy.fast_copy` — the
  generated fast-copy code;
* built-in containers — specialized structural deep copy (auto and
  ``mode="fast"``), or the serializer when ``mode="serial"`` forces the
  byte-array round trip;
* classes registered ``@serializable`` — the serializer;
* anything else — :class:`NotSerializableError`.

Dispatch
--------

The common case (``mode="auto"``, default registries) is served by a
type-indexed dispatch table: ``_DISPATCH[type] -> handler(value, memo)``.
Handlers are installed once — at module import for immutables and
containers, at class-registration time for ``@fast_copy``/``@serializable``
classes, and lazily for capability stub classes — so a transfer is one
dict probe instead of an isinstance chain, and fast-copy fields recurse
through a module-level function instead of a closure rebuilt per call.

Container handlers are *scan-then-copy*: a C-speed
``frozenset.issuperset(map(type, ...))`` scan detects the homogeneous
all-immutable case (every servlet header dict, every numeric payload
list) and copies it with one builtin call — no per-element dispatch, no
byte array, no memo.  Mixed containers take the per-element path, and the
back-reference memo dict is only allocated at that point — i.e. not until
a second reference to something mutable is actually possible.
"""

from __future__ import annotations

from . import fastcopy as _fastcopy
from . import serial as _serial
from .errors import NotSerializableError, RemoteException

_IMMUTABLE_TYPES = _fastcopy.IMMUTABLE_TYPES

_CONTAINER_TYPES = (list, tuple, dict, set, frozenset, bytearray)
_EXACT_CONTAINERS = frozenset(_CONTAINER_TYPES)

#: Bound C-level scan: True when every mapped type is an immutable
#: primitive (used as ``_all_immutable(map(type, items))``).
_all_immutable = _IMMUTABLE_TYPES.issuperset

MODE_AUTO = "auto"
MODE_SERIAL = "serial"
MODE_FAST = "fast"

# Maps each accepted mode to its canonical (identity-comparable) constant.
_MODES = {MODE_AUTO: MODE_AUTO, MODE_SERIAL: MODE_SERIAL,
          MODE_FAST: MODE_FAST}


def check_mode(mode):
    canonical = _MODES.get(mode)
    if canonical is None:
        raise ValueError(
            f"unknown copy mode {mode!r}; one of {sorted(_MODES)}"
        )
    return canonical


# -- the auto-mode dispatch table ---------------------------------------------
#
# Only consulted when mode is "auto" and both registries are the process
# defaults; every other combination takes the general path below.

_DISPATCH = {}


def _identity(value, memo):
    return value


def _serial_copy(value, memo):
    # Serialization tracks shared/cyclic structure internally; the
    # transfer memo does not cross into the byte stream, but the finished
    # copy is recorded in it so the same instance referenced twice from a
    # structurally-copied container still copies once.  (Sub-structure
    # shared *between* two separately-serialized instances is not
    # tracked — each @serializable instance is its own stream, exactly as
    # fast-copy field recursion has always treated them.)
    if memo is not None:
        hit = memo.get(id(value))
        if hit is not None:
            return hit
    copied = _serial.copy_via_serialization(value, None)
    if memo is not None:
        memo[id(value)] = copied
    return copied


def _copy_list(value, memo):
    if memo is not None:
        hit = memo.get(id(value))
        if hit is not None:
            return hit
    if _all_immutable(map(type, value)):
        copied = value.copy()
        if memo is not None:
            memo[id(value)] = copied
        return copied
    if memo is None:
        memo = {}
    copied = []
    memo[id(value)] = copied
    append = copied.append
    dispatch = _DISPATCH
    for item in value:
        handler = dispatch.get(type(item))
        append(handler(item, memo) if handler is not None
               else transfer(item, MODE_AUTO, memo))
    return copied


def _copy_tuple(value, memo):
    # A tuple whose elements are all immutable is itself deeply immutable:
    # sharing it across domains is unobservable, so it passes as-is (the
    # same early exit transfer_args applies to whole argument tuples).
    if _all_immutable(map(type, value)):
        return value
    if memo is not None:
        hit = memo.get(id(value))
        if hit is not None:
            return hit
    else:
        memo = {}
    dispatch = _DISPATCH
    items = []
    append = items.append
    for item in value:
        handler = dispatch.get(type(item))
        append(handler(item, memo) if handler is not None
               else transfer(item, MODE_AUTO, memo))
    copied = tuple(items)
    memo[id(value)] = copied
    return copied


def _copy_dict(value, memo):
    if memo is not None:
        hit = memo.get(id(value))
        if hit is not None:
            return hit
    if _all_immutable(map(type, value)) \
            and _all_immutable(map(type, value.values())):
        copied = value.copy()
        if memo is not None:
            memo[id(value)] = copied
        return copied
    if memo is None:
        memo = {}
    copied = {}
    memo[id(value)] = copied
    dispatch = _DISPATCH
    for key, item in value.items():
        handler = dispatch.get(type(key))
        copied_key = (handler(key, memo) if handler is not None
                      else transfer(key, MODE_AUTO, memo))
        handler = dispatch.get(type(item))
        copied[copied_key] = (handler(item, memo) if handler is not None
                              else transfer(item, MODE_AUTO, memo))
    return copied


def _copy_set(value, memo):
    if memo is not None:
        hit = memo.get(id(value))
        if hit is not None:
            return hit
    if _all_immutable(map(type, value)):
        copied = value.copy()
    else:
        if memo is None:
            memo = {}  # elements may share substructure
        copied = {
            transfer(item, MODE_AUTO, memo) for item in value
        }
    if memo is not None:
        memo[id(value)] = copied
    return copied


def _copy_frozenset(value, memo):
    if _all_immutable(map(type, value)):
        return value  # deeply immutable, sharing is unobservable
    if memo is not None:
        hit = memo.get(id(value))
        if hit is not None:
            return hit
    else:
        memo = {}  # elements may share substructure
    copied = frozenset(transfer(item, MODE_AUTO, memo) for item in value)
    memo[id(value)] = copied
    return copied


def _copy_bytearray(value, memo):
    if memo is not None:
        hit = memo.get(id(value))
        if hit is not None:
            return hit
    copied = bytearray(value)
    if memo is not None:
        memo[id(value)] = copied
    return copied


for _t in _IMMUTABLE_TYPES:
    _DISPATCH[_t] = _identity
_DISPATCH[list] = _copy_list
_DISPATCH[tuple] = _copy_tuple
_DISPATCH[dict] = _copy_dict
_DISPATCH[set] = _copy_set
_DISPATCH[frozenset] = _copy_frozenset
_DISPATCH[bytearray] = _copy_bytearray
del _t


def _auto_field_transfer(value, memo):
    """Field recursion for auto-mode fast-copy: replaces the per-call
    ``field_transfer`` closure the old transfer() allocated."""
    handler = _DISPATCH.get(type(value))
    if handler is not None:
        return handler(value, memo)
    return transfer(value, MODE_AUTO, memo)


def _install_fastcopy_handler(info):
    """Dispatch entry for one registered fast-copy class (default
    registry).  Overwrites any serializer entry: auto mode prefers the
    generated copy code, exactly as the general path does."""
    copier = info.copier
    if info.cyclic:
        def handler(value, memo):
            if memo is None:
                memo = {}
            return copier(value, memo, _auto_field_transfer)
    else:
        def handler(value, memo):
            return copier(value, memo, _auto_field_transfer)
    _DISPATCH[info.cls] = handler


def _install_serial_handler(cls):
    """Dispatch entry for one ``@serializable`` class (default registry).
    Skipped when the class is also fast-copy registered — fast copy wins
    in auto mode regardless of registration order — and for sealed
    classes, whose serial registration exists only so explicit ``dumps``
    (the cross-process wire) can encode them: in-process transfers keep
    passing them by reference."""
    if cls in _SEALED_TYPES:
        return
    if not _fastcopy.DEFAULT_REGISTRY.knows(cls):
        _DISPATCH[cls] = _serial_copy


def register_reference_type(cls):
    """Mark a type as crossing by reference (capability stub classes)."""
    _DISPATCH[cls] = _identity


def unregister_reference_type(cls):
    """Forget a by-reference type (stub-cache clearing)."""
    if _DISPATCH.get(cls) is _identity:
        del _DISPATCH[cls]


#: Sealed (validated deeply-immutable) classes: by reference in EVERY
#: mode — forcing ``mode="serial"`` round-trips mutable payloads through
#: bytes, but an immutable value has nothing a byte round-trip could
#: decouple, exactly as str/bytes already behave under serial mode.
_SEALED_TYPES = set()

#: Types whose values skip the transfer call entirely: the immutable
#: primitives plus every sealed class.  Compiled stubs test argument and
#: result types against this set inline, so sealed values cross a
#: boundary without a single function call.
PASS_BY_REFERENCE = set(_IMMUTABLE_TYPES)


def register_sealed_type(cls):
    """Mark a sealed class (see ``repro.core.sealed``) as by-reference."""
    _SEALED_TYPES.add(cls)
    PASS_BY_REFERENCE.add(cls)
    _DISPATCH[cls] = _identity


# Registration hooks: the default registries notify the dispatch table.
_fastcopy.DEFAULT_REGISTRY._on_register = _install_fastcopy_handler
_serial.DEFAULT_REGISTRY._on_register = _install_serial_handler
def _replay_default_registrations():
    for descriptor in list(_serial.DEFAULT_REGISTRY._by_class.values()):
        _install_serial_handler(descriptor.cls)
    for info in list(_fastcopy.DEFAULT_REGISTRY._by_class.values()):
        _install_fastcopy_handler(info)


_replay_default_registrations()


#: Lazily bound ``repro.core.capability.Capability`` (import cycle guard).
_Capability = None


def transfer(value, mode=MODE_AUTO, memo=None,
             serial_registry=None, fastcopy_registry=None):
    """Copy one value across a domain boundary per the calling convention."""
    if serial_registry is None and fastcopy_registry is None \
            and (mode == MODE_AUTO or mode == MODE_FAST):
        # With the default registries, auto and forced-fast agree on
        # every dispatch-table type (containers are structural either
        # way), so both ride the table.
        handler = _DISPATCH.get(type(value))
        if handler is not None:
            return handler(value, memo)
    return _transfer_general(value, mode, memo, serial_registry,
                             fastcopy_registry)


def _transfer_general(value, mode, memo, serial_registry, fastcopy_registry):
    value_type = type(value)
    if value_type in _IMMUTABLE_TYPES or value_type in _SEALED_TYPES:
        return value

    global _Capability
    if _Capability is None:
        from .capability import Capability
        _Capability = Capability

    if isinstance(value, _Capability):
        # Teach the dispatch table this stub class for next time.
        _DISPATCH.setdefault(value_type, _identity)
        return value

    fc_registry = fastcopy_registry or _fastcopy.DEFAULT_REGISTRY
    info = None if mode == MODE_SERIAL else fc_registry.lookup(value_type)
    if info is not None:
        if info.cyclic and memo is None:
            memo = {}

        def field_transfer(field_value, field_memo):
            return transfer(
                field_value, mode=mode, memo=field_memo,
                serial_registry=serial_registry,
                fastcopy_registry=fastcopy_registry,
            )

        return info.copier(value, memo, field_transfer)

    registry = serial_registry or _serial.DEFAULT_REGISTRY
    if isinstance(value, _CONTAINER_TYPES):
        # Forced-fast always copies containers structurally.  Auto mode
        # also copies *subclasses* of the builtin containers structurally
        # (they cannot ride the serializer's exact-type wire tags) unless
        # the subclass is itself registered serializable.
        if mode == MODE_FAST or (
            value_type not in _EXACT_CONTAINERS
            and not registry.knows(value_type)
        ):
            return _structural_copy(
                value, mode, memo, serial_registry, fastcopy_registry
            )

    if (
        isinstance(value, _CONTAINER_TYPES)
        or registry.knows(value_type)
        or isinstance(value, BaseException)
    ):
        return _serial.copy_via_serialization(value, registry)

    raise NotSerializableError(
        f"cannot pass {value_type.__qualname__} across domains: not a "
        "capability, not primitive, and no copy mechanism is registered"
    )


def _structural_copy(value, mode, memo, serial_registry, fastcopy_registry):
    """Direct container copy used in forced-fast mode (no byte array).

    Only reached with non-default registries (or container subclasses):
    the default-registry fast mode rides the dispatch-table handlers, so
    this path stays generic per-element — correctness over scan
    micro-optimization."""
    value_type = type(value)
    if value_type is tuple and _all_immutable(map(type, value)):
        return value  # deeply immutable, sharing is unobservable
    if memo is None:
        memo = {}
        hit = None
    else:
        hit = memo.get(id(value))
    if hit is not None:
        return hit
    if value_type is bytearray:
        copied = bytearray(value)
        memo[id(value)] = copied
        return copied

    def item(element):
        return transfer(element, mode=mode, memo=memo,
                        serial_registry=serial_registry,
                        fastcopy_registry=fastcopy_registry)

    if value_type is list:
        copied = []
        memo[id(value)] = copied
        copied.extend(item(element) for element in value)
        return copied
    if isinstance(value, dict):
        # Dict protocol, not iteration: iterating a dict yields keys only,
        # which would silently drop values for Counter-like subclasses.
        try:
            copied = value_type()
        except Exception:
            raise NotSerializableError(
                f"cannot structurally copy {value_type.__qualname__}: "
                "no zero-argument constructor"
            ) from None
        memo[id(value)] = copied
        for key, element in value.items():
            copied[item(key)] = item(element)
        return copied
    try:
        copied = value_type(item(element) for element in value)
    except NotSerializableError:
        raise
    except Exception as exc:
        raise NotSerializableError(
            f"cannot structurally copy {value_type.__qualname__}: "
            f"reconstruction from elements failed ({exc!r})"
        ) from exc
    memo[id(value)] = copied
    return copied


def transfer_args(args, kwargs=None, mode=MODE_AUTO,
                  serial_registry=None, fastcopy_registry=None):
    """Apply the calling convention to a full argument list.

    All-immutable argument tuples are returned as-is: the tuple and every
    element are unshareable-state-free, so no copy is observable.
    """
    if mode == MODE_AUTO and serial_registry is None \
            and fastcopy_registry is None:
        for arg in args:
            if type(arg) not in _IMMUTABLE_TYPES:
                break
        else:
            if not kwargs:
                return args, {}
    copied_args = tuple(
        transfer(arg, mode=mode, serial_registry=serial_registry,
                 fastcopy_registry=fastcopy_registry)
        for arg in args
    )
    if not kwargs:
        return copied_args, {}
    copied_kwargs = {
        name: transfer(value, mode=mode, serial_registry=serial_registry,
                       fastcopy_registry=fastcopy_registry)
        for name, value in kwargs.items()
    }
    return copied_args, copied_kwargs


def transfer_exception(exc, mode=MODE_AUTO, serial_registry=None,
                       fastcopy_registry=None):
    """Copy a callee exception for re-raising in the caller.

    Kernel-level RemoteExceptions pass through unchanged (they carry no
    domain state); other exceptions are copied like any value, falling back
    to a RemoteException wrapper carrying the repr when uncopyable.
    """
    if isinstance(exc, RemoteException):
        return exc
    try:
        return transfer(exc, mode=mode, serial_registry=serial_registry,
                        fastcopy_registry=fastcopy_registry)
    except NotSerializableError:
        return RemoteException(
            f"{type(exc).__qualname__} in callee domain: {exc}"
        )
