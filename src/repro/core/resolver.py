"""Per-domain code loading through resolvers (paper §3.1).

"Each domain has its own class namespace that maps names to classes. …
A domain's namespace is controlled by a user-defined resolver, which is
queried by the J-Kernel whenever a new class name is encountered."

Hosted analogue: a domain loads source code through its
:class:`DomainResolver`, which executes it in a *restricted namespace*
containing only (a) a whitelist of safe builtins and (b) names explicitly
granted to the domain (shared classes, capabilities, the per-domain
``println``).  The dangerous ambient names — ``open``, ``__import__``,
``eval``, ``exec`` — simply do not exist in that namespace, the same move
the J-Kernel makes by hiding problematic system classes.

This controls the *namespace*, not CPython memory safety: hostile Python
can still escape via reflection.  Enforced isolation against hostile code
is the MiniJVM path (``repro.jkvm``); this resolver provides the paper's
fail-isolation for cooperating-but-buggy components (the CS314 situation:
"servlets are developed by the trusted course staff, malicious attack is
not a source of concern").
"""

from __future__ import annotations

import builtins
import types

from .errors import DomainError

_SAFE_BUILTIN_NAMES = (
    # class machinery (class statements need __build_class__)
    "__build_class__", "classmethod", "staticmethod", "property", "super",
    # types & constructors
    "bool", "bytearray", "bytes", "complex", "dict", "float", "frozenset",
    "int", "list", "object", "set", "str", "tuple", "type",
    # functions
    "abs", "all", "any", "callable", "chr", "divmod", "enumerate", "filter",
    "format", "hash", "hex", "isinstance", "issubclass", "iter", "len",
    "map", "max", "min", "next", "oct", "ord", "pow", "range", "repr",
    "reversed", "round", "slice", "sorted", "sum", "zip",
    # exceptions
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "Exception", "IndexError", "KeyError", "LookupError", "NameError",
    "NotImplementedError", "OverflowError", "RuntimeError", "StopIteration",
    "TypeError", "ValueError", "ZeroDivisionError",
    # constants
    "True", "False", "None", "NotImplemented",
)

SAFE_BUILTINS = types.MappingProxyType({
    name: getattr(builtins, name)
    for name in _SAFE_BUILTIN_NAMES
    if hasattr(builtins, name)
})


class DomainResolver:
    """Controls what names code loaded into a domain can see."""

    def __init__(self, domain, grants=None):
        self.domain = domain
        self._grants = dict(grants or {})

    def grant(self, name, value):
        """Make ``value`` visible under ``name`` to loaded code."""
        self._grants[name] = value
        return self

    def grant_many(self, mapping):
        self._grants.update(mapping)
        return self

    def granted(self, name):
        return self._grants.get(name)

    def granted_names(self):
        return sorted(self._grants)

    def deny(self, name):
        self._grants.pop(name, None)
        return self

    def build_globals(self, module_name):
        """The restricted global namespace for one module."""
        scope = {
            "__builtins__": dict(SAFE_BUILTINS),
            "__name__": module_name,
            "__domain__": self.domain.name,
            # the interposed per-domain System.out:
            "println": self.domain.println,
        }
        scope.update(self._grants)
        return scope

    def load_module(self, module_name, source):
        """Compile and execute ``source`` in the restricted namespace.

        Returns a module-like namespace object; also recorded in the
        domain so later loads can reference it by name.
        """
        if self.domain.terminated:
            raise DomainError(f"domain {self.domain.name} terminated")
        code = compile(
            source, f"<domain {self.domain.name}:{module_name}>", "exec"
        )
        scope = self.build_globals(module_name)
        with self.domain.context():
            exec(code, scope)
        public = {
            name: value
            for name, value in scope.items()
            if not name.startswith("__")
        }
        module = types.SimpleNamespace(**public)
        self.domain._modules[module_name] = module
        return module
