"""J-Kernel error hierarchy.

Mirrors the RMI-flavoured design of the paper: every cross-domain failure
surfaces as a :class:`RemoteException` (or subclass) in the caller, so a
caller can catch one exception type at every capability call site and be
guaranteed correct failure propagation — including when the callee domain
has been terminated or the capability revoked.
"""

from __future__ import annotations


class JKernelError(Exception):
    """Base class for all J-Kernel errors."""


class RemoteException(JKernelError):
    """A cross-domain call failed.

    Raised for revoked capabilities, terminated domains, uncopyable
    arguments and callee-side exceptions that could not be copied back.
    """


class RevokedException(RemoteException):
    """The capability was revoked; all uses throw (paper §3)."""


class DomainTerminatedException(RevokedException):
    """The creating domain terminated, revoking all of its capabilities."""


class RegionRevokedError(RevokedException):
    """A sealed shared-memory region was revoked (``repro.core.regions``).

    The MPK-style grant model: a domain *grants* a region to a callee
    for the duration of a call and the kernel *revokes* the view when
    the call returns — any later access through the view raises this,
    never stale bytes.  Also raised for stale-generation grants (a
    recycled or respawned segment) and reads of a region whose owner
    revoked it or died.  A :class:`RevokedException` subclass so every
    existing revocation-handling path treats it identically.
    """


class SegmentStoppedException(RemoteException):
    """This thread segment was stopped (the segment-local ``Thread.stop``)."""


class DomainUnavailableException(RemoteException):
    """An out-of-process domain cannot be reached.

    Raised by the cross-process LRMI transport (``repro.ipc.lrmi``) when
    the host process is dead, the wire connection drops mid-call, or a
    reply times out.  Distinct from :class:`RevokedException`: the
    capability may still be live — its *process* is gone — so callers
    (e.g. the web layer's system servlet) map it to a retryable 503
    rather than a permanent failure.
    """


class QuotaExceededException(RemoteException):
    """A domain exhausted a hard resource budget (``repro.core.quota``).

    The kernel's enforcement answer to the paper's resource-accounting
    section: the accounting machinery *measures* what crosses into a
    domain; a quota turns the measurement into a budget, and exhausting
    the hard limit terminates the domain through the same revoke/teardown
    path ``Domain.terminate`` has always guaranteed.  Callers racing the
    kill see this exception (or the 503 the web layer maps it to), never
    a hang or a half-dead domain.
    """


class AccessDeniedError(RemoteException):
    """A stack-based access-control check failed (``repro.core.policy``).

    Raised when a guarded capability is invoked — or ``check_permission``
    is called — while some protection domain on the effective call chain
    lacks the required permission.  The chain is the LRMI segment stack
    (every domain the request passed through), truncated at the most
    recent ``do_privileged`` scope and extended by the compressed caller
    context a cross-process call frame carried in.  A ``RemoteException``
    subclass so it propagates through every existing failure path; the
    web layer maps it to a typed 403 rather than a 500.
    """

    def __init__(self, message, permission=None, domain=None):
        # All three ride in ``args`` so the wire rebuild (``cls(*args)``)
        # preserves the typed fields across process boundaries.
        super().__init__(message, permission, domain)
        self.permission = permission
        self.domain = domain

    def __str__(self):
        return str(self.args[0]) if self.args else ""


class NotSerializableError(RemoteException):
    """A value crossing a domain boundary has no registered copy mechanism."""


class RemoteInterfaceError(JKernelError):
    """A target object does not implement any valid remote interface."""


class SharingError(JKernelError):
    """A class violates the shared-class rules (static state, or its
    referenced classes are not shared along with it — paper §3.1 fn. 3)."""


class NameAlreadyBoundError(JKernelError):
    """Repository bind() on a name that is already bound."""


class NameNotBoundError(JKernelError):
    """Repository lookup()/unbind() on an unknown name."""


class DomainError(JKernelError):
    """Invalid domain operation (e.g. acting on a terminated domain)."""
