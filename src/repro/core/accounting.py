"""Per-domain resource accounting (paper §2, "Resource Accounting").

The paper identifies accounting as an open problem for share-anything
systems: shared objects have no clear owner.  The J-Kernel architecture
makes it tractable — objects never cross domains, only copies do — so this
module implements the natural policy:

* a domain is charged for what is copied *into* it (arguments of calls it
  receives, results of calls it makes), and
* explicit allocations recorded by cooperative code.

Charges are attributed to the domain of the thread's current segment at
copy time; the serializer reports byte counts through an observer hook.
"""

from __future__ import annotations

import threading

from . import segments


class ResourceAccount:
    """Counters for one domain."""

    __slots__ = ("bytes_copied_in", "copy_operations", "allocations",
                 "allocated_bytes")

    def __init__(self):
        self.bytes_copied_in = 0
        self.copy_operations = 0
        self.allocations = 0
        self.allocated_bytes = 0

    def snapshot(self):
        return {
            "bytes_copied_in": self.bytes_copied_in,
            "copy_operations": self.copy_operations,
            "allocations": self.allocations,
            "allocated_bytes": self.allocated_bytes,
        }


class Accountant:
    """Holds per-domain accounts and plugs into the copy machinery."""

    def __init__(self):
        self._lock = threading.Lock()
        self._accounts = {}

    def account(self, domain):
        # Fast path: racy read of the accounts dict (a single C-level
        # lookup, safe under the GIL); the lock is only taken to create a
        # missing account exactly once.
        found = self._accounts.get(domain.name)
        if found is not None:
            return found
        with self._lock:
            found = self._accounts.get(domain.name)
            if found is None:
                found = self._accounts[domain.name] = ResourceAccount()
            return found

    def charge_copy(self, nbytes, domain=None):
        """Charge one serialized copy to the receiving domain."""
        target = domain or segments.current_domain()
        if target is None:
            return
        account = self.account(target)
        account.bytes_copied_in += nbytes
        account.copy_operations += 1

    def charge_allocation(self, nbytes, domain=None):
        target = domain or segments.current_domain()
        if target is None:
            return
        account = self.account(target)
        account.allocations += 1
        account.allocated_bytes += nbytes

    def release_domain(self, domain):
        """Forget a terminated domain's charges (its memory is reclaimed
        when its capabilities are revoked, so the account closes)."""
        with self._lock:
            return self._accounts.pop(domain.name, None)

    def report(self):
        with self._lock:
            return {
                name: account.snapshot()
                for name, account in sorted(self._accounts.items())
            }


_default = Accountant()


def get_accountant():
    return _default


def install(accountant=None):
    """Start charging serialized copies to receiving domains."""
    from . import serial

    target = accountant or _default
    serial.set_copy_observer(lambda nbytes: target.charge_copy(nbytes))
    return target


def uninstall():
    from . import serial

    serial.set_copy_observer(None)
