"""Per-domain resource accounting (paper §2, "Resource Accounting").

The paper identifies accounting as an open problem for share-anything
systems: shared objects have no clear owner.  The J-Kernel architecture
makes it tractable — objects never cross domains, only copies do — so this
module implements the natural policy:

* a domain is charged for what is copied *into* it (arguments of calls it
  receives, results of calls it makes),
* explicit allocations recorded by cooperative code, and
* requests serviced by the domain (the web layer charges one request per
  servlet invocation that completes in the domain, so traffic can be
  attributed and reconciled per servlet).

Charges are attributed to the domain of the thread's current segment at
copy time; the serializer reports byte counts through an observer hook.

Charges arrive concurrently — from LRMI caller threads, HTTP event loops
and domain worker pools — so every counter is a :class:`ShardedCounter`:
per-thread cells make the increment race-free without a lock on the hot
path, and reads sum the cells.
"""

from __future__ import annotations

import threading
import weakref

from . import segments


class ShardedCounter:
    """A counter safe for concurrent increments without hot-path locking.

    ``value += 1`` on a shared int is a load/add/store bytecode sequence
    and loses updates under thread preemption; here each thread owns a
    private cell (so its increment is unshared) and reads sum the cells
    under the registration lock.  Cells are one-element lists so the hot
    increment is ``cell[0] += n`` on thread-private state.

    A dead thread can never increment its cell again (the thread-local
    dies with it), so reads fold finished cells into a base count and
    drop them — cell count tracks *live* incrementing threads, not every
    thread the process ever ran.
    """

    __slots__ = ("_cells", "_lock", "_local", "_base")

    def __init__(self):
        self._cells = []  # (weakref-to-owner-thread, cell) pairs
        self._lock = threading.Lock()
        self._local = threading.local()
        self._base = 0

    def cell(self):
        """This thread's cell; hot loops may cache it and increment
        ``cell[0]`` directly."""
        try:
            return self._local.cell
        except AttributeError:
            cell = self._local.cell = [0]
            owner = weakref.ref(threading.current_thread())
            with self._lock:
                self._cells.append((owner, cell))
            return cell

    def add(self, amount=1):
        try:
            self._local.cell[0] += amount
        except AttributeError:
            self.cell()[0] += amount

    @property
    def value(self):
        with self._lock:
            total = self._base
            survivors = []
            for owner, cell in self._cells:
                total += cell[0]
                if owner() is None:  # owning thread collected: final
                    self._base += cell[0]
                else:
                    survivors.append((owner, cell))
            self._cells = survivors
            return total

    def __repr__(self):
        return f"<ShardedCounter {self.value}>"


class ResourceAccount:
    """Counters for one domain."""

    __slots__ = ("_bytes_copied_in", "_copy_operations", "_allocations",
                 "_allocated_bytes", "_requests")

    def __init__(self):
        self._bytes_copied_in = ShardedCounter()
        self._copy_operations = ShardedCounter()
        self._allocations = ShardedCounter()
        self._allocated_bytes = ShardedCounter()
        self._requests = ShardedCounter()

    @property
    def bytes_copied_in(self):
        return self._bytes_copied_in.value

    @property
    def copy_operations(self):
        return self._copy_operations.value

    @property
    def allocations(self):
        return self._allocations.value

    @property
    def allocated_bytes(self):
        return self._allocated_bytes.value

    @property
    def requests(self):
        return self._requests.value

    def charge_copy(self, nbytes):
        self._bytes_copied_in.add(nbytes)
        self._copy_operations.add(1)

    def charge_allocation(self, nbytes):
        self._allocations.add(1)
        self._allocated_bytes.add(nbytes)

    def charge_request(self):
        """One request serviced by the domain (web serving layer)."""
        self._requests.add(1)

    def snapshot(self):
        return {
            "bytes_copied_in": self.bytes_copied_in,
            "copy_operations": self.copy_operations,
            "allocations": self.allocations,
            "allocated_bytes": self.allocated_bytes,
            "requests": self.requests,
        }


class Accountant:
    """Holds per-domain accounts and plugs into the copy machinery.

    Accounts are keyed by domain *identity*, not name: hot-swapping a
    servlet creates a fresh domain under the same derived name, and its
    account must start at zero rather than inherit the predecessor's
    charges.  ``release_domain`` closes a terminated domain's account
    (and drops the key, so the domain object is not pinned) and folds
    its final counter values into retained totals — mirroring the
    prefork master's retired-worker accounting — so fleet-level
    reconciliation (``fleet_totals``) still matches client-observed
    counts exactly after a hard quota kill tears a tenant down.
    """

    _COUNTERS = ("bytes_copied_in", "copy_operations", "allocations",
                 "allocated_bytes", "requests")

    def __init__(self):
        self._lock = threading.Lock()
        self._accounts = {}
        self._retired = dict.fromkeys(self._COUNTERS, 0)
        self._released_domains = 0

    def account(self, domain):
        # Fast path: racy read of the accounts dict (a single C-level
        # lookup, safe under the GIL); the lock is only taken to create a
        # missing account exactly once.
        found = self._accounts.get(domain)
        if found is not None:
            return found
        with self._lock:
            found = self._accounts.get(domain)
            if found is None:
                found = self._accounts[domain] = ResourceAccount()
            return found

    def charge_copy(self, nbytes, domain=None):
        """Charge one serialized copy to the receiving domain."""
        target = domain or segments.current_domain()
        if target is None:
            return
        self.account(target).charge_copy(nbytes)

    def charge_allocation(self, nbytes, domain=None):
        target = domain or segments.current_domain()
        if target is None:
            return
        self.account(target).charge_allocation(nbytes)

    def charge_request(self, domain=None):
        """Charge one serviced request to the handling domain."""
        target = domain or segments.current_domain()
        if target is None:
            return
        self.account(target).charge_request()

    def release_domain(self, domain):
        """Close a terminated domain's account.

        The domain's memory is reclaimed when its capabilities are
        revoked, so the account closes — but its *traffic happened*:
        the final counter values fold into retained totals first (the
        counter summation drains every per-thread cell, including those
        of threads that died inside the terminated domain), so
        ``fleet_totals`` reconciles exactly across quota kills and
        servlet hot-swaps."""
        with self._lock:
            account = self._accounts.pop(domain, None)
            if account is None:
                return None
            snapshot = account.snapshot()
            for key in self._COUNTERS:
                self._retired[key] += snapshot[key]
            self._released_domains += 1
            return account

    def retired_totals(self):
        """Counters folded from every released (terminated) domain."""
        with self._lock:
            return dict(self._retired)

    def fleet_totals(self):
        """Live accounts plus retained totals of released domains: the
        number a client-side observer should reconcile against, whoever
        served (or used to serve) the traffic."""
        with self._lock:
            totals = dict(self._retired)
            accounts = list(self._accounts.values())
            released = self._released_domains
        for account in accounts:
            snapshot = account.snapshot()
            for key in self._COUNTERS:
                totals[key] += snapshot[key]
        totals["released_domains"] = released
        return totals

    def report(self):
        """Snapshots keyed by domain name (two live domains sharing a
        name — unusual, but legal — collapse to the later one)."""
        with self._lock:
            return {
                domain.name: account.snapshot()
                for domain, account in sorted(
                    self._accounts.items(), key=lambda item: item[0].name
                )
            }


_default = Accountant()


def get_accountant():
    return _default


def install(accountant=None):
    """Start charging serialized copies to receiving domains."""
    from . import serial

    target = accountant or _default
    serial.set_copy_observer(lambda nbytes: target.charge_copy(nbytes))
    return target


def uninstall():
    from . import serial

    serial.set_copy_observer(None)
