"""Remote interfaces.

Following Sun's RMI convention the paper adopts (§3.1), a *remote
interface* is a class that extends the marker :class:`Remote` and declares
the methods callable across domains.  An implementation class subclasses
one or more remote interfaces; only the methods declared in the interfaces
become visible through a capability — extra public methods of the
implementation are not exposed.

Example::

    class ReadFile(Remote):
        def read_byte(self): ...
        def read_bytes(self, n): ...

    class ReadFileImpl(ReadFile):       # implementation, never shared
        def read_byte(self): return 7
        def read_bytes(self, n): return bytes(n)
        def secret(self): ...           # NOT exposed via capabilities
"""

from __future__ import annotations

import inspect

from .errors import RemoteInterfaceError


class Remote:
    """Marker base class for remote interfaces (cf. ``java.rmi.Remote``)."""

    __slots__ = ()


def is_remote_interface(cls):
    """True for a proper subclass of Remote used as an interface."""
    return (
        isinstance(cls, type)
        and issubclass(cls, Remote)
        and cls is not Remote
    )


def remote_interfaces(implementation_cls):
    """The remote interfaces implemented by a class.

    Every proper ancestor of the implementation that subclasses
    :class:`Remote` counts (the implementation class itself does not —
    it is the hidden object, not the contract).
    """
    interfaces = []
    for ancestor in implementation_cls.__mro__[1:]:
        if is_remote_interface(ancestor):
            interfaces.append(ancestor)
    return tuple(interfaces)


def remote_methods(implementation_cls):
    """Map of method name -> interface callable exposed via capabilities.

    Raises :class:`RemoteInterfaceError` if the class implements no remote
    interface or an interface declares a non-callable public attribute.
    """
    interfaces = remote_interfaces(implementation_cls)
    if not interfaces:
        raise RemoteInterfaceError(
            f"{implementation_cls.__name__} implements no remote interface "
            "(subclass a class extending Remote)"
        )
    methods = {}
    for iface in interfaces:
        for name, member in vars(iface).items():
            if name.startswith("_"):
                continue
            if not callable(member):
                raise RemoteInterfaceError(
                    f"remote interface {iface.__name__} declares "
                    f"non-callable public attribute {name!r}"
                )
            methods.setdefault(name, member)
    if not methods:
        raise RemoteInterfaceError(
            f"{implementation_cls.__name__}'s remote interfaces declare "
            "no methods"
        )
    for name in methods:
        implementation = getattr(implementation_cls, name, None)
        if implementation is None or not callable(implementation):
            raise RemoteInterfaceError(
                f"{implementation_cls.__name__} does not implement "
                f"remote method {name!r}"
            )
    return methods


def method_signature(func):
    """Parameter list (excluding self) for stub generation."""
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError):
        return None
    parameters = list(signature.parameters.values())
    if parameters and parameters[0].name == "self":
        parameters = parameters[1:]
    return parameters
