"""Stack-based access control over the capability kernel.

The J-Kernel's capabilities are *possession*-based: holding a stub is the
authority to call it.  This module layers the Java 2 security model on
top (the AccessControlContext/DomainCombiner design, cf. "Generating
Stack-based Access Control Policies"): each protection domain may carry a
:class:`PermissionSet`, and a *guarded* capability call succeeds only
when every domain on the effective call chain implies the guard — the
effective permissions are the **intersection** across the chain, so an
unprivileged domain cannot launder a call through a privileged one
(confused deputy).

The chain is the LRMI segment stack of the current thread (every domain
the request has passed through, ``repro.core.segments``), with two
modifiers:

* :func:`do_privileged` truncates the walk at the caller's own frame —
  the deputy vouches for everything *above* it, but its own domain is
  still checked, so an unrestricted tenant cannot grant itself anything
  by calling ``do_privileged``.
* Cross-process calls carry a *compressed context* in the call frame
  (``repro.ipc.lrmi``): the caller side exports its effective restricted
  sets via :func:`exported_wire_context`, and the host side extends its
  local walk with them via :func:`imported_context` — the intersection
  spans processes.

Domains whose ``permissions`` attribute is ``None`` (the default) are
**unrestricted**: they never deny, and a chain containing only
unrestricted domains short-circuits to "allowed".  The policy layer
therefore costs nothing until a policy is actually installed — the LRMI
hot path is untouched, and policy state lives in this module's own
thread-local, not on the pooled thread segments.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from . import segments
from .errors import AccessDeniedError

__all__ = [
    "AccessControlContext",
    "Permission",
    "PermissionSet",
    "check_permission",
    "current_context",
    "do_privileged",
    "exported_wire_context",
    "imported_context",
    "restricted",
]

# Per-thread policy frames, strictly LIFO (pushed/popped under
# try/finally).  Each frame is a tuple ``(kind, payload)``:
#   ("priv", depth)     -- do_privileged scope opened at segment-stack
#                          ``depth``; truncates the walk at depth-1
#   ("imported", sets)  -- tuple of PermissionSets carried in by a
#                          cross-process call frame
_tls = threading.local()


def _frames():
    try:
        return _tls.frames
    except AttributeError:
        frames = _tls.frames = []
        return frames


class Permission:
    """One permission: a ``kind`` plus a ``target`` pattern.

    ``target`` supports a single trailing-``*`` glob (``"kv:orders/*"``);
    ``"*"`` matches everything of that kind.  The string form is
    ``"kind:target"`` (:meth:`parse`), which is also the wire form.
    """

    __slots__ = ("kind", "target")

    def __init__(self, kind, target="*"):
        if not kind or ":" in kind:
            raise ValueError(f"invalid permission kind: {kind!r}")
        self.kind = kind
        self.target = target

    @classmethod
    def parse(cls, text):
        """``"kind:target"`` (or bare ``"kind"``, target ``*``)."""
        if isinstance(text, Permission):
            return text
        kind, sep, target = text.partition(":")
        return cls(kind, target if sep else "*")

    def implies(self, other):
        """Does holding *self* satisfy a check for *other*?"""
        if self.kind != other.kind:
            return False
        pattern = self.target
        if pattern == "*":
            return True
        if pattern.endswith("*"):
            return other.target.startswith(pattern[:-1])
        return pattern == other.target

    def __eq__(self, other):
        return (
            isinstance(other, Permission)
            and self.kind == other.kind
            and self.target == other.target
        )

    def __hash__(self):
        return hash((self.kind, self.target))

    def __str__(self):
        return f"{self.kind}:{self.target}"

    def __repr__(self):
        return f"Permission({self.kind!r}, {self.target!r})"


class PermissionSet:
    """An immutable set of :class:`Permission` — one domain's policy.

    ``implies(p)`` is true when any member implies ``p``.  Construct from
    Permission objects or ``"kind:target"`` strings.
    """

    __slots__ = ("_permissions",)

    def __init__(self, permissions=()):
        parsed = tuple(
            dict.fromkeys(Permission.parse(p) for p in permissions)
        )
        self._permissions = parsed

    def implies(self, permission):
        for held in self._permissions:
            if held.implies(permission):
                return True
        return False

    def union(self, other):
        return PermissionSet((*self._permissions, *other))

    def wire(self):
        """Compressed wire form: tuple of ``(kind, target)`` pairs."""
        return tuple((p.kind, p.target) for p in self._permissions)

    @classmethod
    def from_wire(cls, pairs):
        return cls(Permission(kind, target) for kind, target in pairs)

    def __iter__(self):
        return iter(self._permissions)

    def __len__(self):
        return len(self._permissions)

    def __contains__(self, permission):
        return Permission.parse(permission) in self._permissions

    def __eq__(self, other):
        return (
            isinstance(other, PermissionSet)
            and self._permissions == other._permissions
        )

    def __hash__(self):
        return hash(self._permissions)

    def __repr__(self):
        inner = ", ".join(str(p) for p in self._permissions)
        return f"PermissionSet([{inner}])"


def coerce_policy(policy):
    """Normalise a policy argument: ``None``, a :class:`PermissionSet`,
    or an iterable of permissions / ``"kind:target"`` strings."""
    if policy is None or isinstance(policy, PermissionSet):
        return policy
    if isinstance(policy, (str, Permission)):
        return PermissionSet((policy,))
    return PermissionSet(policy)


# -- the walk -----------------------------------------------------------------

def _walk_state():
    """The effective walk inputs: ``(stack, cut, imported)``.

    ``cut`` is the lowest segment-stack index still checked (the most
    recent ``do_privileged`` scope truncates the walk there — at the
    deputy's *own* frame, which stays in the chain).  ``imported`` is the
    tuple of imported-frame payloads above that scope, most recent first.
    """
    stack = segments._stack()
    frames = getattr(_tls, "frames", None)
    cut = 0
    imported = ()
    if frames:
        collected = None
        for frame in reversed(frames):
            if frame[0] == "priv":
                cut = frame[1] - 1
                if cut < 0:
                    cut = 0
                break
            if collected is None:
                collected = []
            collected.append(frame[1])
        if collected:
            imported = tuple(collected)
    return stack, cut, imported


def check_permission(permission):
    """Raise :class:`AccessDeniedError` unless every domain on the
    effective call chain implies ``permission``.

    ``permission`` may be a :class:`Permission` or a ``"kind:target"``
    string.  Domains without an installed policy never deny.
    """
    if not isinstance(permission, Permission):
        permission = Permission.parse(permission)
    stack, cut, imported = _walk_state()
    for index in range(len(stack) - 1, cut - 1, -1):
        domain = stack[index].domain
        permissions = getattr(domain, "permissions", None)
        if permissions is not None and not permissions.implies(permission):
            raise AccessDeniedError(
                f"domain {domain.name!r} lacks permission {permission}",
                permission=str(permission),
                domain=domain.name,
            )
    for group in imported:
        for permission_set in group:
            if not permission_set.implies(permission):
                raise AccessDeniedError(
                    f"remote caller context lacks permission {permission}",
                    permission=str(permission),
                )


def do_privileged(fn, *args, **kwargs):
    """Run ``fn`` with the access-control walk truncated at the caller.

    The Java ``AccessController.doPrivileged`` analogue: permission
    checks inside ``fn`` stop walking at the calling frame's domain
    instead of the whole chain — the caller vouches for its callers.
    The caller's **own** domain remains in the walk, so an unprivileged
    domain gains nothing by wrapping a call in ``do_privileged``.
    """
    frames = _frames()
    frames.append(("priv", len(segments._stack())))
    try:
        return fn(*args, **kwargs)
    finally:
        frames.pop()


@contextmanager
def imported_context(wire_context):
    """Extend the walk with a compressed cross-process caller context.

    Used by the host side of ``repro.ipc.lrmi``: the caller's restricted
    permission sets arrive in the call frame and participate in every
    check the dispatched call performs.
    """
    if not wire_context:
        yield
        return
    sets = tuple(PermissionSet.from_wire(pairs) for pairs in wire_context)
    frames = _frames()
    frames.append(("imported", sets))
    try:
        yield
    finally:
        frames.pop()


def _effective_sets():
    """The restricted permission sets on the effective chain (deduped)."""
    stack, cut, imported = _walk_state()
    sets = []
    for index in range(len(stack) - 1, cut - 1, -1):
        permissions = getattr(stack[index].domain, "permissions", None)
        if permissions is not None:
            sets.append(permissions)
    for group in imported:
        sets.extend(group)
    return list(dict.fromkeys(sets))


def restricted():
    """Cheap probe: could the current chain possibly deny anything?

    ``False`` means no restricted domain and no imported context — the
    cross-process proxy fast path uses this to skip exporting a context.
    Conservative: may return ``True`` when only a ``do_privileged``
    marker is active.
    """
    if getattr(_tls, "frames", None):
        return True
    for segment in segments._stack():
        if getattr(segment.domain, "permissions", None) is not None:
            return True
    return False


def exported_wire_context():
    """The compressed context a cross-process call frame should carry.

    ``None`` when nothing on the chain is restricted (the common case —
    the frame stays byte-identical to the pre-policy wire); otherwise a
    tuple of :meth:`PermissionSet.wire` tuples.
    """
    sets = _effective_sets()
    if not sets:
        return None
    return tuple(s.wire() for s in sets)


class AccessControlContext:
    """A captured effective context (the Java ``AccessControlContext``).

    Snapshot the current chain with :meth:`capture` (or
    :func:`current_context`), then :meth:`check` later — e.g. from a
    different thread servicing a queued request on the original caller's
    authority.
    """

    __slots__ = ("_sets",)

    def __init__(self, sets=()):
        self._sets = tuple(dict.fromkeys(sets))

    @classmethod
    def capture(cls):
        return cls(_effective_sets())

    @property
    def permission_sets(self):
        return self._sets

    def check(self, permission):
        if not isinstance(permission, Permission):
            permission = Permission.parse(permission)
        for permission_set in self._sets:
            if not permission_set.implies(permission):
                raise AccessDeniedError(
                    f"captured context lacks permission {permission}",
                    permission=str(permission),
                )

    def compressed(self):
        """Wire form (the same shape :func:`exported_wire_context` uses)."""
        return tuple(s.wire() for s in self._sets) or None

    @classmethod
    def from_compressed(cls, wire_context):
        if not wire_context:
            return cls()
        return cls(
            PermissionSet.from_wire(pairs) for pairs in wire_context
        )

    def __repr__(self):
        return f"AccessControlContext({list(self._sets)!r})"


def current_context():
    """Capture the effective :class:`AccessControlContext` of this thread."""
    return AccessControlContext.capture()
