"""Sealed shared-memory regions: MPK-style grant/seal/revoke for bulk data.

The calling convention's central trade — immutable data crosses domains
by reference, everything else by copy — only held *in-process* until
now: a sealed carrier crossing a process boundary re-serialized byte by
byte.  This module backs sealed buffers with
``multiprocessing.shared_memory`` so the same bytes are addressable from
every process, and models protection-key semantics in the kernel
(borrowing from "Efficient Sealable Protection Keys for RISC-V" and
"Capacity"):

* **seal** — :func:`seal` copies a payload once into a pooled shared
  segment and returns a :class:`SealedRegion`, validated and deeply
  immutable from birth.  In-process it crosses every boundary by
  reference (``convention.PASS_BY_REFERENCE``, like any sealed class).
* **grant** — cross-process, a region marshals as a tiny generation-
  checked ``("region", name, generation, offset, length)`` descriptor on
  the LRMI side table (``repro.ipc.lrmi``), never as its bytes.  The
  receiver maps the segment (cached per peer) and hands the callee a
  read-only *view* region.
* **revoke** — the kernel records every view materialized while a call
  unmarshals and revokes them when the call returns; a callee that
  stashed its view gets a typed
  :class:`~repro.core.errors.RegionRevokedError` on the next access —
  never stale bytes.  An owner-side :meth:`SealedRegion.revoke` is
  broadcast through the segment itself: the generation word in the
  shared header is poisoned before the segment is recycled, so every
  attached process observes the revocation on its next read without a
  wire frame (the shared memory IS the broadcast channel; the PR 5
  OP_REVOKED fan-out stays what it was — capability-table coherence).

Lifecycle discipline (the ``ipc/shm.py`` rules, extended to pools)
------------------------------------------------------------------

* **self-describing segments** — every segment starts with a 16-byte
  header ``(magic, generation, length)``.  A grant is honored only when
  its generation matches the header: a respawned host replaying stale
  state, or a handle outliving a pool recycle, is refused with a typed
  error, never read.
* **deterministic names** — segments are named ``jkr<pid>g<seq>``, so a
  supervisor that outlives a SIGKILLed owner can reclaim every one of
  its segments by name (:func:`purge_pid`); both ends may unlink, and
  unlink-by-name is idempotent.
* **owner-liveness check** — a view whose owner process died validates
  against a header nobody can poison anymore, so reads additionally
  probe the owner pid (parsed from the name) and fail closed.
* **pooling** — revoked owner segments return to a per-process
  :class:`RegionPool` free list with a *bumped* generation instead of
  being unlinked, amortizing ``shm_open`` across responses the way the
  bulk ring amortizes it across frames.  ``atexit`` drains the pool and
  revokes stragglers; a crash is covered by :func:`purge_pid`.
* **chaos crash point** — ``regions.seal`` kills the process after the
  segment exists but before any grant leaves, the worst spot for leak
  discipline (exercised by the chaos matrix).
"""

from __future__ import annotations

import atexit
import os
import struct
import threading
import weakref

from .errors import RegionRevokedError
from .serial import register_capref_type

#: Shared-segment header: magic, generation, payload length.  Padded to
#: 16 bytes so the payload starts aligned.
HEADER = struct.Struct(">4sII")
HEADER_SIZE = 16
MAGIC = b"JKRG"

#: Generation 0 is the poison value written by revoke — no live grant
#: ever carries it, so a poisoned header can never match a descriptor.
REVOKED_GENERATION = 0

#: Response bodies at/over this many bytes ride a sealed region across
#: the out-of-process servlet boundary (``repro.web.servlet``); kept in
#: lockstep with the LRMI bulk-ring threshold by default.
SEAL_THRESHOLD = int(os.environ.get("JK_LRMI_SHM_THRESHOLD", "16384"))

#: Segments kept on the pool free list per size class; beyond it a
#: revoked segment is unlinked instead of cached.
POOL_PER_CLASS = 8

#: Fault-injection hook (``repro.testing.chaos``); None in production.
_chaos = None


def _segment_name(pid, seq):
    return f"jkr{pid}g{seq}"


def _owner_pid(name):
    """The owner pid encoded in a segment name, or None."""
    if not name.startswith("jkr"):
        return None
    head = name[3:].split("g", 1)[0]
    return int(head) if head.isdigit() else None


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass  # EPERM etc.: it exists
    return True


def _shared_memory(**kwargs):
    """A SharedMemory outside resource_tracker adoption (the bulk ring's
    rule: lifetime here is explicit, and the forked tracker's set-backed
    cache cannot survive both ends registering one name)."""
    from multiprocessing.shared_memory import SharedMemory

    from repro.ipc.shm import _untracked

    with _untracked():
        return SharedMemory(**kwargs)


def _round_capacity(nbytes):
    capacity = 4096
    while capacity < nbytes:
        capacity <<= 1
    return capacity


class RegionPool:
    """Per-process allocator of region segments with recycle-on-revoke.

    Generations are pid-salted and strictly increasing per process, so a
    recycled segment can never satisfy a grant minted for its previous
    tenant — the same rule the bulk ring applies per connection, applied
    per segment."""

    def __init__(self):
        self._lock = threading.Lock()
        self._free = {}  # capacity -> [SharedMemory, ...]
        self._pid = os.getpid()
        self._seq = 0
        self._gen = (self._pid & 0xFFFF) << 16

    def _reset_after_fork(self):
        """A forked child inherits the parent's free list; the parent
        still owns those segments, so the child closes its mappings
        (never unlinks) and starts a namespace of its own."""
        inherited, self._free = self._free, {}
        self._pid = os.getpid()
        self._seq = 0
        self._gen = (self._pid & 0xFFFF) << 16
        for segments in inherited.values():
            for shm in segments:
                try:
                    shm.close()
                except (OSError, BufferError):
                    pass

    def _next_generation(self):
        self._gen = (self._gen + 1) & 0xFFFFFFFF
        return self._gen or 1  # never the poison value

    def acquire(self, nbytes):
        """``(shm, generation)`` with capacity for ``nbytes`` of payload
        plus the header; reused from the free list when possible."""
        capacity = _round_capacity(HEADER_SIZE + nbytes)
        with self._lock:
            if self._pid != os.getpid():
                self._reset_after_fork()
            segments = self._free.get(capacity)
            if segments:
                return segments.pop(), self._next_generation()
            self._seq += 1
            name = _segment_name(self._pid, self._seq)
            generation = self._next_generation()
        return _shared_memory(create=True, size=capacity,
                              name=name), generation

    def release(self, shm):
        """Return a segment whose header is already poisoned; unlinks
        when the free list for its class is full (or we forked)."""
        with self._lock:
            if self._pid == os.getpid():
                segments = self._free.setdefault(shm.size, [])
                if len(segments) < POOL_PER_CLASS:
                    segments.append(shm)
                    return
        _discard(shm, unlink=True)

    def close(self):
        """Unmap and unlink every pooled segment (idempotent)."""
        with self._lock:
            free, self._free = self._free, {}
            owner = self._pid == os.getpid()
        for segments in free.values():
            for shm in segments:
                _discard(shm, unlink=owner)


def _finalize_owner(shm, generation):
    """GC fallback for an owner region that was never revoke()d: poison
    the header (every attached view fails typed from here on) and
    recycle the segment.  Runs only when revoke() did not — revoke()
    detaches the finalizer — so the generation necessarily still matches
    and the release cannot double-pool."""
    try:
        buf = shm.buf
        if buf is not None:
            HEADER.pack_into(buf, 0, MAGIC, REVOKED_GENERATION, 0)
    except (OSError, ValueError):
        pass
    _POOL.release(shm)


def _unlink_quiet(shm):
    """Idempotent unlink-by-name, without waking the resource tracker
    about a segment it was never told about."""
    from repro.ipc.shm import _untracked

    with _untracked():
        try:
            shm.unlink()
        except OSError:
            pass


def _discard(shm, unlink):
    try:
        shm.close()
    except (OSError, BufferError):
        pass
    if unlink:
        _unlink_quiet(shm)


_POOL = RegionPool()

#: Live owner regions, revoked at interpreter exit so a clean shutdown
#: leaves no segment behind (a SIGKILL is covered by purge_pid).
_LIVE = weakref.WeakSet()


def _shutdown():
    for region in list(_LIVE):
        region.revoke()
    _POOL.close()


atexit.register(_shutdown)


from .sealed import sealed  # noqa: E402  (after pool setup; cycle-free)


@sealed
class SealedRegion:
    """A validated, deeply-immutable buffer in shared memory.

    Owner instances come from :func:`seal`; *view* instances materialize
    on the receiving side of a cross-process grant.  Both are sealed
    (frozen, final, by-reference in-process); the revocation flag and
    the issued-view list are kernel bookkeeping mutated through
    ``object.__setattr__``, exactly like a capability's target slot.
    """

    __slots__ = ("_shm", "_name", "_generation", "_offset", "_length",
                 "_owner", "_issued", "_revoked", "_finalizer",
                 "__weakref__")

    def __init__(self, shm, generation, offset, length, owner):
        _set = object.__setattr__
        _set(self, "_shm", shm)
        _set(self, "_name", shm.name)
        _set(self, "_generation", generation)
        _set(self, "_offset", offset)
        _set(self, "_length", length)
        _set(self, "_owner", owner)
        _set(self, "_issued", [])
        _set(self, "_revoked", False)
        _set(self, "_finalizer", None)

    # -- construction ------------------------------------------------------
    @classmethod
    def seal(cls, data):
        """Copy ``data`` (bytes-like) once into a pooled shared segment
        and return the sealed owner region."""
        if type(data) is SealedRegion:
            return data
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(
                "SealedRegion payload must be bytes-like, "
                f"not {type(data).__name__}"
            )
        data = memoryview(data).cast("B")
        length = len(data)
        shm, generation = _POOL.acquire(length)
        buf = shm.buf
        HEADER.pack_into(buf, 0, MAGIC, generation, length)
        buf[HEADER_SIZE:HEADER_SIZE + length] = data
        region = cls(shm, generation, HEADER_SIZE, length, owner=True)
        # An owner dropped without revoke() must not leak its segment
        # until process exit: the finalizer poisons the header and
        # recycles through the pool.  revoke() detaches it, so a segment
        # already recycled (now under a NEW generation, possibly another
        # region's) is never touched twice.
        object.__setattr__(
            region, "_finalizer",
            weakref.finalize(region, _finalize_owner, shm, generation),
        )
        _LIVE.add(region)
        if _chaos is not None:
            # Chaos crash point: the segment exists, nothing has been
            # granted yet — the exact window where only the name
            # discipline (purge_pid / both-end unlink) prevents a leak.
            _chaos.crash_point("regions.seal")
        return region

    # -- validated reads ---------------------------------------------------
    def _validate(self):
        if self._revoked:
            raise RegionRevokedError(
                f"sealed region {self._name} has been revoked"
            )
        buf = self._shm.buf
        if buf is None:
            object.__setattr__(self, "_revoked", True)
            raise RegionRevokedError(
                f"sealed region {self._name}: segment unmapped"
            )
        magic, generation, length = HEADER.unpack_from(buf, 0)
        if magic != MAGIC or generation != self._generation:
            object.__setattr__(self, "_revoked", True)
            raise RegionRevokedError(
                f"sealed region {self._name}: generation "
                f"{self._generation} revoked (header {generation})"
            )
        if not self._owner:
            # A dead owner can no longer poison the header, so a view
            # additionally fails closed on owner death: unlinked-but-
            # mapped memory must read as revoked, never as stale bytes.
            pid = _owner_pid(self._name)
            if pid is not None and not _pid_alive(pid):
                object.__setattr__(self, "_revoked", True)
                raise RegionRevokedError(
                    f"sealed region {self._name}: owner process {pid} "
                    "is gone"
                )
        return buf

    def view(self):
        """A read-only zero-copy memoryview of the payload, validated
        now and released by :meth:`revoke` (callers that must outlive
        the grant copy via :meth:`bytes`)."""
        buf = self._validate()
        issued = memoryview(buf)[
            self._offset:self._offset + self._length
        ].toreadonly()
        self._issued.append(issued)
        return issued

    def bytes(self):
        """A private bytes copy of the payload (always safe to keep)."""
        buf = self._validate()
        return builtin_bytes(buf[self._offset:self._offset + self._length])

    __bytes__ = bytes

    def __len__(self):
        return self._length

    def __eq__(self, other):
        if type(other) is SealedRegion:
            if other is self:
                return True
            try:
                return self.bytes() == other.bytes()
            except RegionRevokedError:
                return NotImplemented
        if isinstance(other, (bytes, bytearray, memoryview)):
            try:
                return self.bytes() == other
            except RegionRevokedError:
                return NotImplemented
        return NotImplemented

    # Identity hash (not content hash): content can become unreadable at
    # revocation, and the kernel tracks live owners in a WeakSet.
    __hash__ = object.__hash__

    @property
    def name(self):
        return self._name

    @property
    def generation(self):
        return self._generation

    @property
    def owner(self):
        return self._owner

    @property
    def revoked(self):
        if self._revoked:
            return True
        try:
            self._validate()
        except RegionRevokedError:
            return True
        return False

    # -- the grant handle --------------------------------------------------
    def grant_descriptor(self):
        """The cross-process wire shape of this region: a generation-
        checked handle, never the bytes."""
        self._validate()
        return ("region", self._name, self._generation,
                self._offset, self._length)

    # -- revocation --------------------------------------------------------
    def revoke(self):
        """Revoke this region (idempotent).

        Owner: poison the shared header — every attached view in every
        process observes the revocation on its next read — then recycle
        the segment through the pool under a future generation.  View:
        release issued memoryviews and fail all later access locally
        (the per-call grant revocation the kernel applies on return).
        """
        if self._revoked:
            return
        object.__setattr__(self, "_revoked", True)
        issued = self._issued
        while issued:
            try:
                issued.pop().release()
            except (ValueError, BufferError):
                pass
        shm = self._shm
        if self._owner:
            _LIVE.discard(self)
            if self._finalizer is not None:
                self._finalizer.detach()
            try:
                buf = shm.buf
                if buf is not None:
                    HEADER.pack_into(buf, 0, MAGIC, REVOKED_GENERATION, 0)
            except (OSError, ValueError):
                pass
            _POOL.release(shm)
        # Views never close the mapping here: it belongs to the per-peer
        # attachment cache and may back other (still-granted) views.

    close = revoke

    def __repr__(self):
        role = "owner" if self._owner else "view"
        state = "revoked" if self._revoked else "sealed"
        return (f"<SealedRegion {self._name} [{self._offset}:"
                f"{self._offset + self._length}] gen={self._generation} "
                f"({role}, {state})>")


builtin_bytes = bytes  # SealedRegion.bytes shadows the builtin in-class


def seal(data):
    """Seal ``data`` into a shared-memory region (see module docstring)."""
    return SealedRegion.seal(data)


class AttachmentCache:
    """Per-peer cache of attached region segments, keyed by name.

    Attaching is an ``shm_open`` + ``mmap``; a hot call path granting
    the same region repeatedly must not pay it per call.  The cache
    closes with its peer: mappings whose owner process died are
    *unlinked* as well (idempotent both-end unlink — whichever side
    survives a crash reclaims the name)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._attached = {}  # name -> SharedMemory

    def resolve(self, descriptor):
        """A view :class:`SealedRegion` for one grant descriptor, after
        the generation/bounds checks."""
        _kind, name, generation, offset, length = descriptor
        if generation == REVOKED_GENERATION:
            raise RegionRevokedError(
                f"sealed region {name}: grant carries the revoked "
                "generation"
            )
        with self._lock:
            shm = self._attached.get(name)
            if shm is None:
                try:
                    shm = _shared_memory(name=name)
                except (OSError, ValueError) as exc:
                    raise RegionRevokedError(
                        f"sealed region {name} cannot be attached: {exc}"
                    ) from None
                self._attached[name] = shm
        try:
            magic, live_generation, live_length = HEADER.unpack_from(
                shm.buf, 0
            )
        except (struct.error, ValueError):
            raise RegionRevokedError(
                f"sealed region {name}: segment too small for a header"
            ) from None
        if magic != MAGIC:
            raise RegionRevokedError(
                f"sealed region {name}: bad segment magic"
            )
        if live_generation != generation:
            # Stale grant: a respawned host replaying old state, or a
            # handle that outlived a pool recycle.  Refused, never read.
            raise RegionRevokedError(
                f"sealed region {name}: stale generation {generation} "
                f"(segment is at {live_generation})"
            )
        if (offset < HEADER_SIZE
                or offset + length > HEADER_SIZE + live_length
                or offset + length > shm.size):
            raise RegionRevokedError(
                f"sealed region {name}: grant [{offset}:{offset + length}] "
                f"exceeds the sealed payload"
            )
        return SealedRegion(shm, generation, offset, length, owner=False)

    def invalidate(self, name):
        """Drop one cached attachment (the segment's owner revoked it)."""
        with self._lock:
            shm = self._attached.pop(name, None)
        if shm is not None:
            _discard(shm, unlink=False)

    def close(self):
        """Close every mapping; unlink segments whose owner died (the
        surviving end of a crash reclaims the name — idempotent)."""
        with self._lock:
            attached, self._attached = self._attached, {}
        failures = 0
        for name, shm in attached.items():
            pid = _owner_pid(name)
            owner_dead = pid is not None and not _pid_alive(pid)
            try:
                shm.close()
            except (OSError, BufferError):
                failures += 1
            if owner_dead:
                _unlink_quiet(shm)
        return failures

    def __len__(self):
        with self._lock:
            return len(self._attached)


def purge_pid(pid):
    """Unlink every region segment a (dead) process left behind, by its
    deterministic name prefix.  Idempotent; the supervisor's half of the
    both-end unlink discipline after a SIGKILL."""
    prefix = f"jkr{pid}g"
    removed = []
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return removed
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return removed
    for name in names:
        if name.startswith(prefix):
            try:
                os.unlink(os.path.join(shm_dir, name))
                removed.append(name)
            except OSError:
                pass
    return removed


# A region crossing a process boundary rides the LRMI side table as a
# grant descriptor (repro.ipc.lrmi resolves the "region" kind), exactly
# like capabilities ride it as export descriptors.  (RegionRevokedError
# itself is serial-registered with the rest of the error hierarchy in
# serial.py, so a host refusing a stale grant re-raises typed in the
# caller's process even before this module is imported there.)
register_capref_type(SealedRegion)
