"""Generated fast-copy (paper §3.1).

"The fast copy implementation automatically generates specialized copy code
for each class that the user declares to be a fast copy class."  This
module does the same: registering a class generates (via Python codegen) a
copy function with one straight-line statement per field — no intermediate
byte array, no generic reflection loop.

"For cyclic or directed graph data structures, a user can request that the
fast copy code use a hash table to track object copying … this slows down
copying, though, so by default the copy code does not use a hash table."
Pass ``cyclic=True`` to get the memo-tracking variant; the default variant
skips the hash table entirely (and will loop forever on a cycle, exactly as
the paper's default would — callers choose).

Field specialization: at registration the codegen splits declared fields
into *immutable* and *transferable*.  A field annotated with an immutable
primitive type (``int``/``float``/``bool``/``str``/``bytes``) becomes a
direct assignment guarded by one exact type check — the ``transfer``
callback is not consulted for it.  A field annotated ``dict`` gets the
calling convention's scan-then-copy inlined: one C-speed
``frozenset.issuperset(map(type, ...))`` scan over keys and values, then a
single builtin ``dict.copy`` — the common string-keyed attribute-map shape
in carrier classes — falling back to ``transfer`` for mixed contents, or
whenever a transfer memo is live (its aliasing bookkeeping must see the
dict).  Unannotated fields get an inline immutable-type
membership test before falling back to ``transfer``, so primitive-valued
fields never pay a call either way.  A class whose fields are *all*
annotated immutable (or ``dict``) gets a whole-object fast case: one
combined type check, then straight field moves and an immediate return.
The ``transfer`` callback is therefore only invoked for values that
genuinely need the general calling convention (capabilities, mixed
containers, nested objects).
"""

from __future__ import annotations

from .errors import NotSerializableError
from .serial import class_fields, declared_field_types

#: Types whose values may cross domains uncopied: immutable primitives
#: (copying them would be unobservable).  The calling convention
#: (``repro.core.convention``) and the generated copiers share this set.
IMMUTABLE_TYPES = frozenset(
    {int, float, bool, str, bytes, complex, type(None), range}
)

_GUARDED = {int: "int", float: "float", bool: "bool", str: "str",
            bytes: "bytes"}


def _overlay_dict_annotations(cls, fields, field_types):
    """Mark ``dict``-annotated fields for the inlined scan-then-copy.

    Fast-copy-only: the serializer's shared ``declared_field_types`` maps
    non-primitive annotations to None (its wire codegen has no dict
    specialization), so the overlay happens here rather than there.
    """
    if not fields:
        return
    annotations = {}
    for ancestor in reversed(cls.__mro__):
        declared = ancestor.__dict__.get("__annotations__")
        if declared:
            annotations.update(declared)
    for field in fields:
        if field_types.get(field) is None:
            declared = annotations.get(field)
            if declared is dict or declared == "dict":
                field_types[field] = dict


class FastCopyInfo:
    """Registration record: the generated copier plus its metadata."""

    __slots__ = ("cls", "fields", "field_types", "cyclic", "copier",
                 "source")

    def __init__(self, cls, fields, field_types, cyclic, copier, source):
        self.cls = cls
        self.fields = fields
        self.field_types = field_types
        self.cyclic = cyclic
        self.copier = copier
        self.source = source


class FastCopyRegistry:
    #: Set by ``repro.core.convention`` on the default registry so new
    #: registrations land in the auto-mode dispatch table.
    _on_register = None

    def __init__(self):
        self._by_class = {}

    def register(self, cls, fields=None, cyclic=False):
        resolved = class_fields(cls, fields)
        field_types = dict(declared_field_types(cls, resolved))
        _overlay_dict_annotations(cls, resolved, field_types)
        copier, source = _generate_copier(cls, resolved, field_types, cyclic)
        info = FastCopyInfo(cls, resolved, field_types, cyclic, copier,
                            source)
        self._by_class[cls] = info
        if self._on_register is not None:
            self._on_register(info)
        return info

    def lookup(self, cls):
        return self._by_class.get(cls)

    def knows(self, cls):
        return cls in self._by_class


#: Process-wide default registry.
DEFAULT_REGISTRY = FastCopyRegistry()


def fast_copy(cls=None, *, fields=None, cyclic=False, registry=None):
    """Class decorator declaring a fast-copy class.

    ``cyclic=True`` enables hash-table tracking of already-copied objects
    (needed for cyclic or DAG-shaped data, slower per object).
    """
    def register(target):
        (registry or DEFAULT_REGISTRY).register(target, fields=fields,
                                                cyclic=cyclic)
        return target

    if cls is None:
        return register
    return register(cls)


def _dict_copy_expr(var):
    """Inline scan-then-copy for a ``dict``-annotated field: all-immutable
    keys and values copy with one builtin call; anything else — including
    any copy running under a live transfer memo, whose aliasing bookkeeping
    the inline copy would bypass — falls back to the general convention."""
    return (f"{var}.copy() if memo is None "
            f"and _all_immutable(map(type, {var})) "
            f"and _all_immutable(map(type, {var}.values())) "
            f"else transfer({var}, memo)")


def _field_line(field, ftype, var):
    """One generated statement copying field ``field`` from ``{var}``."""
    guard = _GUARDED.get(ftype)
    if guard is not None:
        # Annotated immutable: direct assignment behind one exact type
        # check (the annotation is a promise, the check keeps a lying
        # instance from leaking a shared mutable across domains).
        return (f"    new.{field} = {var} if type({var}) is {guard} "
                f"else transfer({var}, memo)")
    if ftype is dict:
        return (f"    new.{field} = ({_dict_copy_expr(var)}) "
                f"if type({var}) is dict else transfer({var}, memo)")
    # Exact type(), not __class__: a hostile object can spoof __class__
    # with a property and would otherwise cross by reference.
    return (f"    new.{field} = {var} if type({var}) in _IMMUTABLE "
            f"else transfer({var}, memo)")


def _generate_copier(cls, fields, field_types, cyclic):
    """Build the specialized copy function for ``cls``.

    The generated function has signature ``(obj, memo, transfer)`` where
    ``transfer(value, memo)`` applies the LRMI calling convention to one
    field value (capability → by reference, primitive → as-is, object →
    recursive copy); immutable-valued fields short-circuit it inline.
    """
    name = f"_fastcopy_{cls.__name__}"
    lines = [f"def {name}(obj, memo, transfer):"]
    if cyclic:
        lines += [
            "    hit = memo.get(id(obj))",
            "    if hit is not None:",
            "        return hit",
        ]
    if fields is not None:
        for index, field in enumerate(fields):
            lines.append(f"    v{index} = obj.{field}")
        def _fast_guard(field):
            ftype = field_types.get(field)
            if ftype in _GUARDED:
                return _GUARDED[ftype]
            if ftype is dict:
                return "dict"
            return None

        all_specialized = fields and all(
            _fast_guard(field) is not None for field in fields
        )
        if all_specialized and not cyclic:
            # Whole-object fast case: every field is annotated immutable
            # (or dict, which inlines the scan-then-copy), so one combined
            # check covers the object and the copy is straight-line moves.
            checks = " and ".join(
                f"type(v{index}) is {_fast_guard(field)}"
                for index, field in enumerate(fields)
            )
            lines.append(f"    if {checks}:")
            lines.append("        new = _new(_cls)")
            for index, field in enumerate(fields):
                if field_types.get(field) is dict:
                    lines.append(f"        new.{field} = "
                                 f"{_dict_copy_expr(f'v{index}')}")
                else:
                    lines.append(f"        new.{field} = v{index}")
            lines.append("        return new")
        lines.append("    new = _new(_cls)")
        if cyclic:
            lines.append("    memo[id(obj)] = new")
        for index, field in enumerate(fields):
            lines.append(_field_line(field, field_types.get(field),
                                     f"v{index}"))
    else:
        lines.append("    new = _new(_cls)")
        if cyclic:
            lines.append("    memo[id(obj)] = new")
        lines += [
            "    state = obj.__dict__",
            "    new_state = new.__dict__",
            "    for key, value in state.items():",
            "        new_state[key] = value if type(value) in _IMMUTABLE"
            " else transfer(value, memo)",
        ]
    lines.append("    return new")
    source = "\n".join(lines)
    namespace = {"_new": object.__new__, "_cls": cls,
                 "_IMMUTABLE": IMMUTABLE_TYPES,
                 "_all_immutable": IMMUTABLE_TYPES.issuperset}
    exec(compile(source, f"<fastcopy {cls.__qualname__}>", "exec"), namespace)
    return namespace[name], source


def fast_copy_value(value, transfer, memo=None, registry=None):
    """Copy one registered fast-copy value; raises if not registered."""
    info = (registry or DEFAULT_REGISTRY).lookup(type(value))
    if info is None:
        raise NotSerializableError(
            f"{type(value).__qualname__} is not a fast-copy class"
        )
    if info.cyclic and memo is None:
        memo = {}
    return info.copier(value, memo, transfer)
