"""Generated fast-copy (paper §3.1).

"The fast copy implementation automatically generates specialized copy code
for each class that the user declares to be a fast copy class."  This
module does the same: registering a class generates (via Python codegen) a
copy function with one straight-line statement per field — no intermediate
byte array, no generic reflection loop.

"For cyclic or directed graph data structures, a user can request that the
fast copy code use a hash table to track object copying … this slows down
copying, though, so by default the copy code does not use a hash table."
Pass ``cyclic=True`` to get the memo-tracking variant; the default variant
skips the hash table entirely (and will loop forever on a cycle, exactly as
the paper's default would — callers choose).
"""

from __future__ import annotations

from .errors import NotSerializableError
from .serial import class_fields


class FastCopyInfo:
    """Registration record: the generated copier plus its metadata."""

    __slots__ = ("cls", "fields", "cyclic", "copier", "source")

    def __init__(self, cls, fields, cyclic, copier, source):
        self.cls = cls
        self.fields = fields
        self.cyclic = cyclic
        self.copier = copier
        self.source = source


class FastCopyRegistry:
    #: Set by ``repro.core.convention`` on the default registry so new
    #: registrations land in the auto-mode dispatch table.
    _on_register = None

    def __init__(self):
        self._by_class = {}

    def register(self, cls, fields=None, cyclic=False):
        resolved = class_fields(cls, fields)
        copier, source = _generate_copier(cls, resolved, cyclic)
        info = FastCopyInfo(cls, resolved, cyclic, copier, source)
        self._by_class[cls] = info
        if self._on_register is not None:
            self._on_register(info)
        return info

    def lookup(self, cls):
        return self._by_class.get(cls)

    def knows(self, cls):
        return cls in self._by_class


#: Process-wide default registry.
DEFAULT_REGISTRY = FastCopyRegistry()


def fast_copy(cls=None, *, fields=None, cyclic=False, registry=None):
    """Class decorator declaring a fast-copy class.

    ``cyclic=True`` enables hash-table tracking of already-copied objects
    (needed for cyclic or DAG-shaped data, slower per object).
    """
    def register(target):
        (registry or DEFAULT_REGISTRY).register(target, fields=fields,
                                                cyclic=cyclic)
        return target

    if cls is None:
        return register
    return register(cls)


def _generate_copier(cls, fields, cyclic):
    """Build the specialized copy function for ``cls``.

    The generated function has signature ``(obj, memo, transfer)`` where
    ``transfer(value, memo)`` applies the LRMI calling convention to one
    field value (capability → by reference, primitive → as-is, object →
    recursive copy).
    """
    name = f"_fastcopy_{cls.__name__}"
    lines = [f"def {name}(obj, memo, transfer):"]
    if cyclic:
        lines += [
            "    hit = memo.get(id(obj))",
            "    if hit is not None:",
            "        return hit",
        ]
    lines.append("    new = _new(_cls)")
    if cyclic:
        lines.append("    memo[id(obj)] = new")
    if fields is not None:
        for field in fields:
            lines.append(
                f"    new.{field} = transfer(obj.{field}, memo)"
            )
    else:
        lines += [
            "    state = obj.__dict__",
            "    new_state = new.__dict__",
            "    for key, value in state.items():",
            "        new_state[key] = transfer(value, memo)",
        ]
    lines.append("    return new")
    source = "\n".join(lines)
    namespace = {"_new": object.__new__, "_cls": cls}
    exec(compile(source, f"<fastcopy {cls.__qualname__}>", "exec"), namespace)
    return namespace[name], source


def fast_copy_value(value, transfer, memo=None, registry=None):
    """Copy one registered fast-copy value; raises if not registered."""
    info = (registry or DEFAULT_REGISTRY).lookup(type(value))
    if info is None:
        raise NotSerializableError(
            f"{type(value).__qualname__} is not a fast-copy class"
        )
    if info.cyclic and memo is None:
        memo = {}
    return info.copier(value, memo, transfer)
