"""Thread segments (paper §3.1).

"Conceptually, the J-Kernel divides each Java thread into multiple
segments, one for each side of a cross-domain call. … Thread modification
methods such as stop and suspend act on thread segments rather than Java
threads, which prevents the caller from modifying the callee's thread
segment and vice-versa."

One host (OS) thread carries a stack of :class:`ThreadSegment` objects; an
LRMI pushes a fresh segment bound to the callee domain and pops it on
return.  No thread switch happens — only segment bookkeeping, which is why
cross-domain calls stay fast (Table 3 shows what real switches would cost).

A segment switch performs, as in the paper: a current-segment lookup
("thread info lookup") and two lock acquire/release pairs (caller segment,
callee segment).  ``stop``/``suspend``/``resume``/``set_priority`` act on a
:class:`SegmentHandle`, which names exactly one segment — a handle leaked
to another domain cannot reach any other segment of the thread.
"""

from __future__ import annotations

import threading

from .errors import DomainTerminatedException, SegmentStoppedException

_tls = threading.local()


class ThreadSegment:
    """One side of a cross-domain call on one host thread."""

    _next_id = 1

    __slots__ = (
        "segment_id",
        "domain",
        "lock",
        "alive",
        "priority",
        "_stop_exc",
        "_resume_event",
    )

    def __init__(self, domain):
        self.segment_id = ThreadSegment._next_id
        ThreadSegment._next_id += 1
        self.domain = domain
        self.lock = threading.Lock()
        self.alive = True
        self.priority = 5
        self._stop_exc = None
        self._resume_event = threading.Event()
        self._resume_event.set()  # not suspended

    # -- state changes (via handles) ------------------------------------------
    def stop(self, exc=None):
        self._stop_exc = exc or SegmentStoppedException(
            f"segment {self.segment_id} stopped"
        )
        self._resume_event.set()  # a stopped segment must not sleep forever

    def suspend(self):
        self._resume_event.clear()

    def resume(self):
        self._resume_event.set()

    @property
    def suspended(self):
        return not self._resume_event.is_set()

    @property
    def stop_pending(self):
        return self._stop_exc is not None

    # -- cooperative safepoint ----------------------------------------------------
    def checkpoint(self):
        """Apply pending stop/suspend.  Called at LRMI boundaries and by
        domain code that wants to be promptly stoppable."""
        while True:
            exc = self._stop_exc
            if exc is not None:
                raise exc
            if self._resume_event.is_set():
                return
            self._resume_event.wait(0.02)


class SegmentHandle:
    """The interposed ``Thread`` object: names one segment only.

    The real J-Kernel hides ``java.lang.Thread`` and substitutes a class
    with the same interface acting on the local segment; this handle is the
    hosted analogue.  It is safe to hand to other domains: the most it can
    do is affect the one segment it names.
    """

    __slots__ = ("_segment",)

    def __init__(self, segment):
        self._segment = segment

    def stop(self, exc=None):
        self._segment.stop(exc)

    def suspend(self):
        self._segment.suspend()

    def resume(self):
        self._segment.resume()

    def set_priority(self, priority):
        self._segment.priority = max(1, min(10, int(priority)))

    @property
    def priority(self):
        return self._segment.priority

    @property
    def alive(self):
        return self._segment.alive

    @property
    def domain_name(self):
        return self._segment.domain.name


def _stack():
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_segment():
    """The running thread's top segment, or None outside any domain."""
    stack = _stack()
    return stack[-1] if stack else None


def current_domain():
    segment = current_segment()
    return segment.domain if segment is not None else None


def current_handle():
    """Handle on the caller's own segment (the interposed Thread.current)."""
    segment = current_segment()
    if segment is None:
        raise RuntimeError("no active segment on this thread")
    return SegmentHandle(segment)


def checkpoint():
    """Safepoint for domain code: honours stop/suspend of *this* segment."""
    segment = current_segment()
    if segment is not None:
        segment.checkpoint()


def push(domain):
    """Enter a segment for ``domain`` (the callee side of an LRMI).

    Performs the caller-segment checkpoint, the two lock pairs, and
    registers the new segment with the callee domain.
    """
    if domain.terminated:
        raise DomainTerminatedException(
            f"domain {domain.name!r} has terminated"
        )
    stack = _stack()
    caller = stack[-1] if stack else None
    if caller is not None:
        caller.checkpoint()
        caller.lock.acquire()  # lock pair 1: caller segment
        caller.lock.release()
    segment = ThreadSegment(domain)
    segment.lock.acquire()  # lock pair 2: callee segment
    try:
        domain._register_segment(segment)
    finally:
        segment.lock.release()
    stack.append(segment)
    return segment


def pop():
    """Leave the callee segment; re-applies the caller's pending state."""
    stack = _stack()
    segment = stack.pop()
    with segment.lock:
        segment.alive = False
        segment.domain._unregister_segment(segment)
    caller = stack[-1] if stack else None
    if caller is not None:
        caller.checkpoint()
    return segment
