"""Thread segments (paper §3.1).

"Conceptually, the J-Kernel divides each Java thread into multiple
segments, one for each side of a cross-domain call. … Thread modification
methods such as stop and suspend act on thread segments rather than Java
threads, which prevents the caller from modifying the callee's thread
segment and vice-versa."

One host (OS) thread carries a stack of :class:`ThreadSegment` objects; an
LRMI pushes a fresh segment bound to the callee domain and pops it on
return.  No thread switch happens — only segment bookkeeping, which is why
cross-domain calls stay fast (Table 3 shows what real switches would cost).

Segment pooling
---------------

Allocating a ``threading.Event`` per cross-domain call dominated the null
LRMI cost, so segments are pooled per host thread: ``push()`` takes a
retired segment from the thread's free list and re-arms it, ``pop()``
retires it back.  One pooled :class:`ThreadSegment` object therefore hosts
many *incarnations* over its lifetime.  Each incarnation is identified by
a fresh ``state`` list ``[stop_exc, suspended, alive]``: a
:class:`SegmentHandle` captures the state list current at handle-creation
time, so a handle leaked out of one call goes inert the moment that
incarnation retires — it can never stop or suspend a later reuse of the
same pooled object.  ``stop``/``suspend``/``resume``/``set_priority`` act
on a handle, which names exactly one incarnation of one segment.
"""

from __future__ import annotations

import itertools
import threading

from .errors import DomainTerminatedException, SegmentStoppedException

_tls = threading.local()

#: Retired segments kept per thread; nested LRMIs deeper than this
#: fall back to allocating (and the excess is dropped on pop).
_POOL_MAX = 32

_next_segment_id = itertools.count(1).__next__

# state list slots (one list per incarnation; see module docstring)
_STOP = 0
_SUSPENDED = 1
_ALIVE = 2


class ThreadSegment:
    """One side of a cross-domain call on one host thread.

    ``state`` is the incarnation record ``[stop_exc, suspended, alive]``;
    it is replaced wholesale when a pooled segment is re-armed, which is
    what invalidates stale handles.
    """

    __slots__ = (
        "segment_id",
        "domain",
        "state",
        "priority",
        "_resume_event",
    )

    def __init__(self, domain):
        self.segment_id = _next_segment_id()
        self.domain = domain
        self.state = [None, False, True]
        self.priority = 5
        self._resume_event = threading.Event()
        self._resume_event.set()  # not suspended

    # -- state changes --------------------------------------------------------
    # These operate on whatever incarnation is current at call time: they
    # are for *self*-operations by code running inside the segment.  Never
    # hold a ThreadSegment across an LRMI return and call them later — the
    # pooled object may be running someone else's incarnation by then; a
    # cross-domain reference must go through SegmentHandle (stale-safe) or
    # deliver_stop (incarnation-pinned).
    def stop(self, exc=None):
        self.state[_STOP] = exc or SegmentStoppedException(
            f"segment {self.segment_id} stopped"
        )
        self._resume_event.set()  # a stopped segment must not sleep forever

    def suspend(self):
        self.state[_SUSPENDED] = True
        self._resume_event.clear()

    def resume(self):
        self.state[_SUSPENDED] = False
        self._resume_event.set()

    @property
    def alive(self):
        return self.state[_ALIVE]

    @property
    def suspended(self):
        return self.state[_SUSPENDED]

    @property
    def stop_pending(self):
        return self.state[_STOP] is not None

    # -- cooperative safepoint ----------------------------------------------------
    def checkpoint(self):
        """Apply pending stop/suspend.  Called at LRMI boundaries and by
        domain code that wants to be promptly stoppable."""
        state = self.state
        if state[_STOP] is None and not state[_SUSPENDED]:
            return
        self._checkpoint_slow(state)

    def _checkpoint_slow(self, state):
        # The event is a wakeup hint, not the source of truth: the loop
        # re-reads this incarnation's state list every tick, so a stale
        # handle poking the shared event causes at most a spurious wakeup.
        # A stray set while still suspended is re-armed (cleared) before
        # waiting again — otherwise one leaked-handle poke would turn the
        # timed wait into a busy spin.
        event = self._resume_event
        while True:
            exc = state[_STOP]
            if exc is not None:
                raise exc
            if not state[_SUSPENDED]:
                return
            if event.is_set():
                event.clear()
                continue  # re-read the flags a racing resume/stop just set
            event.wait(0.02)


class SegmentHandle:
    """The interposed ``Thread`` object: names one segment incarnation.

    The real J-Kernel hides ``java.lang.Thread`` and substitutes a class
    with the same interface acting on the local segment; this handle is the
    hosted analogue.  It is safe to hand to other domains: the most it can
    do is affect the one segment incarnation it names, and it goes inert
    when that incarnation retires (even though the pooled segment object
    itself lives on).
    """

    __slots__ = ("_segment", "_state", "_domain_name")

    def __init__(self, segment):
        self._segment = segment
        self._state = segment.state
        self._domain_name = segment.domain.name

    def _live(self):
        # Stale handles write only to their own retired state list, which
        # nothing reads any more — reuse of the segment is unaffected.
        return self._state[_ALIVE] and self._state is self._segment.state

    def stop(self, exc=None):
        state = self._state
        state[_STOP] = exc or SegmentStoppedException(
            f"segment {self._segment.segment_id} stopped"
        )
        if self._live():
            self._segment._resume_event.set()

    def suspend(self):
        self._state[_SUSPENDED] = True
        if self._live():
            self._segment._resume_event.clear()

    def resume(self):
        self._state[_SUSPENDED] = False
        if self._live():
            self._segment._resume_event.set()

    def set_priority(self, priority):
        if self._live():
            self._segment.priority = max(1, min(10, int(priority)))

    @property
    def priority(self):
        return self._segment.priority if self._live() else 5

    @property
    def alive(self):
        return self._state[_ALIVE]

    @property
    def domain_name(self):
        return self._domain_name


def _stack():
    try:
        return _tls.stack
    except AttributeError:
        stack = _tls.stack = []
        return stack


def _pool():
    try:
        return _tls.pool
    except AttributeError:
        pool = _tls.pool = []
        return pool


def current_segment():
    """The running thread's top segment, or None outside any domain."""
    stack = _stack()
    return stack[-1] if stack else None


def current_domain():
    segment = current_segment()
    return segment.domain if segment is not None else None


def current_handle():
    """Handle on the caller's own segment (the interposed Thread.current)."""
    segment = current_segment()
    if segment is None:
        raise RuntimeError("no active segment on this thread")
    return SegmentHandle(segment)


def checkpoint():
    """Safepoint for domain code: honours stop/suspend of *this* segment."""
    segment = current_segment()
    if segment is not None:
        segment.checkpoint()


def _enter(domain):
    """Pooled segment push: the LRMI fast-path entry.

    Performs the caller-segment checkpoint, re-arms a pooled segment (or
    allocates on a cold pool) and registers it with the callee domain.
    Returns ``(stack, segment)`` so the matching :func:`_exit` needs no
    thread-local lookups.
    """
    try:
        stack = _tls.stack
    except AttributeError:
        stack = _tls.stack = []
    if stack:
        caller = stack[-1]
        state = caller.state
        if state[0] is not None or state[1]:
            caller.checkpoint()
    if domain.terminated:
        raise DomainTerminatedException(
            f"domain {domain.name!r} has terminated"
        )
    try:
        pool = _tls.pool
    except AttributeError:
        pool = _tls.pool = []
    if pool:
        segment = pool.pop()
        segment.domain = domain
        segment.state = [None, False, True]  # fresh incarnation
        segment.priority = 5
    else:
        segment = ThreadSegment(domain)
    # Registration makes the segment reachable from Domain.terminate().
    # The mapping pins the *incarnation* (segment -> state list), so a
    # terminate() that snapshots it can only ever stop the incarnation
    # that was registered — never a later reuse of the pooled object.
    # The dict mutations are single C-level ops (atomic under the GIL);
    # the re-check below closes the race with a concurrent terminate():
    # either the terminator saw our segment in its snapshot and stopped
    # it, or we see the flag it set first and back out.
    registered = domain._segments
    registered[segment] = segment.state
    if domain.terminated:
        registered.pop(segment, None)
        _retire(segment, pool)
        raise DomainTerminatedException(
            f"domain {domain.name!r} has terminated"
        )
    stack.append(segment)
    return stack, segment


def _exit(stack, segment):
    """Pooled segment pop: retires the top segment and re-applies the
    caller's pending state (which may raise, as in the eager pop)."""
    del stack[-1]
    domain = segment.domain
    if domain is not None:
        domain._segments.pop(segment, None)
    try:
        pool = _tls.pool
    except AttributeError:
        pool = _tls.pool = []
    _retire(segment, pool)
    if stack:
        caller = stack[-1]
        state = caller.state
        if state[0] is not None or state[1]:
            caller.checkpoint()


def _retire(segment, pool):
    """End the current incarnation and return the segment to the pool."""
    state = segment.state
    state[_ALIVE] = False
    if state[_SUSPENDED]:
        segment._resume_event.set()
    segment.domain = None
    if len(pool) < _POOL_MAX:
        pool.append(segment)


def deliver_stop(segment, state, exc):
    """Stop one *pinned* incarnation of a segment (Domain.terminate).

    ``state`` is the incarnation captured at registration time: if the
    pooled segment has since been re-armed for another domain, the write
    lands in the retired state list and the reuse is unaffected.
    """
    state[_STOP] = exc
    segment._resume_event.set()


def push(domain):
    """Enter a segment for ``domain`` (the callee side of an LRMI)."""
    return _enter(domain)[1]


def pop():
    """Leave the callee segment; re-applies the caller's pending state."""
    stack = _stack()
    segment = stack[-1]
    _exit(stack, segment)
    return segment
