"""Shared classes (paper §3.1, "Class Name Resolvers").

Domains must share remote interfaces and fast-copy classes to establish
common methods and argument types for cross-domain calls.  Sharing is
governed by two rules (footnote 3 of the paper):

* shared classes (and, transitively, the classes they refer to) must have
  **no static fields** — otherwise a mutable class attribute becomes a
  covert shared-object channel between domains;
* two domains that share a class must also share the classes it
  references, for cross-domain type consistency.

:func:`share_class` validates the first rule and packages the class with
its declared references; ``SharedClass.install`` grants the whole closure
into a domain's namespace at once, enforcing the second rule.
"""

from __future__ import annotations

import inspect

from .errors import SharingError

_IMMUTABLE_STATIC_TYPES = (
    int, float, bool, str, bytes, complex, frozenset, type(None),
)

_ALLOWED_DUNDERS = {
    "__module__", "__qualname__", "__doc__", "__dict__", "__weakref__",
    "__slots__", "__annotations__", "__parameters__", "__orig_bases__",
    "__abstractmethods__", "__dataclass_fields__", "__dataclass_params__",
    "__match_args__", "__hash__", "__firstlineno__", "__static_attributes__",
    "__jk_references__",  # the sharing machinery's own metadata
}


def _is_immutable_static(value):
    if isinstance(value, _IMMUTABLE_STATIC_TYPES):
        return True
    if isinstance(value, tuple):
        return all(_is_immutable_static(item) for item in value)
    return False


def check_no_static_state(cls):
    """Reject classes with mutable class-level attributes.

    Methods, properties, descriptors and immutable constants are fine;
    anything that could act as a mutable shared "static field" is not.
    """
    for name, value in vars(cls).items():
        if name in _ALLOWED_DUNDERS:
            continue
        if callable(value) or isinstance(
            value, (staticmethod, classmethod, property)
        ):
            continue
        if inspect.isdatadescriptor(value) or inspect.ismemberdescriptor(
            value
        ):
            continue
        if _is_immutable_static(value):
            continue
        raise SharingError(
            f"class {cls.__name__} cannot be shared: class attribute "
            f"{name!r} is mutable static state ({type(value).__name__})"
        )
    return cls


class SharedClass:
    """A shareable class plus the classes it references.

    The J-Kernel's ``SharedClass`` capability: a domain that loaded new
    classes can hand this to other domains, which install it to gain the
    class (and its referenced classes) in their namespace.
    """

    def __init__(self, cls, referenced=()):
        check_no_static_state(cls)
        closure = []
        seen = set()
        pending = list(referenced)
        while pending:
            ref = pending.pop()
            if ref in seen:
                continue
            seen.add(ref)
            check_no_static_state(ref)
            closure.append(ref)
            extra = getattr(ref, "__jk_references__", ())
            pending.extend(extra)
        extra = getattr(cls, "__jk_references__", ())
        for ref in extra:
            if ref not in seen:
                seen.add(ref)
                check_no_static_state(ref)
                closure.append(ref)
        self.cls = cls
        self.referenced = tuple(closure)

    def install(self, domain):
        """Grant the class and its full reference closure to a domain."""
        names = {self.cls.__name__: self.cls}
        for ref in self.referenced:
            names[ref.__name__] = ref
        for name, cls in names.items():
            existing = domain.resolver.granted(name)
            if existing is not None and existing is not cls:
                raise SharingError(
                    f"domain {domain.name} already binds {name!r} to a "
                    "different class"
                )
        for name, cls in names.items():
            domain.resolver.grant(name, cls)
        return sorted(names)

    def __repr__(self):
        refs = ", ".join(ref.__name__ for ref in self.referenced)
        return f"<SharedClass {self.cls.__name__} [{refs}]>"


def share_class(cls, referenced=()):
    """Validate and package a class for cross-domain sharing."""
    return SharedClass(cls, referenced)


def references(*classes):
    """Class decorator declaring which classes a shareable class refers to
    (the transitive-sharing rule uses this declaration)."""
    def mark(cls):
        cls.__jk_references__ = tuple(classes)
        return cls

    return mark
