"""Protection domains (paper §3).

"Protection domains are represented by the Java class Domain.  Each
protection domain has a namespace that it controls as well as a set of
threads.  When a domain terminates, all of the capabilities that it created
are revoked, so that all of its memory may be freed."

A hosted domain owns:

* a weak registry of the capabilities it created (revoked en masse at
  termination — weak, so discarded stubs do not accumulate),
* the thread segments currently executing inside it,
* the threads it spawned,
* a controlled namespace for dynamically loaded code (see
  ``repro.core.resolver``),
* per-domain "system" state — the paper notes ``System``'s stdio must be
  interposed per domain; ``println``/``output`` are that replacement.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager

from . import segments
from .errors import DomainError, DomainTerminatedException


class Domain:
    """One protection domain."""

    _system = None
    _system_lock = threading.Lock()

    def __init__(self, name):
        self.name = name
        self.terminated = False
        # LRMI calls received: a plain counter bumped on the hot path
        # (no dict round-trip per call); surfaced through ``stats``.
        self._lrmi_calls_in = 0
        self._stats = {}
        self._lock = threading.Lock()
        self._capabilities = weakref.WeakSet()
        # segment -> incarnation state list, pinned at registration so
        # terminate() can never stop a later reuse of a pooled segment
        self._segments = {}
        self._threads = []
        self._namespace = {}
        self._modules = {}
        self._output = []
        self._resolver = None
        # Stack-based access control (repro.core.policy): None means
        # unrestricted — this domain never denies a permission check.
        self.permissions = None

    def __repr__(self):
        state = "terminated" if self.terminated else "live"
        return f"<Domain {self.name!r} ({state})>"

    @property
    def stats(self):
        """Mapping view of this domain's counters.

        Kept as a mapping for existing readers; the hot-path counters
        themselves live in plain attributes (``_lrmi_calls_in``).
        """
        snapshot = dict(self._stats)
        snapshot["lrmi_calls_in"] = self._lrmi_calls_in
        return snapshot

    def record_stat(self, key, value):
        """Store an auxiliary (off-hot-path) counter in ``stats``."""
        self._stats[key] = value

    # -- policy -----------------------------------------------------------
    def set_policy(self, policy):
        """Install (or clear) this domain's permission set.

        ``policy`` is ``None`` (unrestricted), a
        :class:`~repro.core.policy.PermissionSet`, or an iterable of
        permissions / ``"kind:target"`` strings.  Every permission check
        on a call chain passing through this domain intersects with it.
        """
        from .policy import coerce_policy

        self.permissions = coerce_policy(policy)
        return self

    # -- the system domain ------------------------------------------------
    @classmethod
    def system(cls):
        """The implicit domain of host code running outside any domain."""
        with cls._system_lock:
            if cls._system is None or cls._system.terminated:
                cls._system = Domain("<system>")
            return cls._system

    @staticmethod
    def current():
        """The domain of the calling thread's current segment."""
        return segments.current_domain() or Domain.system()

    @staticmethod
    def get_repository():
        from .repository import get_repository

        return get_repository()

    # -- capability bookkeeping -----------------------------------------------
    def _register_capability(self, capability):
        with self._lock:
            if self.terminated:
                raise DomainError(f"domain {self.name} terminated")
            self._capabilities.add(capability)

    def capabilities(self):
        """Snapshot of this domain's live (non-collected) capabilities."""
        with self._lock:
            return [cap for cap in self._capabilities if not cap.revoked]

    # Segment bookkeeping happens in repro.core.segments._enter/_exit,
    # which mutate ``_segments`` directly with GIL-atomic dict ops plus a
    # terminated re-check (see _enter) instead of taking ``_lock`` on the
    # LRMI hot path.

    def in_flight_calls(self):
        """Thread segments currently executing inside this domain —
        every LRMI (and ``run``/``spawn`` context) registers one for its
        duration, so zero means the domain is quiescent right now."""
        return len(self._segments)

    # -- execution inside the domain ----------------------------------------------
    @contextmanager
    def context(self):
        """Run host code inside this domain (pushes a root segment)."""
        segments.push(self)
        try:
            yield self
        finally:
            segments.pop()

    def run(self, fn, *args, **kwargs):
        """Call ``fn`` with this domain as the current domain."""
        with self.context():
            return fn(*args, **kwargs)

    def spawn(self, fn, *args, name=None, daemon=True):
        """Start a thread whose root segment belongs to this domain.

        The thread dies quietly if its segment is stopped (domain
        termination or a segment-handle ``stop``).
        """
        if self.terminated:
            raise DomainError(f"domain {self.name} terminated")

        def body():
            segments.push(self)
            try:
                fn(*args)
            except DomainTerminatedException:
                pass
            except Exception as exc:
                if not _is_segment_stop(exc):
                    self._output.append(f"thread error: {exc!r}")
            finally:
                segments.pop()

        thread = threading.Thread(
            target=body, name=name or f"{self.name}-thread", daemon=daemon
        )
        with self._lock:
            self._threads.append(thread)
        thread.start()
        return thread

    # -- per-domain "System" ------------------------------------------------------
    def println(self, text):
        """Per-domain standard output (the interposed ``System.out``)."""
        self._output.append(str(text))

    @property
    def output(self):
        return list(self._output)

    # -- namespace (resolver-controlled) ------------------------------------------
    @property
    def resolver(self):
        if self._resolver is None:
            from .resolver import DomainResolver

            self._resolver = DomainResolver(self)
        return self._resolver

    def load_module(self, module_name, source):
        """Load code into this domain through its resolver."""
        return self.resolver.load_module(module_name, source)

    def lookup_loaded(self, module_name):
        return self._modules.get(module_name)

    # -- termination ------------------------------------------------------------------
    def terminate(self):
        """Terminate the domain (paper's clean termination semantics).

        Revokes every capability the domain created, stops every segment
        currently executing inside the domain (including suspended ones,
        which are resumed so they can die), and marks the domain dead so no
        new capability, segment or thread can be created.  Idempotent.
        """
        with self._lock:
            if self.terminated:
                return
            self.terminated = True
            live_capabilities = list(self._capabilities)
            live_segments = list(self._segments.items())
        for capability in live_capabilities:
            capability.revoke()
        reason = DomainTerminatedException(
            f"domain {self.name!r} has terminated"
        )
        for segment, state in live_segments:
            segments.deliver_stop(segment, state, reason)

    def join_threads(self, timeout=2.0):
        """Wait for this domain's spawned threads (test/shutdown helper)."""
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout)


def _is_segment_stop(exc):
    from .errors import SegmentStoppedException

    return isinstance(exc, SegmentStoppedException)
