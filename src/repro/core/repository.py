"""The system-wide capability repository (paper §3.1).

"The repository is a service allowing domains to publish capabilities under
a name."  Domain 1 binds, domain 2 looks up and invokes.  Only capabilities
may be bound — binding a plain object would leak a shared reference, which
is exactly what the J-Kernel architecture forbids.

Bindings remember the binding domain; only that domain may unbind or
rebind a name.  Looking up a name bound to a revoked capability succeeds —
using the capability then throws, which is the designed failure
propagation (a terminated server's clients learn of the failure at the
call site).
"""

from __future__ import annotations

import threading

from .capability import Capability
from .domain import Domain
from .errors import DomainError, NameAlreadyBoundError, NameNotBoundError


class Repository:
    def __init__(self):
        self._lock = threading.Lock()
        self._bindings = {}  # name -> (capability, binder_domain)

    def bind(self, name, capability, domain=None):
        """Publish ``capability`` under ``name``."""
        if not isinstance(capability, Capability):
            raise TypeError(
                "only capabilities may be bound in the repository "
                f"(got {type(capability).__name__})"
            )
        binder = domain or Domain.current()
        with self._lock:
            if name in self._bindings:
                raise NameAlreadyBoundError(name)
            self._bindings[name] = (capability, binder)

    def lookup(self, name):
        """Fetch the capability bound to ``name``."""
        with self._lock:
            entry = self._bindings.get(name)
        if entry is None:
            raise NameNotBoundError(name)
        return entry[0]

    def unbind(self, name, domain=None):
        """Remove a binding; only the binding domain may do this."""
        requester = domain or Domain.current()
        with self._lock:
            entry = self._bindings.get(name)
            if entry is None:
                raise NameNotBoundError(name)
            if entry[1] is not requester:
                raise DomainError(
                    f"{requester.name} may not unbind {name!r} "
                    f"(bound by {entry[1].name})"
                )
            del self._bindings[name]

    def rebind(self, name, capability, domain=None):
        """Atomically replace a binding owned by the calling domain."""
        if not isinstance(capability, Capability):
            raise TypeError("only capabilities may be bound")
        requester = domain or Domain.current()
        with self._lock:
            entry = self._bindings.get(name)
            if entry is not None and entry[1] is not requester:
                raise DomainError(
                    f"{requester.name} may not rebind {name!r} "
                    f"(bound by {entry[1].name})"
                )
            self._bindings[name] = (capability, requester)

    def names(self):
        with self._lock:
            return sorted(self._bindings)

    def binder_of(self, name):
        with self._lock:
            entry = self._bindings.get(name)
        if entry is None:
            raise NameNotBoundError(name)
        return entry[1]

    def sweep_revoked(self):
        """Drop bindings whose capabilities have been revoked; returns how
        many were removed (housekeeping after domain terminations)."""
        with self._lock:
            dead = [
                name
                for name, (capability, _) in self._bindings.items()
                if capability.revoked
            ]
            for name in dead:
                del self._bindings[name]
        return len(dead)


_default = Repository()
_default_lock = threading.Lock()


def get_repository():
    """The process-wide repository instance."""
    return _default


def reset_repository():
    """Replace the global repository (test isolation helper)."""
    global _default
    with _default_lock:
        _default = Repository()
    return _default
