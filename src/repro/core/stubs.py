"""Run-time stub generation for capabilities (paper §3.1, "Local-RMI
stubs").

"Internally, create automatically generates a stub class at run-time for
each target class.  This avoids off-line stub generators and IDL files."

For each implementation class we generate (once, cached) a stub class that
extends :class:`~repro.core.capability.Capability` and implements every
remote interface of the target.  Each stub method is generated source code
that funnels into the LRMI path: revocation check, segment switch, argument
copy, target invoke, result copy, segment restore.
"""

from __future__ import annotations

from .remote import remote_interfaces, remote_methods

_cache = {}


def stub_class_for(implementation_cls):
    """The generated stub class for one target class (cached)."""
    cached = _cache.get(implementation_cls)
    if cached is not None:
        return cached
    stub_cls = _generate(implementation_cls)
    _cache[implementation_cls] = stub_cls
    return stub_cls


def _generate(implementation_cls):
    from .capability import Capability, lrmi_invoke

    methods = remote_methods(implementation_cls)
    interfaces = remote_interfaces(implementation_cls)

    lines = []
    for name in sorted(methods):
        lines.append(f"def {name}(self, *args, **kwargs):")
        lines.append(f"    return _lrmi(self, {name!r}, args, kwargs)")
        lines.append("")
    source = "\n".join(lines)
    namespace = {"_lrmi": lrmi_invoke}
    exec(
        compile(source, f"<stub {implementation_cls.__qualname__}>", "exec"),
        namespace,
    )

    body = {
        name: namespace[name] for name in methods
    }
    body["__module__"] = implementation_cls.__module__
    body["__doc__"] = (
        f"Generated J-Kernel stub for {implementation_cls.__qualname__}."
    )
    body["__stub_source__"] = source
    stub_cls = type(
        f"{implementation_cls.__name__}_Stub",
        (Capability, *interfaces),
        body,
    )
    return stub_cls


def clear_cache():
    """Drop generated stubs (test isolation helper)."""
    _cache.clear()
