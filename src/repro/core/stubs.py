"""Run-time stub generation for capabilities (paper §3.1, "Local-RMI
stubs").

"Internally, create automatically generates a stub class at run-time for
each target class.  This avoids off-line stub generators and IDL files."

For each implementation class we generate (once, cached) a stub class that
extends :class:`~repro.core.capability.Capability` and implements every
remote interface of the target.

Each stub method is *specialized* generated source: a method with a fixed
positional signature (mirroring the remote interface, no ``*args``
trampoline) that inlines the whole LRMI fast path — termination and
revocation checks, pooled segment switch, per-argument calling-convention
dispatch, the target invocation through a bound method cached on the stub
instance at first call (invalidated by ``revoke()``), segment restore, and
the result copy.  Methods whose interface signature cannot be expressed as
plain positional parameters fall back to a generic ``*args/**kwargs``
method funnelling into :func:`~repro.core.capability.lrmi_invoke`.
"""

from __future__ import annotations

import inspect

from .remote import method_signature, remote_interfaces, remote_methods

_cache = {}

#: Specialize up to this many positional parameters; beyond it the generic
#: trampoline is no slower in practice.
_MAX_FAST_ARITY = 8

_FAST_TEMPLATE = """\
def {name}(self{params}):
    _jk_domain = self._domain
    if _jk_domain.terminated:
        _lrmi_dead(self, _jk_domain)
    _jk_target = self._target
    if _jk_target is None:
        _lrmi_revoked(self)
    _jk_guard = self._jk_guard
    if _jk_guard is not None:
        _policy_check(_jk_guard)
    _jk_domain._lrmi_calls_in += 1
    _jk_stack, _jk_segment = _lrmi_enter(_jk_domain)
    _jk_mode = self._copy_mode
    _jk_pending = None
    _jk_result = None
    try:
{copy_lines}        try:
            try:
                _jk_fn = self._jkb_{name}
            except AttributeError:
                _jk_fn = _lrmi_bind(self, {name!r}, _jk_target)
            _jk_result = _jk_fn({arglist})
        except BaseException as _jk_exc:
            _jk_pending = _jk_exc
    finally:
        _lrmi_exit(_jk_stack, _jk_segment)
    if _jk_pending is not None:
        if not isinstance(_jk_pending, Exception):
            raise _jk_pending
        raise _lrmi_wrap(_jk_pending, _jk_mode) from None
    if _jk_result is None or type(_jk_result) in _IMMUTABLE:
        return _jk_result
    return _transfer(_jk_result, _jk_mode)
"""

_COPY_LINE = """\
        if type({p}) not in _IMMUTABLE:
            {p} = _transfer({p}, _jk_mode)
"""

_GENERIC_TEMPLATE = """\
def {name}(self, *args, **kwargs):
    return _lrmi(self, {name!r}, args, kwargs)
"""


def stub_class_for(implementation_cls):
    """The generated stub class for one target class (cached)."""
    cached = _cache.get(implementation_cls)
    if cached is not None:
        return cached
    stub_cls = _generate(implementation_cls)
    _cache[implementation_cls] = stub_cls
    return stub_cls


def _fast_parameters(declaration):
    """The positional parameter list for a specializable method, or None
    when the declaration needs the generic ``*args/**kwargs`` path.

    Declarations with default values are not specialized: a compiled stub
    would have to bake the *interface's* defaults into the call, silently
    overriding an implementation whose defaults differ — the generic
    trampoline forwards only what the caller passed, so the target's own
    defaults keep applying.
    """
    parameters = method_signature(declaration)
    if parameters is None or len(parameters) > _MAX_FAST_ARITY:
        return None
    for parameter in parameters:
        if parameter.kind is not inspect.Parameter.POSITIONAL_OR_KEYWORD:
            return None
        if parameter.default is not inspect.Parameter.empty:
            return None
        name = parameter.name
        if name == "self" or name.startswith("_jk"):
            return None
    return parameters


def _method_source(name, declaration):
    parameters = _fast_parameters(declaration)
    if parameters is None:
        return _GENERIC_TEMPLATE.format(name=name)
    params = "".join(f", {parameter.name}" for parameter in parameters)
    arglist = ", ".join(parameter.name for parameter in parameters)
    copy_lines = "".join(
        _COPY_LINE.format(p=parameter.name) for parameter in parameters
    )
    return _FAST_TEMPLATE.format(
        name=name, params=params, arglist=arglist, copy_lines=copy_lines
    )


def _generate(implementation_cls):
    from . import convention
    from . import segments
    from .capability import (
        Capability,
        _bind_method,
        _raise_revoked,
        _raise_terminated,
        lrmi_invoke,
    )
    from .convention import transfer, transfer_exception
    from .policy import check_permission

    methods = remote_methods(implementation_cls)
    interfaces = remote_interfaces(implementation_cls)

    namespace = {
        "_lrmi": lrmi_invoke,
        "_lrmi_enter": segments._enter,
        "_lrmi_exit": segments._exit,
        "_lrmi_bind": _bind_method,
        "_lrmi_dead": _raise_terminated,
        "_lrmi_revoked": _raise_revoked,
        "_lrmi_wrap": transfer_exception,
        "_policy_check": check_permission,
        "_transfer": transfer,
        # The live by-reference set (immutable primitives + sealed
        # classes): sealed arguments/results skip the transfer call.
        "_IMMUTABLE": convention.PASS_BY_REFERENCE,
    }
    source = "\n".join(
        _method_source(name, methods[name]) for name in sorted(methods)
    )
    exec(
        compile(source, f"<stub {implementation_cls.__qualname__}>", "exec"),
        namespace,
    )

    body = {
        name: namespace[name] for name in methods
    }
    body["__module__"] = implementation_cls.__module__
    body["__doc__"] = (
        f"Generated J-Kernel stub for {implementation_cls.__qualname__}."
    )
    body["__stub_source__"] = source
    stub_cls = type(
        f"{implementation_cls.__name__}_Stub",
        (Capability, *interfaces),
        body,
    )
    # Stubs cross domain boundaries by reference, never by copy.
    convention.register_reference_type(stub_cls)
    return stub_cls


def clear_cache():
    """Drop generated stubs (test isolation helper).

    Also removes the stub classes' by-reference dispatch entries so
    superseded class objects do not stay pinned by the calling
    convention's type table.
    """
    from . import convention

    for stub_cls in _cache.values():
        convention.unregister_reference_type(stub_cls)
    _cache.clear()
