"""Per-tenant resource quotas: the *enforcement* layer over accounting.

The paper's resource-accounting section measures what crosses into a
domain (``repro.core.accounting`` records copies, allocations and
requests) but enforces nothing — an over-hungry tenant can starve its
neighbours.  This module turns the measurements into budgets:

* **CPU** — explicit tick charges (the MiniJVM scheduler's instruction
  ticks for enforced domains, servlet wall-microseconds for hosted
  ones) accumulate against ``QuotaSpec.cpu_ticks``.
* **Memory** — the account's ``allocated_bytes`` plus ``bytes_copied_in``
  gate against ``QuotaSpec.memory_bytes`` (a domain is charged for what
  is copied *into* it, so copies are attributable memory pressure).
* **Request rate** — a sliding-window counter gates requests/second
  against ``QuotaSpec.requests_per_sec``.

Enforcement is two-stage, Capacity-style:

* crossing ``soft_fraction`` of any budget marks the tenant
  **throttled** — the admission controller (``repro.web.control``)
  deprioritizes it, shedding its traffic first under overload while
  still serving it on an idle box;
* exhausting a hard budget marks the tenant **exceeded** and fires the
  registered kill callback exactly once, off the charging thread — the
  web layer routes it through the existing drain/terminate/release
  teardown, so a quota kill is indistinguishable from a clean
  administrative termination (capabilities revoked, accounts folded
  into retained totals, in-flight callers answered with typed errors).

Quota state survives out-of-process domain hosts: a cell *reconciles*
against the host's control-pipe stats reports, and when the host dies
(crash or quota kill) the last report folds into retained usage — a
respawned host starts its own counters at zero without resetting the
tenant's budget position.
"""

from __future__ import annotations

import threading
import time

from .errors import QuotaExceededException

#: Cell states, ordered by severity.
OK = "ok"
SOFT = "soft"
HARD = "hard"

_SEVERITY = {OK: 0, SOFT: 1, HARD: 2}


class QuotaSpec:
    """An immutable per-tenant budget.  ``None`` disables a dimension.

    ``soft_fraction`` is where throttling starts (deprioritized
    admission); the full budget is the hard (termination) limit.
    """

    __slots__ = ("cpu_ticks", "memory_bytes", "requests_per_sec",
                 "soft_fraction")

    def __init__(self, cpu_ticks=None, memory_bytes=None,
                 requests_per_sec=None, soft_fraction=0.8):
        if not 0.0 < soft_fraction <= 1.0:
            raise ValueError("soft_fraction must be in (0, 1]")
        for name, value in (("cpu_ticks", cpu_ticks),
                            ("memory_bytes", memory_bytes),
                            ("requests_per_sec", requests_per_sec)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")
        object.__setattr__(self, "cpu_ticks", cpu_ticks)
        object.__setattr__(self, "memory_bytes", memory_bytes)
        object.__setattr__(self, "requests_per_sec", requests_per_sec)
        object.__setattr__(self, "soft_fraction", soft_fraction)

    def __setattr__(self, name, value):
        raise AttributeError("QuotaSpec is immutable")

    def __repr__(self):
        return (f"QuotaSpec(cpu_ticks={self.cpu_ticks}, "
                f"memory_bytes={self.memory_bytes}, "
                f"requests_per_sec={self.requests_per_sec}, "
                f"soft_fraction={self.soft_fraction})")


class RateWindow:
    """Sliding-window event rate: requests/second over the last window.

    Coarse sub-window buckets make ``note`` O(1) and ``rate`` O(buckets)
    with bounded memory, trading exactness at bucket edges for never
    growing with traffic.  Safe for concurrent callers (one small lock;
    this is the per-request path, not the per-LRMI hot path).
    """

    __slots__ = ("window_s", "_bucket_s", "_buckets", "_lock", "total")

    def __init__(self, window_s=1.0, buckets=10):
        self.window_s = window_s
        self._bucket_s = window_s / buckets
        self._buckets = {}  # bucket index -> count
        self._lock = threading.Lock()
        self.total = 0

    def note(self, now=None, n=1):
        now = time.monotonic() if now is None else now
        index = int(now / self._bucket_s)
        with self._lock:
            self.total += n
            self._buckets[index] = self._buckets.get(index, 0) + n
            if len(self._buckets) > 64:  # stale-bucket GC, rarely taken
                horizon = index - int(self.window_s / self._bucket_s) - 1
                for key in [k for k in self._buckets if k <= horizon]:
                    del self._buckets[key]

    def rate(self, now=None):
        """Events per second over the trailing window."""
        now = time.monotonic() if now is None else now
        index = int(now / self._bucket_s)
        oldest = index - int(self.window_s / self._bucket_s)
        with self._lock:
            count = sum(c for k, c in self._buckets.items()
                        if oldest < k <= index)
        return count / self.window_s


class QuotaCell:
    """Enforcement state for one tenant: budget position and verdict.

    ``account`` is the tenant's :class:`~repro.core.accounting.
    ResourceAccount` (memory usage reads through it); CPU ticks and the
    request window are charged directly on the cell.  ``_retained`` and
    ``_external`` carry usage reported by out-of-process hosts over the
    control pipe: ``reconcile`` updates the live report, ``fold_external``
    retires it when the host dies — so restarting the host never resets
    the tenant's budget position.
    """

    __slots__ = ("key", "spec", "account", "window", "_cpu_ticks",
                 "_lock", "_state", "_breached", "_killed", "_external",
                 "_retained")

    def __init__(self, key, spec, account=None):
        self.key = key
        self.spec = spec
        self.account = account
        self.window = RateWindow()
        self._cpu_ticks = 0
        self._lock = threading.Lock()
        self._state = OK
        self._breached = None   # (dimension, used, limit) at hard breach
        self._killed = False
        self._external = {}     # latest out-of-process usage report
        self._retained = {"cpu_ticks": 0, "memory_bytes": 0, "requests": 0}

    # -- charging ----------------------------------------------------------
    def charge_cpu(self, ticks):
        with self._lock:
            self._cpu_ticks += ticks
        return self.evaluate()

    def charge_request(self, now=None):
        self.window.note(now)
        return self.evaluate(now)

    # -- out-of-process reconciliation ------------------------------------
    def reconcile(self, snapshot):
        """Fold a live host's stats report into the budget position.

        ``snapshot`` is accounting-shaped: ``allocated_bytes`` /
        ``bytes_copied_in`` / ``requests`` / ``cpu_ticks`` (missing keys
        read as zero).  The report replaces the previous *live* view;
        retained usage from dead hosts stays.
        """
        with self._lock:
            self._external = dict(snapshot)
        return self.evaluate()

    def fold_external(self):
        """Retire the live host report into retained usage (the host
        died or was killed); the next host starts reporting from zero."""
        with self._lock:
            report, self._external = self._external, {}
            self._retained["cpu_ticks"] += report.get("cpu_ticks", 0)
            self._retained["memory_bytes"] += (
                report.get("allocated_bytes", 0)
                + report.get("bytes_copied_in", 0)
            )
            self._retained["requests"] += report.get("requests", 0)

    # -- usage/verdict -----------------------------------------------------
    def cpu_used(self):
        external = self._external
        return (self._cpu_ticks + self._retained["cpu_ticks"]
                + external.get("cpu_ticks", 0))

    def memory_used(self):
        used = self._retained["memory_bytes"]
        account = self.account
        if account is not None:
            used += account.allocated_bytes + account.bytes_copied_in
        external = self._external
        return (used + external.get("allocated_bytes", 0)
                + external.get("bytes_copied_in", 0))

    def usage(self, now=None):
        return {
            "cpu_ticks": self.cpu_used(),
            "memory_bytes": self.memory_used(),
            "requests_per_sec": round(self.window.rate(now), 2),
            "requests": self.window.total + self._retained["requests"]
            + self._external.get("requests", 0),
        }

    @property
    def state(self):
        return self._state

    @property
    def breached(self):
        """(dimension, used, limit) of the first hard breach, or None."""
        return self._breached

    def evaluate(self, now=None):
        """Recompute the verdict; returns the (possibly new) state.

        A hard verdict is sticky: the tenant is being terminated, and a
        momentarily-idle sliding window must not resurrect it.
        """
        if self._state == HARD:
            return HARD
        spec = self.spec
        verdict = OK
        breach = None
        for dimension, used, limit in (
            ("cpu_ticks", self.cpu_used(), spec.cpu_ticks),
            ("memory_bytes", self.memory_used(), spec.memory_bytes),
            ("requests_per_sec", self.window.rate(now),
             spec.requests_per_sec),
        ):
            if limit is None:
                continue
            if used >= limit:
                verdict, breach = HARD, (dimension, used, limit)
                break
            if used >= limit * spec.soft_fraction:
                verdict = SOFT
        with self._lock:
            if self._state != HARD:
                self._state = verdict
                if verdict == HARD:
                    self._breached = breach
        return self._state

    def exceeded_error(self):
        dimension, used, limit = self._breached or ("quota", "?", "?")
        return QuotaExceededException(
            f"tenant {self.key!r} exceeded {dimension} budget "
            f"({used} >= {limit})"
        )

    def snapshot(self, now=None):
        return {
            "state": self._state,
            "usage": self.usage(now),
            "limits": {
                "cpu_ticks": self.spec.cpu_ticks,
                "memory_bytes": self.spec.memory_bytes,
                "requests_per_sec": self.spec.requests_per_sec,
            },
            "breached": self._breached,
        }

    def __repr__(self):
        return f"<QuotaCell {self.key!r} ({self._state})>"


class QuotaManager:
    """Holds per-tenant cells and runs the kill path exactly once.

    ``on_kill(key, cell)`` (registered per cell) performs the clean
    termination — the web layer passes its drain/terminate/unroute
    teardown.  It runs on a dedicated reaper thread, never on the
    charging (request) thread: the charger may be *inside* the domain
    being killed, and terminate would stop its own segment mid-charge.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._cells = {}
        self._kills = {}
        self.kills_fired = 0

    def set_quota(self, key, spec, account=None, on_kill=None):
        with self._lock:
            cell = self._cells[key] = QuotaCell(key, spec, account)
            if on_kill is not None:
                self._kills[key] = on_kill
            else:
                self._kills.pop(key, None)
            return cell

    def cell(self, key):
        return self._cells.get(key)

    def remove(self, key):
        with self._lock:
            self._kills.pop(key, None)
            return self._cells.pop(key, None)

    def admit(self, key, now=None):
        """Current verdict without charging (the admission-control probe:
        rate is window-based, so probing is side-effect free)."""
        cell = self._cells.get(key)
        if cell is None:
            return OK
        return cell.evaluate(now)

    def charge_request(self, key, now=None):
        """Charge one request; fires the kill callback on a fresh hard
        breach.  Returns the cell state (``OK``/``SOFT``/``HARD``)."""
        cell = self._cells.get(key)
        if cell is None:
            return OK
        state = cell.charge_request(now)
        if state == HARD:
            self._fire_kill(cell)
        return state

    def charge_cpu(self, key, ticks):
        cell = self._cells.get(key)
        if cell is None:
            return OK
        state = cell.charge_cpu(ticks)
        if state == HARD:
            self._fire_kill(cell)
        return state

    def reconcile(self, key, snapshot):
        """Fold an out-of-process host's stats report into the cell."""
        cell = self._cells.get(key)
        if cell is None:
            return OK
        state = cell.reconcile(snapshot)
        if state == HARD:
            self._fire_kill(cell)
        return state

    def _fire_kill(self, cell):
        with self._lock:
            if cell._killed:
                return
            cell._killed = True
            on_kill = self._kills.get(cell.key)
            self.kills_fired += 1
        if on_kill is None:
            return
        threading.Thread(
            target=self._run_kill, args=(on_kill, cell),
            name=f"quota-kill-{cell.key}", daemon=True,
        ).start()

    @staticmethod
    def _run_kill(on_kill, cell):
        try:
            on_kill(cell.key, cell)
        except Exception:
            pass  # the kill path must never take the manager down

    def throttled_keys(self):
        """Tenants currently soft-throttled or hard-killed (the admission
        controller deprioritizes these)."""
        return [key for key, cell in list(self._cells.items())
                if cell.state != OK]

    def report(self, now=None):
        return {key: cell.snapshot(now)
                for key, cell in sorted(self._cells.items())}


_default = QuotaManager()


def get_quota_manager():
    return _default
