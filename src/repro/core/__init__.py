"""The J-Kernel core: capabilities, domains, LRMI.

The hosted (Python-object) implementation of the paper's protection
architecture.  Quickstart::

    from repro.core import Capability, Domain, Remote, get_repository

    class ReadFile(Remote):
        def read_byte(self): ...

    class ReadFileImpl(ReadFile):
        def read_byte(self): return 7

    server = Domain("file-server")
    cap = server.run(lambda: Capability.create(ReadFileImpl()))
    get_repository().bind("Domain1ReadFile", cap, domain=server)

    client = get_repository().lookup("Domain1ReadFile")
    assert client.read_byte() == 7
    cap.revoke()          # -> further calls raise RevokedException
"""

from .accounting import Accountant, ResourceAccount, get_accountant
from .capability import Capability, lrmi_invoke
from .convention import (
    MODE_AUTO,
    MODE_FAST,
    MODE_SERIAL,
    transfer,
    transfer_args,
    transfer_exception,
)
from .domain import Domain
from .errors import (
    AccessDeniedError,
    DomainError,
    DomainTerminatedException,
    DomainUnavailableException,
    JKernelError,
    NameAlreadyBoundError,
    NameNotBoundError,
    NotSerializableError,
    RegionRevokedError,
    RemoteException,
    RemoteInterfaceError,
    RevokedException,
    SegmentStoppedException,
    SharingError,
)
from .fastcopy import fast_copy, fast_copy_value
from .policy import (
    AccessControlContext,
    Permission,
    PermissionSet,
    check_permission,
    current_context,
    do_privileged,
)
from .regions import AttachmentCache, SealedRegion, seal
from .remote import Remote, remote_interfaces, remote_methods
from .repository import Repository, get_repository, reset_repository
from .resolver import SAFE_BUILTINS, DomainResolver
from .segments import (
    SegmentHandle,
    ThreadSegment,
    checkpoint,
    current_domain,
    current_handle,
    current_segment,
)
from .serial import (
    ObjectReader,
    ObjectWriter,
    SerialRegistry,
    copy_via_serialization,
    dumps,
    loads,
    register_capref_type,
    register_class,
    serializable,
)
from .sharing import SharedClass, check_no_static_state, references, share_class

__all__ = [
    "AccessControlContext",
    "AccessDeniedError",
    "Accountant",
    "AttachmentCache",
    "Capability",
    "Domain",
    "DomainError",
    "DomainResolver",
    "DomainTerminatedException",
    "DomainUnavailableException",
    "JKernelError",
    "MODE_AUTO",
    "MODE_FAST",
    "MODE_SERIAL",
    "NameAlreadyBoundError",
    "NameNotBoundError",
    "NotSerializableError",
    "ObjectReader",
    "ObjectWriter",
    "Permission",
    "PermissionSet",
    "RegionRevokedError",
    "Remote",
    "RemoteException",
    "RemoteInterfaceError",
    "Repository",
    "ResourceAccount",
    "RevokedException",
    "SAFE_BUILTINS",
    "SealedRegion",
    "SegmentHandle",
    "SegmentStoppedException",
    "SerialRegistry",
    "SharedClass",
    "SharingError",
    "ThreadSegment",
    "check_no_static_state",
    "check_permission",
    "checkpoint",
    "copy_via_serialization",
    "current_context",
    "current_domain",
    "current_handle",
    "current_segment",
    "do_privileged",
    "dumps",
    "fast_copy",
    "fast_copy_value",
    "get_accountant",
    "get_repository",
    "loads",
    "lrmi_invoke",
    "references",
    "register_capref_type",
    "register_class",
    "remote_interfaces",
    "remote_methods",
    "reset_repository",
    "seal",
    "serializable",
    "share_class",
    "transfer",
    "transfer_args",
    "transfer_exception",
]
