"""Capabilities and the LRMI invocation path (paper §3).

"Capabilities are implemented as objects of the class Capability and
represent handles onto resources in other domains.  A capability can be
revoked at any time by the domain that created it.  All uses of a revoked
capability throw an exception, ensuring the correct propagation of
failure."

``Capability.create(target)`` returns an instance of a generated stub
class implementing the target's remote interfaces; each stub method is
specialized compiled code (see :mod:`repro.core.stubs`) performing, in
order:

1. termination / revocation check,
2. segment switch into the callee domain (pooled; caller checkpoint),
3. deep copy of non-capability arguments (capabilities by reference),
4. the target invocation through a bound method cached on the stub at
   first call,
5. segment restore,
6. deep copy of the result (or of the callee's exception) back into the
   caller.

``revoke()`` nulls the stub's internal target pointer *and* drops the
cached bound methods, making the target eligible for collection
"regardless of how many other domains hold a reference to the capability"
— revoking prevents domains from holding on to each other's garbage.

:func:`lrmi_invoke` is the generic (``*args/**kwargs``) trampoline used by
stub methods whose signatures cannot be specialized.
"""

from __future__ import annotations

from . import segments
from .convention import (
    MODE_AUTO,
    check_mode,
    transfer,
    transfer_args,
    transfer_exception,
)
from .errors import (
    DomainError,
    DomainTerminatedException,
    RevokedException,
)


class Capability:
    """Base class of all generated capability stubs.

    Never instantiated directly — use :meth:`create`.
    """

    _jk_fields = ("_target", "_domain", "_copy_mode", "_label")

    #: Class-level default: unguarded.  A guarded capability overrides it
    #: with an instance attribute holding the Permission every caller
    #: chain must imply (checked in the caller's context, before the
    #: segment switch) — unguarded stubs pay one class-attribute load.
    _jk_guard = None

    @staticmethod
    def create(target, domain=None, copy=MODE_AUTO, label=None, guard=None):
        """Create a capability for ``target`` owned by ``domain``.

        ``domain`` defaults to the calling domain (the current segment's
        domain), falling back to the system domain.  ``copy`` selects the
        argument copy mechanism: ``"auto"`` (per-class registration),
        ``"serial"`` (force serialization) or ``"fast"`` (force the direct
        copy path).  ``guard`` (a ``Permission`` or ``"kind:target"``
        string) makes the capability *guarded*: every invocation first
        runs ``policy.check_permission(guard)`` against the caller's
        effective call chain, raising ``AccessDeniedError`` on failure.
        """
        from .domain import Domain
        from .stubs import stub_class_for

        if domain is None:
            domain = segments.current_domain() or Domain.system()
        if domain.terminated:
            raise DomainError(
                f"cannot create capability in terminated domain {domain.name}"
            )
        stub_cls = stub_class_for(type(target))
        stub = object.__new__(stub_cls)
        stub._target = target
        stub._domain = domain
        stub._copy_mode = check_mode(copy)
        stub._label = label or type(target).__name__
        if guard is not None:
            from .policy import Permission

            stub._jk_guard = Permission.parse(guard)
        domain._register_capability(stub)
        return stub

    @property
    def guard(self):
        """The guarding Permission, or None for an unguarded capability."""
        return self._jk_guard

    # -- revocation ----------------------------------------------------------
    def revoke(self):
        """Sever the stub from its target; all further uses throw.

        Also drops the bound methods cached by the compiled stub fast
        path, so the target is not pinned through a stale cache.
        """
        self._target = None
        state = self.__dict__
        # list(dict) is one C-level copy, safe against a concurrent
        # first-call _bind_method inserting a cache entry mid-revoke.
        for key in list(state):
            if key.startswith("_jkb_"):
                state.pop(key, None)

    @property
    def revoked(self):
        return self._target is None

    @property
    def creator(self):
        """The domain that created (and can revoke) this capability."""
        return self._domain

    @property
    def label(self):
        return self._label

    def __repr__(self):
        state = "revoked" if self.revoked else "live"
        return (
            f"<Capability {self._label} of domain "
            f"{self._domain.name!r} ({state})>"
        )


# -- compiled-stub support (referenced from generated stub source) -----------

def _raise_terminated(capability, domain):
    raise DomainTerminatedException(
        f"{capability._label}: domain {domain.name!r} terminated"
    )


def _raise_revoked(capability):
    raise RevokedException(f"{capability._label}: capability revoked")


def _bind_method(capability, method_name, target):
    """Resolve and cache the bound target method on the stub instance.

    The cache entry (``_jkb_<name>``) is dropped by :meth:`Capability.revoke`;
    the compiled stub re-checks ``_target`` before consulting the cache, so
    a revoked capability can never reach a stale binding.
    """
    bound = getattr(target, method_name)
    key = "_jkb_" + method_name
    setattr(capability, key, bound)
    if capability._target is None:
        # Revocation raced this first call: whichever order the cache
        # insert and revoke's sweep landed in, end with no cache entry so
        # the target stays collectible.
        capability.__dict__.pop(key, None)
    return bound


def lrmi_invoke(capability, method_name, args, kwargs):
    """Execute one cross-domain call through a capability stub (generic
    trampoline for non-specializable signatures)."""
    domain = capability._domain
    if domain.terminated:
        raise DomainTerminatedException(
            f"{capability._label}: domain {domain.name!r} terminated"
        )
    target = capability._target
    if target is None:
        raise RevokedException(f"{capability._label}: capability revoked")
    guard = capability._jk_guard
    if guard is not None:
        # Checked in the *caller's* context: the callee domain (which
        # owns the guarded resource) is not yet on the chain.
        from .policy import check_permission

        check_permission(guard)

    mode = capability._copy_mode
    domain._lrmi_calls_in += 1

    stack, segment = segments._enter(domain)
    result = None
    pending = None
    try:
        copied_args, copied_kwargs = transfer_args(args, kwargs, mode=mode)
        try:
            result = getattr(target, method_name)(
                *copied_args, **copied_kwargs
            )
        except BaseException as exc:  # copied/re-raised after segment pop
            pending = exc
    finally:
        segments._exit(stack, segment)

    if pending is not None:
        if not isinstance(pending, Exception):
            raise pending  # KeyboardInterrupt etc. pass through raw
        raise transfer_exception(pending, mode=mode) from None
    return transfer(result, mode=mode)
