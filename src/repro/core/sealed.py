"""Sealed transfer classes: deep immutability as a zero-copy tier.

The calling convention has always passed *immutable primitives* across
domains by reference — "copying them would be unobservable"
(:data:`~repro.core.fastcopy.IMMUTABLE_TYPES`) — and the enforced kernel
extends the same argument to final String classes (the loader rejects
subclassing them, so a reference can cross soundly).  This module is the
hosted-kernel generalization to user-defined carrier classes: a *sealed*
class promises deep immutability, enforced three ways:

* instances are frozen — ``__setattr__``/``__delattr__`` raise after
  construction (constructors assign via ``object.__setattr__``),
* the class is final — subclassing raises, so no mutable subclass can
  smuggle shared state behind the registered type, and
* every class in the MRO uses ``__slots__`` — no instance ``__dict__``
  to scribble on.

Field-value immutability is the constructor's contract: sealed classes
validate their fields at construction (see
:class:`FrozenMap` and ``repro.web.servlet``), which moves the cost of
safety from *every domain crossing* to *one validation per object* —
exactly the trade the serving layer wants for request/response carriers
that cross two boundaries per request.

Enforcement caveat: CPython cannot make memory read-only; sealing blocks
ordinary mutation and subclassing, the same cooperative bar the hosted
kernel applies elsewhere (the MiniJVM kernel enforces finality for real
in its loader).
"""

from __future__ import annotations

from types import MappingProxyType

from . import convention
from .fastcopy import IMMUTABLE_TYPES


def _frozen_setattr(self, name, value):
    raise AttributeError(
        f"{type(self).__name__} is sealed: instances are immutable"
    )


def _frozen_delattr(self, name):
    raise AttributeError(
        f"{type(self).__name__} is sealed: instances are immutable"
    )


def sealed(cls):
    """Class decorator: freeze instances, finalize the class, and
    register it to cross domain boundaries by reference."""
    # Slot-safety is a *layout* property, so ask the type, not an
    # instance: ``__dictoffset__`` is non-zero exactly when instances
    # carry a ``__dict__``.  (The old probe ``cls.__new__(cls)`` crashed
    # for sealed classes whose ``__new__`` takes required arguments, and
    # constructed a half-initialized frozen instance as a side effect.)
    if getattr(cls, "__dictoffset__", 0) != 0:
        raise TypeError(
            f"sealed class {cls.__qualname__} must use __slots__ "
            "throughout its MRO (instances may not have a __dict__)"
        )
    cls.__setattr__ = _frozen_setattr
    cls.__delattr__ = _frozen_delattr

    def _no_subclass(subclass, **kwargs):
        raise TypeError(f"{cls.__qualname__} is sealed (final): "
                        "subclassing would defeat by-reference transfer")

    cls.__init_subclass__ = classmethod(_no_subclass)
    cls.__sealed__ = True
    convention.register_sealed_type(cls)
    return cls


@sealed
class FrozenMap:
    """Immutable mapping of immutable keys to immutable values.

    The sealed carrier for header dicts: contents are validated at
    construction (every key and value must be an immutable primitive),
    after which the map may cross any number of domain boundaries by
    reference.  Read API mirrors ``dict``; there is no mutation API.
    """

    __slots__ = ("_map",)

    def __init__(self, items=()):
        if type(items) is FrozenMap:
            mapping = items._map
        else:
            backing = dict(items)
            for key, value in backing.items():
                if type(key) not in IMMUTABLE_TYPES \
                        or type(value) not in IMMUTABLE_TYPES:
                    raise TypeError(
                        "FrozenMap entries must be immutable primitives; "
                        f"got ({type(key).__name__}, {type(value).__name__})"
                    )
            # The stored mapping is a read-only proxy over a dict that
            # nothing else references: even code that reads the private
            # attribute gets no mutation handle, so a shared (interned,
            # by-reference) carrier cannot be poisoned across domains.
            mapping = MappingProxyType(backing)
        object.__setattr__(self, "_map", mapping)

    def __getitem__(self, key):
        return self._map[key]

    def get(self, key, default=None):
        return self._map.get(key, default)

    def __contains__(self, key):
        return key in self._map

    def __iter__(self):
        return iter(self._map)

    def __len__(self):
        return len(self._map)

    def keys(self):
        return self._map.keys()

    def values(self):
        return self._map.values()

    def items(self):
        return self._map.items()

    def to_dict(self):
        return dict(self._map)

    def __eq__(self, other):
        if type(other) is FrozenMap:
            return self._map == other._map
        if isinstance(other, dict):
            return self._map == other
        return NotImplemented

    __hash__ = None

    def __repr__(self):
        return f"FrozenMap({self._map!r})"


# Wire form for the cross-process LRMI transport: in-process transfers
# pass sealed values by reference (the whole point of sealing), but a
# value crossing a *process* boundary must be byte-encoded.  The sealed
# constructor IS the validator, so the reduce/rebuild pair re-validates
# on the receiving side — a forged stream cannot smuggle a mutable map.
from . import serial as _serial

_serial.register_class(
    FrozenMap,
    name="repro.sealed.FrozenMap",
    reduce=lambda value: (value.to_dict(),),
    rebuild=FrozenMap,
)
