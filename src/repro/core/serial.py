"""From-scratch object serializer (the Java-serialization analogue).

The default LRMI copy mechanism: a value is *serialized into an
intermediate byte array* and deserialized into a fresh copy (paper §3.1).
The byte-array round trip is deliberate — Table 4 measures exactly this
cost against the fast-copy mechanism, which avoids it.

Format: tag-length-value with back-references for shared/cyclic structure.
Classes must be registered (``@serializable`` or :func:`register_class`),
mirroring Java's ``implements Serializable`` opt-in.  Capabilities are
never byte-encoded: during an LRMI transfer they are swapped out into a
side table and re-inserted by reference on read (RMI's remote-reference
semantics); outside an LRMI they are not serializable at all.
"""

from __future__ import annotations

import dataclasses
import struct

from .errors import NotSerializableError

_T_NULL = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT64 = 3
_T_BIGINT = 4
_T_FLOAT = 5
_T_STR = 6
_T_BYTES = 7
_T_BYTEARRAY = 8
_T_LIST = 9
_T_TUPLE = 10
_T_SET = 11
_T_FROZENSET = 12
_T_DICT = 13
_T_OBJECT = 14
_T_EXCEPTION = 15
_T_BACKREF = 16
_T_CAPREF = 17

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

_PACK_I64 = struct.Struct(">q")
_PACK_F64 = struct.Struct(">d")
_PACK_U32 = struct.Struct(">I")


def class_fields(cls, explicit=None):
    """Determine the copied fields of a class: explicit list, dataclass
    fields, or ``__slots__``; ``None`` means "use the instance __dict__"."""
    if explicit is not None:
        return tuple(explicit)
    if dataclasses.is_dataclass(cls):
        return tuple(f.name for f in dataclasses.fields(cls))
    slots = []
    for ancestor in reversed(cls.__mro__):
        declared = ancestor.__dict__.get("__slots__")
        if declared is None:
            continue
        if isinstance(declared, str):
            declared = (declared,)
        slots.extend(s for s in declared if s not in ("__weakref__",))
    return tuple(slots) or None


def _length_prefixed(text):
    encoded = text.encode("utf-8")
    return _PACK_U32.pack(len(encoded)) + encoded


class ClassDescriptor:
    """Registration record for one serializable class.

    Wire names and field names are encoded once, at registration: the
    writer appends the pre-built length-prefixed bytes instead of
    re-encoding each name on every serialized copy.
    """

    __slots__ = ("cls", "name", "fields", "is_exception", "encoded_name",
                 "encoded_fields")

    def __init__(self, cls, name, fields):
        self.cls = cls
        self.name = name
        self.fields = fields
        self.is_exception = isinstance(cls, type) and issubclass(
            cls, BaseException
        )
        self.encoded_name = _length_prefixed(name)
        if fields is None:
            self.encoded_fields = None
        else:
            self.encoded_fields = tuple(
                (field, _length_prefixed(field)) for field in fields
            )


class SerialRegistry:
    """Name <-> class mapping shared by writer and reader.

    In J-Kernel terms this is the set of *shared classes* both domains can
    see: a value can only cross if both sides agree on the class.
    """

    #: Set by ``repro.core.convention`` on the default registry so new
    #: registrations land in the auto-mode dispatch table.
    _on_register = None

    def __init__(self):
        self._by_class = {}
        self._by_name = {}

    def register(self, cls, name=None, fields=None):
        wire_name = name or f"{cls.__module__}.{cls.__qualname__}"
        descriptor = ClassDescriptor(cls, wire_name, class_fields(cls, fields))
        self._by_class[cls] = descriptor
        self._by_name[wire_name] = descriptor
        if self._on_register is not None:
            self._on_register(cls)
        return cls

    def lookup_class(self, cls):
        return self._by_class.get(cls)

    def lookup_name(self, name):
        return self._by_name.get(name)

    def knows(self, cls):
        return cls in self._by_class


#: Process-wide default registry (the "system-wide shared class space").
DEFAULT_REGISTRY = SerialRegistry()


def serializable(cls=None, *, name=None, fields=None, registry=None):
    """Class decorator: make a class copyable via serialization."""
    def register(target):
        (registry or DEFAULT_REGISTRY).register(target, name=name,
                                                fields=fields)
        return target

    if cls is None:
        return register
    return register(cls)


def register_class(cls, name=None, fields=None, registry=None):
    (registry or DEFAULT_REGISTRY).register(cls, name=name, fields=fields)
    return cls


# Common exception types are serializable out of the box, so callee-side
# errors propagate to callers (paper: "ensuring the correct propagation of
# failure").
def _register_builtin_exceptions(registry):
    for exc_type in (
        Exception,
        ValueError,
        TypeError,
        KeyError,
        IndexError,
        RuntimeError,
        ArithmeticError,
        ZeroDivisionError,
        LookupError,
        AttributeError,
        NotImplementedError,
        OSError,
        StopIteration,
        PermissionError,
        FileNotFoundError,
    ):
        registry.register(exc_type, name=f"builtin.{exc_type.__name__}")


_register_builtin_exceptions(DEFAULT_REGISTRY)


class ObjectWriter:
    """Serializes one value graph to bytes."""

    def __init__(self, registry=None, capability_table=None):
        self.registry = registry or DEFAULT_REGISTRY
        self.capability_table = capability_table
        self._buffer = bytearray()
        self._memo = {}

    def dumps(self, value):
        self.write(value)
        return bytes(self._buffer)

    # -- primitives --------------------------------------------------------
    def _tag(self, tag):
        self._buffer.append(tag)

    def _u32(self, value):
        self._buffer += _PACK_U32.pack(value)

    def _raw(self, data):
        self._u32(len(data))
        self._buffer += data

    # -- main dispatch ---------------------------------------------------------
    def write(self, value):
        # Hot loop: one bound-attribute load for the buffer, tag byte and
        # payload appended back to back, recursion through a localized
        # bound method.
        buffer = self._buffer
        if value is None:
            buffer.append(_T_NULL)
            return
        if value is True:
            buffer.append(_T_TRUE)
            return
        if value is False:
            buffer.append(_T_FALSE)
            return
        value_type = type(value)
        if value_type is int:
            if _INT64_MIN <= value <= _INT64_MAX:
                buffer.append(_T_INT64)
                buffer += _PACK_I64.pack(value)
            else:
                encoded = value.to_bytes(
                    (value.bit_length() + 8) // 8, "big", signed=True
                )
                buffer.append(_T_BIGINT)
                buffer += _PACK_U32.pack(len(encoded))
                buffer += encoded
            return
        if value_type is float:
            buffer.append(_T_FLOAT)
            buffer += _PACK_F64.pack(value)
            return
        if value_type is str:
            encoded = value.encode("utf-8")
            buffer.append(_T_STR)
            buffer += _PACK_U32.pack(len(encoded))
            buffer += encoded
            return
        if value_type is bytes:
            buffer.append(_T_BYTES)
            buffer += _PACK_U32.pack(len(value))
            buffer += value
            return
        if self._write_backref(value):
            return
        memo = self._memo
        if value_type is bytearray:
            memo[id(value)] = len(memo)
            buffer.append(_T_BYTEARRAY)
            buffer += _PACK_U32.pack(len(value))
            buffer += value
            return
        if value_type is list:
            self._write_sequence(_T_LIST, value)
            return
        if value_type is tuple:
            self._write_sequence(_T_TUPLE, value)
            return
        if value_type is set:
            self._write_sequence(_T_SET, sorted(value, key=_sort_key))
            return
        if value_type is frozenset:
            self._write_sequence(_T_FROZENSET, sorted(value, key=_sort_key))
            return
        if value_type is dict:
            memo[id(value)] = len(memo)
            buffer.append(_T_DICT)
            buffer += _PACK_U32.pack(len(value))
            write = self.write
            for key, item in value.items():
                write(key)
                write(item)
            return
        if self._write_capref(value):
            return
        self._write_object(value)

    def _write_backref(self, value):
        index = self._memo.get(id(value))
        if index is None:
            return False
        self._tag(_T_BACKREF)
        self._u32(index)
        return True

    def _write_sequence(self, tag, items):
        memo = self._memo
        memo[id(items)] = len(memo)
        buffer = self._buffer
        buffer.append(tag)
        buffer += _PACK_U32.pack(len(items))
        write = self.write
        for item in items:
            write(item)

    def _write_capref(self, value):
        from .capability import Capability

        if not isinstance(value, Capability):
            return False
        if self.capability_table is None:
            raise NotSerializableError(
                "capabilities cannot be serialized outside an LRMI transfer"
            )
        self._tag(_T_CAPREF)
        self._u32(len(self.capability_table))
        self.capability_table.append(value)
        return True

    def _write_object(self, value):
        descriptor = self.registry.lookup_class(type(value))
        if descriptor is None:
            if isinstance(value, BaseException):
                descriptor = self._exception_fallback(value)
            if descriptor is None:
                raise NotSerializableError(
                    f"{type(value).__qualname__} is not registered as "
                    "serializable (use @serializable or @fast_copy)"
                )
        memo = self._memo
        memo[id(value)] = len(memo)
        buffer = self._buffer
        if descriptor.is_exception:
            buffer.append(_T_EXCEPTION)
            buffer += descriptor.encoded_name
            self.write(tuple(value.args))
            return
        buffer.append(_T_OBJECT)
        buffer += descriptor.encoded_name
        write = self.write
        encoded_fields = descriptor.encoded_fields
        if encoded_fields is not None:
            buffer += _PACK_U32.pack(len(encoded_fields))
            for field, encoded in encoded_fields:
                buffer += encoded
                write(getattr(value, field))
        else:
            state = vars(value)
            buffer += _PACK_U32.pack(len(state))
            for field in sorted(state):
                buffer += _length_prefixed(field)
                write(state[field])

    def _exception_fallback(self, value):
        # Walk up the exception hierarchy for a registered ancestor, so an
        # unregistered subclass still crosses as its nearest known base.
        for ancestor in type(value).__mro__[1:]:
            descriptor = self.registry.lookup_class(ancestor)
            if descriptor is not None and descriptor.is_exception:
                return descriptor
        return None


class ObjectReader:
    """Deserializes bytes produced by :class:`ObjectWriter`."""

    def __init__(self, data, registry=None, capability_table=None):
        self.registry = registry or DEFAULT_REGISTRY
        self.capability_table = capability_table or []
        self._data = memoryview(data)
        self._offset = 0
        self._memo = []

    def loads(self):
        value = self.read()
        if self._offset != len(self._data):
            raise NotSerializableError("trailing bytes after value")
        return value

    # -- primitives ---------------------------------------------------------
    def _take(self, count):
        end = self._offset + count
        if end > len(self._data):
            raise NotSerializableError("truncated stream")
        chunk = self._data[self._offset:end]
        self._offset = end
        return chunk

    def _u32(self):
        return _PACK_U32.unpack(self._take(4))[0]

    def _raw(self):
        return bytes(self._take(self._u32()))

    # -- main dispatch -----------------------------------------------------------
    def read(self):
        # Hot loop: the tag byte and fixed-size payloads are decoded with
        # a locally tracked offset (one attribute write on exit) instead
        # of per-chunk _take() calls.
        data = self._data
        size = len(data)
        offset = self._offset
        if offset >= size:
            raise NotSerializableError("truncated stream")
        tag = data[offset]
        offset += 1
        if tag == _T_NULL:
            self._offset = offset
            return None
        if tag == _T_TRUE:
            self._offset = offset
            return True
        if tag == _T_FALSE:
            self._offset = offset
            return False
        if tag == _T_INT64:
            end = offset + 8
            if end > size:
                raise NotSerializableError("truncated stream")
            self._offset = end
            return _PACK_I64.unpack(data[offset:end])[0]
        if tag == _T_STR or tag == _T_BYTES:
            end = offset + 4
            if end > size:
                raise NotSerializableError("truncated stream")
            length = _PACK_U32.unpack(data[offset:end])[0]
            offset, end = end, end + length
            if end > size:
                raise NotSerializableError("truncated stream")
            self._offset = end
            chunk = bytes(data[offset:end])
            return chunk.decode("utf-8") if tag == _T_STR else chunk
        if tag == _T_FLOAT:
            end = offset + 8
            if end > size:
                raise NotSerializableError("truncated stream")
            self._offset = end
            return _PACK_F64.unpack(data[offset:end])[0]
        self._offset = offset
        if tag == _T_BIGINT:
            return int.from_bytes(self._raw(), "big", signed=True)
        if tag == _T_BYTEARRAY:
            value = bytearray(self._raw())
            self._memo.append(value)
            return value
        if tag == _T_LIST:
            return self._read_sequence(list)
        if tag == _T_TUPLE:
            return self._read_sequence(tuple)
        if tag == _T_SET:
            return self._read_sequence(set)
        if tag == _T_FROZENSET:
            return self._read_sequence(frozenset)
        if tag == _T_DICT:
            value = {}
            self._memo.append(value)
            read = self.read
            for _ in range(self._u32()):
                key = read()
                value[key] = read()
            return value
        if tag == _T_BACKREF:
            return self._memo[self._u32()]
        if tag == _T_CAPREF:
            return self.capability_table[self._u32()]
        if tag == _T_EXCEPTION:
            return self._read_exception()
        if tag == _T_OBJECT:
            return self._read_object()
        raise NotSerializableError(f"unknown tag {tag}")

    def _read_sequence(self, factory):
        placeholder = []
        memo = self._memo
        memo.append(placeholder)
        slot = len(memo) - 1
        count = self._u32()
        read = self.read
        append = placeholder.append
        for _ in range(count):
            append(read())
        if factory is list:
            return placeholder
        value = factory(placeholder)
        memo[slot] = value
        return value

    def _read_exception(self):
        name = self._raw().decode("utf-8")
        descriptor = self.registry.lookup_name(name)
        if descriptor is None:
            raise NotSerializableError(f"unknown exception class {name!r}")
        args = None
        slot = len(self._memo)
        self._memo.append(None)
        args = self.read()
        value = descriptor.cls(*args)
        self._memo[slot] = value
        return value

    def _read_object(self):
        name = self._raw().decode("utf-8")
        descriptor = self.registry.lookup_name(name)
        if descriptor is None:
            raise NotSerializableError(f"unknown class {name!r}")
        value = descriptor.cls.__new__(descriptor.cls)
        self._memo.append(value)
        read = self.read
        raw = self._raw
        for _ in range(self._u32()):
            field = raw().decode("utf-8")
            setattr(value, field, read())
        return value


def _sort_key(value):
    return (type(value).__name__, repr(value))


def dumps(value, registry=None, capability_table=None):
    return ObjectWriter(registry, capability_table).dumps(value)


def loads(data, registry=None, capability_table=None):
    return ObjectReader(data, registry, capability_table).loads()


_copy_observer = None


def set_copy_observer(callback):
    """Install a hook receiving the byte size of every serialized copy
    (used by ``repro.core.accounting``)."""
    global _copy_observer
    _copy_observer = callback


def copy_via_serialization(value, registry=None, capability_table=None):
    """The default LRMI copy: serialize to a byte array, deserialize."""
    table = capability_table if capability_table is not None else []
    data = dumps(value, registry, table)
    if _copy_observer is not None:
        _copy_observer(len(data))
    return loads(data, registry, table)
