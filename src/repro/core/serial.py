"""From-scratch object serializer (the Java-serialization analogue).

The default LRMI copy mechanism: a value is *serialized into an
intermediate byte array* and deserialized into a fresh copy (paper §3.1).
The byte-array round trip is deliberate — Table 4 measures exactly this
cost against the fast-copy mechanism, which avoids it.

Format: tag-length-value with back-references for shared/cyclic structure.
Classes must be registered (``@serializable`` or :func:`register_class`),
mirroring Java's ``implements Serializable`` opt-in.  Capabilities are
never byte-encoded: during an LRMI transfer they are swapped out into a
side table and re-inserted by reference on read (RMI's remote-reference
semantics); outside an LRMI they are not serializable at all.

Compilation strategy (mirrors the stub generator): registering a class
*compiles* a specialized writer and reader for it.  The writer is
straight-line generated code — class/field names are appended as
pre-encoded byte constants, runs of contiguous ``int``/``float``-annotated
fields collapse into a single precompiled multi-field ``struct.Struct``
pack, and ``str``/``bytes``-annotated fields are length-prefixed inline.
The reader verifies the constant regions with slice compares and decodes
typed fields without the generic tag dispatch, falling back to the fully
generic parse when the stream disagrees (e.g. it was produced by a
different registration of the class).  Homogeneous ``int``/``float``
lists and tuples travel as one batched tag + packed payload instead of
per-element tag/value pairs.  Output buffers come from a per-thread pool
and every ``dumps`` call runs on private buffer/memo state, so a nested
``dumps`` (a capability stub invoked mid-serialization) and concurrent
module-level ``dumps`` calls can never corrupt each other's streams.
(Sharing one ``ObjectWriter`` *instance* across threads is not
supported — the module-level helpers build a writer per call.)

Classes registered with ``acyclic=True`` opt out of back-reference memo
bookkeeping: their instances are never recorded in the stream memo, which
removes per-object hash-table work but means a shared instance is written
once per reference and a cycle through such an instance would recurse
forever — the same contract as the fast-copy default (paper §3.1).
"""

from __future__ import annotations

import dataclasses
import struct
import threading

from .errors import NotSerializableError

_T_NULL = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT64 = 3
_T_BIGINT = 4
_T_FLOAT = 5
_T_STR = 6
_T_BYTES = 7
_T_BYTEARRAY = 8
_T_LIST = 9
_T_TUPLE = 10
_T_SET = 11
_T_FROZENSET = 12
_T_DICT = 13
_T_OBJECT = 14
_T_EXCEPTION = 15
_T_BACKREF = 16
_T_CAPREF = 17
_T_INTLIST = 18
_T_INTTUPLE = 19
_T_FLOATLIST = 20
_T_FLOATTUPLE = 21
_T_REDUCED = 22
# Byte-wide batched int sequences: when every element fits 0..255 the
# batch packs via ``bytes(items)`` — one C call, an eighth of the ">Nq"
# payload — and decodes as ``list(view)``/``tuple(view)``.  Only reached
# AFTER the homogeneity scan, so the strict no-bool semantics of the
# 64-bit batch tags are preserved bit for bit.
_T_INTLIST_U8 = 23
_T_INTTUPLE_U8 = 24

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

_PACK_I64 = struct.Struct(">q")
_PACK_F64 = struct.Struct(">d")
_PACK_U32 = struct.Struct(">I")

_JUST_INT = frozenset((int,))
_JUST_FLOAT = frozenset((float,))

#: Lazily bound ``repro.core.capability.Capability`` (import cycle guard).
_Capability = None

#: Precompiled ``>{n}q`` / ``>{n}d`` Structs for batched homogeneous
#: sequences, keyed by (kind, element count).
_BATCH_STRUCTS = {}


def _batch_struct(kind, count):
    key = (kind, count)
    found = _BATCH_STRUCTS.get(key)
    if found is None:
        if len(_BATCH_STRUCTS) > 4096:
            _BATCH_STRUCTS.clear()
        found = _BATCH_STRUCTS[key] = struct.Struct(f">{count}{kind}")
    return found


# -- per-thread output buffer pool --------------------------------------------

class _BufferPool(threading.local):
    def __init__(self):
        self.free = []


_POOL = _BufferPool()


def _acquire_buffer():
    free = _POOL.free
    return free.pop() if free else bytearray()


def _release_buffer(buffer):
    free = _POOL.free
    if len(free) < 8:
        del buffer[:]
        free.append(buffer)


def class_fields(cls, explicit=None):
    """Determine the copied fields of a class: explicit list, dataclass
    fields, or ``__slots__``; ``None`` means "use the instance __dict__"."""
    if explicit is not None:
        return tuple(explicit)
    if dataclasses.is_dataclass(cls):
        return tuple(f.name for f in dataclasses.fields(cls))
    slots = []
    for ancestor in reversed(cls.__mro__):
        declared = ancestor.__dict__.get("__slots__")
        if declared is None:
            continue
        if isinstance(declared, str):
            declared = (declared,)
        slots.extend(s for s in declared if s not in ("__weakref__",))
    return tuple(slots) or None


class _IntList:
    """Annotation sentinel: a field declared ``list[int]``."""


class _FloatList:
    """Annotation sentinel: a field declared ``list[float]``."""


#: Annotation values (types or their spelled-out names, for modules using
#: ``from __future__ import annotations``) the codegen specializes on.
#:
#: ``list[int]`` / ``list[float]`` declare a *homogeneous batch field*:
#: the compiled writer packs it in one C call, skipping the per-element
#: homogeneity scan the undeclared path needs.  The declaration is a
#: contract — elements of another type still fall back safely to the
#: scanned path (the pack raises), but ``bool`` elements (and ints in a
#: ``list[float]``) pack as their numeric values, exactly as they would
#: in an ``array('q')``/``array('d')``.
_PRIMITIVE_ANNOTATIONS = {
    int: int, float: float, bool: bool, str: str, bytes: bytes,
    "int": int, "float": float, "bool": bool, "str": str, "bytes": bytes,
    list[int]: _IntList, "list[int]": _IntList, "List[int]": _IntList,
    list[float]: _FloatList, "list[float]": _FloatList,
    "List[float]": _FloatList,
}


def declared_field_types(cls, fields):
    """Map each copied field to a primitive type the codegen may
    specialize on (``int``/``float``/``bool``/``str``/``bytes``), from the
    class's annotations; unannotated or non-primitive fields map to None.
    """
    if fields is None:
        return {}
    annotations = {}
    for ancestor in reversed(cls.__mro__):
        declared = ancestor.__dict__.get("__annotations__")
        if declared:
            annotations.update(declared)
    types = {}
    for field in fields:
        try:
            types[field] = _PRIMITIVE_ANNOTATIONS.get(annotations.get(field))
        except TypeError:  # unhashable annotation value
            types[field] = None
    return types


def _length_prefixed(text):
    encoded = text.encode("utf-8")
    return _PACK_U32.pack(len(encoded)) + encoded


def _field_reducer(fields):
    def reduce(value, _fields=tuple(fields)):
        return tuple(getattr(value, field) for field in _fields)
    return reduce


#: Non-:class:`Capability` types that nevertheless cross the stream
#: through the capability side table (the cross-process LRMI proxies of
#: ``repro.ipc.lrmi``, which must round-trip by reference like the stubs
#: they stand in for).
_CAPREF_TYPES = set()


def register_capref_type(cls):
    """Mark a type as crossing via the capability side table."""
    _CAPREF_TYPES.add(cls)


class ClassDescriptor:
    """Registration record for one serializable class.

    Wire names and field names are encoded once, at registration, and the
    specialized writer/reader pair is compiled here — registering a class
    is what makes its transfers cheap, exactly like stub generation.
    """

    __slots__ = ("cls", "name", "fields", "is_exception", "is_capability",
                 "encoded_name", "encoded_fields", "acyclic", "field_types",
                 "writer", "reader", "writer_source", "reader_source",
                 "reduce", "rebuild")

    def __init__(self, cls, name, fields, acyclic=False,
                 reduce=None, rebuild=None):
        self.cls = cls
        self.name = name
        self.fields = fields
        if (reduce is None) != (rebuild is None):
            if rebuild is not None and fields is not None:
                # Derive the reduction from the declared fields: the
                # common constructor-rebuilt case (sealed carriers whose
                # __init__ takes the fields positionally).
                reduce = _field_reducer(fields)
            else:
                raise TypeError(
                    f"{cls.__qualname__}: reduce and rebuild must be "
                    "registered together (or rebuild with explicit fields)"
                )
        self.reduce = reduce
        self.rebuild = rebuild
        # A rebuilt instance only exists after all its parts are read, so
        # a back-reference to it from inside those parts is impossible:
        # reduced classes are acyclic by construction.
        self.acyclic = acyclic or rebuild is not None
        self.is_exception = isinstance(cls, type) and issubclass(
            cls, BaseException
        )
        # Resolved lazily on first write (the capability module cannot be
        # imported while this one is initializing).
        self.is_capability = None
        self.encoded_name = _length_prefixed(name)
        self.field_types = declared_field_types(cls, fields)
        if fields is None:
            self.encoded_fields = None
        else:
            self.encoded_fields = tuple(
                (field, _length_prefixed(field)) for field in fields
            )
        self.writer = self.reader = None
        self.writer_source = self.reader_source = None
        if fields is not None and not self.is_exception \
                and self.rebuild is None:
            self.writer, self.writer_source = _compile_writer(self)
            self.reader, self.reader_source = _compile_reader(self)


class SerialRegistry:
    """Name <-> class mapping shared by writer and reader.

    In J-Kernel terms this is the set of *shared classes* both domains can
    see: a value can only cross if both sides agree on the class.
    """

    #: Set by ``repro.core.convention`` on the default registry so new
    #: registrations land in the auto-mode dispatch table.
    _on_register = None

    def __init__(self):
        self._by_class = {}
        self._by_name = {}
        self._by_encoded = {}

    def register(self, cls, name=None, fields=None, acyclic=False,
                 reduce=None, rebuild=None):
        wire_name = name or f"{cls.__module__}.{cls.__qualname__}"
        descriptor = ClassDescriptor(cls, wire_name,
                                     class_fields(cls, fields),
                                     acyclic=acyclic,
                                     reduce=reduce, rebuild=rebuild)
        self._by_class[cls] = descriptor
        self._by_name[wire_name] = descriptor
        self._by_encoded[wire_name.encode("utf-8")] = descriptor
        if self._on_register is not None:
            self._on_register(cls)
        return cls

    def lookup_class(self, cls):
        return self._by_class.get(cls)

    def lookup_name(self, name):
        return self._by_name.get(name)

    def lookup_encoded(self, name_bytes):
        return self._by_encoded.get(name_bytes)

    def knows(self, cls):
        return cls in self._by_class


#: Process-wide default registry (the "system-wide shared class space").
DEFAULT_REGISTRY = SerialRegistry()


def serializable(cls=None, *, name=None, fields=None, registry=None,
                 acyclic=False, reduce=None, rebuild=None):
    """Class decorator: make a class copyable via serialization.

    ``acyclic=True`` declares that instances never participate in cycles
    or wire-level sharing, letting the compiled writer/reader skip the
    back-reference memo for them (see module docstring)."""
    def register(target):
        (registry or DEFAULT_REGISTRY).register(target, name=name,
                                                fields=fields,
                                                acyclic=acyclic,
                                                reduce=reduce,
                                                rebuild=rebuild)
        return target

    if cls is None:
        return register
    return register(cls)


def register_class(cls, name=None, fields=None, registry=None,
                   acyclic=False, reduce=None, rebuild=None):
    (registry or DEFAULT_REGISTRY).register(cls, name=name, fields=fields,
                                            acyclic=acyclic, reduce=reduce,
                                            rebuild=rebuild)
    return cls


# Common exception types are serializable out of the box, so callee-side
# errors propagate to callers (paper: "ensuring the correct propagation of
# failure").
def _register_builtin_exceptions(registry):
    for exc_type in (
        Exception,
        ValueError,
        TypeError,
        KeyError,
        IndexError,
        RuntimeError,
        ArithmeticError,
        ZeroDivisionError,
        LookupError,
        AttributeError,
        NotImplementedError,
        OSError,
        StopIteration,
        PermissionError,
        FileNotFoundError,
    ):
        registry.register(exc_type, name=f"builtin.{exc_type.__name__}")
    # The kernel's own error hierarchy crosses process boundaries too
    # (the cross-process LRMI wire re-raises callee-side failures in the
    # caller's process): register it so RevokedException et al. arrive
    # as themselves, not as opaque wrappers.
    from . import errors as _errors

    for exc_type in (
        _errors.JKernelError,
        _errors.RemoteException,
        _errors.RevokedException,
        _errors.DomainTerminatedException,
        _errors.RegionRevokedError,
        _errors.SegmentStoppedException,
        _errors.DomainUnavailableException,
        _errors.QuotaExceededException,
        _errors.AccessDeniedError,
        _errors.NotSerializableError,
        _errors.DomainError,
    ):
        registry.register(exc_type, name=f"jkernel.{exc_type.__name__}")


_register_builtin_exceptions(DEFAULT_REGISTRY)


# -- writer/reader codegen ----------------------------------------------------

class _Source:
    """Accumulates generated lines plus the exec namespace of constants."""

    def __init__(self, namespace):
        self.lines = []
        self.namespace = namespace
        self._counter = 0

    def add(self, line):
        self.lines.append(line)

    def const(self, value):
        name = f"_K{self._counter}"
        self._counter += 1
        self.namespace[name] = value
        return name

    def text(self):
        return "\n".join(self.lines)


def _numeric_runs(fields, types):
    """Partition fields into ``("run", [f...])`` groups (>=2 contiguous
    int/float-annotated fields, batched by one Struct) and ``("one", f)``
    singles.  Writer and reader codegen share this so their run
    boundaries — and therefore the wire layout — can never drift apart.
    """
    groups = []
    index = 0
    while index < len(fields):
        if types.get(fields[index]) in (int, float):
            end = index
            while end < len(fields) and types.get(fields[end]) in (int, float):
                end += 1
            if end - index >= 2:
                groups.append(("run", fields[index:end]))
                index = end
                continue
        groups.append(("one", fields[index]))
        index += 1
    return groups


def _write_declared_int_list(writer, items):
    """Batched write for a field declared ``list[int]``: trusts the
    annotation, so no per-element homogeneity scan.  Anything the batch
    packers reject (floats, strings, big ints in the byte-wide case)
    falls back to the generic scanned path and still serializes
    correctly; bool elements — which pack as 0/1 — are the one case the
    declaration is trusted over the runtime type."""
    if type(items) is not list or not items or not writer._compiled:
        writer.write(items)
        return
    try:
        packed = bytes(items)
        tag = _T_INTLIST_U8
    except (ValueError, TypeError):
        try:
            packed = _batch_struct("q", len(items)).pack(*items)
            tag = _T_INTLIST
        except struct.error:
            writer.write(items)
            return
    memo = writer._memo
    memo[id(items)] = len(memo)
    buffer = writer._buffer
    buffer.append(tag)
    buffer += _PACK_U32.pack(len(items))
    buffer += packed


def _write_declared_float_list(writer, items):
    """Batched write for a field declared ``list[float]`` (see
    :func:`_write_declared_int_list`; ints pack as their float value)."""
    if type(items) is not list or not items or not writer._compiled:
        writer.write(items)
        return
    try:
        packed = _batch_struct("d", len(items)).pack(*items)
    except struct.error:
        writer.write(items)
        return
    memo = writer._memo
    memo[id(items)] = len(memo)
    buffer = writer._buffer
    buffer.append(_T_FLOATLIST)
    buffer += _PACK_U32.pack(len(items))
    buffer += packed


def _compile_writer(descriptor):
    """Generate the specialized writer for one explicit-fields class.

    Wire-compatible with the generic ``_write_object`` path: the same
    tag/name/value layout, with constant regions pre-encoded and runs of
    ``int``/``float``-annotated fields packed by one multi-field Struct
    (tag bytes and the interleaved field-name constants ride along as
    fixed ``s`` fields of the same pack call).
    """
    fields = descriptor.fields
    types = descriptor.field_types
    namespace = {
        "_u32": _PACK_U32.pack,
        "_i64": _PACK_I64.pack,
        "_f64": _PACK_F64.pack,
        "_PackError": struct.error,
        "_w_intlist": _write_declared_int_list,
        "_w_floatlist": _write_declared_float_list,
    }
    src = _Source(namespace)
    src.add(f"def _write_{descriptor.cls.__name__}(w, value):")
    src.add("    buffer = w._buffer")
    if not descriptor.acyclic:
        src.add("    memo = w._memo")
        src.add("    memo[id(value)] = len(memo)")

    header = (bytes([_T_OBJECT]) + descriptor.encoded_name
              + _PACK_U32.pack(len(fields)))
    pending = bytearray(header)

    def flush():
        nonlocal pending
        if pending:
            src.add(f"    buffer += {src.const(bytes(pending))}")
            pending = bytearray()

    groups = _numeric_runs(fields, types)
    encoded = dict(descriptor.encoded_fields)
    var = 0
    for kind, group in groups:
        if kind == "run":
            names = []
            fmt = ">"
            pack_args = []
            fallback = []
            flush()
            for position, field in enumerate(group):
                tag = _T_INT64 if types[field] is int else _T_FLOAT
                const = encoded[field] + bytes([tag])
                fmt += f"{len(const)}s" + ("q" if types[field] is int else "d")
                name_const = src.const(const)
                names.append(src.const(encoded[field]))
                v = f"v{var + position}"
                src.add(f"    {v} = value.{field}")
                pack_args.append(name_const)
                pack_args.append(v)
                fallback.append(
                    f"buffer += {names[-1]}; w.write({v})"
                )
            checks = " and ".join(
                f"type(v{var + position}) is "
                + ("int" if types[field] is int else "float")
                for position, field in enumerate(group)
            )
            packer = src.const(struct.Struct(fmt).pack)
            src.add(f"    if {checks}:")
            src.add("        try:")
            src.add(f"            buffer += {packer}({', '.join(pack_args)})")
            src.add("        except _PackError:")
            for line in fallback:
                src.add(f"            {line}")
            src.add("    else:")
            for line in fallback:
                src.add(f"        {line}")
            var += len(group)
            continue

        field = group
        ftype = types.get(field)
        pending += encoded[field]
        if ftype is None:
            flush()
            src.add(f"    w.write(value.{field})")
            continue
        if ftype is _IntList or ftype is _FloatList:
            flush()
            helper = "_w_intlist" if ftype is _IntList else "_w_floatlist"
            src.add(f"    {helper}(w, value.{field})")
            continue
        flush()
        v = f"v{var}"
        var += 1
        src.add(f"    {v} = value.{field}")
        if ftype is int:
            src.add(f"    if type({v}) is int and "
                    f"{_INT64_MIN} <= {v} <= {_INT64_MAX}:")
            src.add(f"        buffer.append({_T_INT64})")
            src.add(f"        buffer += _i64({v})")
        elif ftype is float:
            src.add(f"    if type({v}) is float:")
            src.add(f"        buffer.append({_T_FLOAT})")
            src.add(f"        buffer += _f64({v})")
        elif ftype is bool:
            src.add(f"    if {v} is True:")
            src.add(f"        buffer.append({_T_TRUE})")
            src.add(f"    elif {v} is False:")
            src.add(f"        buffer.append({_T_FALSE})")
        elif ftype is str:
            src.add(f"    if type({v}) is str:")
            src.add(f"        _e = {v}.encode('utf-8')")
            src.add(f"        buffer.append({_T_STR})")
            src.add("        buffer += _u32(len(_e))")
            src.add("        buffer += _e")
        elif ftype is bytes:
            src.add(f"    if type({v}) is bytes:")
            src.add(f"        buffer.append({_T_BYTES})")
            src.add(f"        buffer += _u32(len({v}))")
            src.add(f"        buffer += {v}")
        src.add("    else:")
        src.add(f"        w.write({v})")
    flush()

    source = src.text()
    exec(compile(source, f"<serial writer {descriptor.name}>", "exec"),
         namespace)
    return namespace[f"_write_{descriptor.cls.__name__}"], source


def _compile_reader(descriptor):
    """Generate the specialized reader: verify the expected constant
    regions (field count, names, typed tags) with slice compares, decode
    typed payloads inline, and bail to the fully generic field loop on the
    first disagreement."""
    fields = descriptor.fields
    types = descriptor.field_types
    namespace = {
        "_new": descriptor.cls.__new__,
        "_cls": descriptor.cls,
        "_u32_at": _PACK_U32.unpack_from,
        "_i64_at": _PACK_I64.unpack_from,
        "_f64_at": _PACK_F64.unpack_from,
        "_str": str,
        "_bytes": bytes,
        "_PackError": struct.error,
        "_fallback": _generic_object_fields,
        "_Trunc": NotSerializableError,
    }
    src = _Source(namespace)
    src.add(f"def _read_{descriptor.cls.__name__}(r):")
    src.add("    data = r._data")
    src.add("    offset = r._offset")
    src.add("    start = offset")
    src.add("    size = len(data)")
    src.add("    value = _new(_cls)")
    if not descriptor.acyclic:
        src.add("    r._memo.append(value)")
    src.add("    _mlen = len(r._memo)")
    src.add("    try:")

    encoded = dict(descriptor.encoded_fields)
    pending = bytearray(_PACK_U32.pack(len(fields)))

    def verify():
        nonlocal pending
        if pending:
            expected = src.const(bytes(pending))
            length = len(pending)
            src.add(f"        if data[offset:offset + {length}] "
                    f"!= {expected}:")
            src.add("            return _fallback(r, value, start, _mlen)")
            src.add(f"        offset += {length}")
            pending = bytearray()

    for kind, group in _numeric_runs(fields, types):
        if kind == "run":
            fmt = ">"
            expected_consts = []
            for position, field in enumerate(group):
                tag = _T_INT64 if types[field] is int else _T_FLOAT
                prefix = b"" if position == 0 else encoded[field]
                const = prefix + bytes([tag])
                fmt += f"{len(const)}s" + ("q" if types[field] is int else "d")
                expected_consts.append(src.const(const))
            pending.extend(encoded[group[0]])
            verify()
            run_struct = struct.Struct(fmt)
            unpacker = src.const(run_struct.unpack_from)
            src.add(f"        _t = {unpacker}(data, offset)")
            checks = " or ".join(
                f"_t[{2 * position}] != {name}"
                for position, name in enumerate(expected_consts)
            )
            src.add(f"        if {checks}:")
            src.add("            return _fallback(r, value, start, _mlen)")
            for position, field in enumerate(group):
                src.add(f"        value.{field} = _t[{2 * position + 1}]")
            src.add(f"        offset += {run_struct.size}")
            continue

        field = group
        ftype = types.get(field)
        pending.extend(encoded[field])
        verify()
        if ftype is None or ftype is _IntList or ftype is _FloatList:
            # Batch-declared fields read generically too: the batched
            # tags decode in one C call either way, and the generic
            # reader keeps the memo aligned with the writer's.
            src.add("        r._offset = offset")
            src.add(f"        value.{field} = r.read()")
            src.add("        offset = r._offset")
        elif ftype is int:
            src.add(f"        if data[offset] == {_T_INT64}:")
            src.add(f"            value.{field} = "
                    "_i64_at(data, offset + 1)[0]")
            src.add("            offset += 9")
            src.add("        else:")
            src.add("            r._offset = offset")
            src.add(f"            value.{field} = r.read()")
            src.add("            offset = r._offset")
        elif ftype is float:
            src.add(f"        if data[offset] == {_T_FLOAT}:")
            src.add(f"            value.{field} = "
                    "_f64_at(data, offset + 1)[0]")
            src.add("            offset += 9")
            src.add("        else:")
            src.add("            r._offset = offset")
            src.add(f"            value.{field} = r.read()")
            src.add("            offset = r._offset")
        elif ftype is bool:
            src.add("        _tag = data[offset]")
            src.add(f"        if _tag == {_T_TRUE}:")
            src.add(f"            value.{field} = True")
            src.add("            offset += 1")
            src.add(f"        elif _tag == {_T_FALSE}:")
            src.add(f"            value.{field} = False")
            src.add("            offset += 1")
            src.add("        else:")
            src.add("            r._offset = offset")
            src.add(f"            value.{field} = r.read()")
            src.add("            offset = r._offset")
        elif ftype in (str, bytes):
            tag = _T_STR if ftype is str else _T_BYTES
            src.add(f"        if data[offset] == {tag}:")
            src.add("            _l = _u32_at(data, offset + 1)[0]")
            src.add("            _end = offset + 5 + _l")
            src.add("            if _end > size:")
            src.add("                raise _Trunc('truncated stream')")
            if ftype is str:
                src.add(f"            value.{field} = "
                        "_str(data[offset + 5:_end], 'utf-8')")
            else:
                src.add(f"            value.{field} = "
                        "_bytes(data[offset + 5:_end])")
            src.add("            offset = _end")
            src.add("        else:")
            src.add("            r._offset = offset")
            src.add(f"            value.{field} = r.read()")
            src.add("            offset = r._offset")
    verify()
    src.add("    except (_PackError, IndexError):")
    src.add("        return _fallback(r, value, start, _mlen)")
    src.add("    r._offset = offset")
    src.add("    return value")

    source = src.text()
    exec(compile(source, f"<serial reader {descriptor.name}>", "exec"),
         namespace)
    return namespace[f"_read_{descriptor.cls.__name__}"], source


def _resolve_is_capability(descriptor):
    global _Capability
    if _Capability is None:
        from .capability import Capability
        _Capability = Capability
    flag = issubclass(descriptor.cls, _Capability)
    descriptor.is_capability = flag
    return flag


def _generic_object_fields(reader, value, start, memo_length):
    """Fully generic field parse (stream-driven names), used when a
    compiled reader finds the stream disagreeing with its registration.

    Rewinds the offset to the field-count position and drops memo entries
    appended by the abandoned compiled parse, so back-reference indices
    stay aligned with the writer's."""
    del reader._memo[memo_length:]
    reader._offset = start
    read = reader.read
    raw = reader._raw
    for _ in range(reader._u32()):
        field = raw().decode("utf-8")
        setattr(value, field, read())
    return value


class ObjectWriter:
    """Serializes one value graph to bytes.

    ``compiled=False`` disables the registration-time compiled class
    writers and the batched homogeneous-sequence tags, forcing the fully
    generic per-value path (used by equivalence tests)."""

    def __init__(self, registry=None, capability_table=None, compiled=True):
        self.registry = registry or DEFAULT_REGISTRY
        self.capability_table = capability_table
        self._compiled = compiled
        self._buffer = bytearray()
        self._memo = {}

    def dumps(self, value):
        # Reentrancy-safe: each call gets a pooled buffer and a fresh
        # memo, with the previous state restored on exit, so a nested
        # dumps (e.g. a capability stub invoked while serializing) can
        # never interleave bytes or back-references with this stream.
        # (Not a cross-thread guarantee for one shared writer instance:
        # the active buffer lives on `self` — use per-call writers, as
        # the module-level dumps/copy_via_serialization do.)
        previous_buffer = self._buffer
        previous_memo = self._memo
        buffer = _acquire_buffer()
        self._buffer = buffer
        self._memo = {}
        try:
            self.write(value)
            return bytes(buffer)
        finally:
            self._buffer = previous_buffer
            self._memo = previous_memo
            _release_buffer(buffer)

    def dumps_into(self, buffer, value, capability_table=None):
        """Append ``value``'s serialized stream onto ``buffer`` (a
        bytearray) in place — the frame-assembly entry point of the
        cross-process wire, which composes a whole outbound frame in
        one reusable buffer with zero intermediate bytes objects.

        ``capability_table`` (when given) replaces the writer's table
        for the duration of the call, so one long-lived writer can
        serve per-call side tables.  Same reentrancy contract as
        :meth:`dumps`: previous buffer/memo/table state is restored on
        exit, so a nested serialization can never interleave with this
        stream.
        """
        previous_buffer = self._buffer
        previous_memo = self._memo
        previous_table = self.capability_table
        self._buffer = buffer
        self._memo = {}
        if capability_table is not None:
            self.capability_table = capability_table
        try:
            self.write(value)
        finally:
            self._buffer = previous_buffer
            self._memo = previous_memo
            self.capability_table = previous_table

    # -- primitives --------------------------------------------------------
    def _tag(self, tag):
        self._buffer.append(tag)

    def _u32(self, value):
        self._buffer += _PACK_U32.pack(value)

    def _raw(self, data):
        self._u32(len(data))
        self._buffer += data

    # -- main dispatch ---------------------------------------------------------
    def write(self, value):
        # Hot loop: one bound-attribute load for the buffer, tag byte and
        # payload appended back to back, recursion through a localized
        # bound method.
        buffer = self._buffer
        if value is None:
            buffer.append(_T_NULL)
            return
        if value is True:
            buffer.append(_T_TRUE)
            return
        if value is False:
            buffer.append(_T_FALSE)
            return
        value_type = type(value)
        if value_type is int:
            if _INT64_MIN <= value <= _INT64_MAX:
                buffer.append(_T_INT64)
                buffer += _PACK_I64.pack(value)
            else:
                encoded = value.to_bytes(
                    (value.bit_length() + 8) // 8, "big", signed=True
                )
                buffer.append(_T_BIGINT)
                buffer += _PACK_U32.pack(len(encoded))
                buffer += encoded
            return
        if value_type is float:
            buffer.append(_T_FLOAT)
            buffer += _PACK_F64.pack(value)
            return
        if value_type is str:
            encoded = value.encode("utf-8")
            buffer.append(_T_STR)
            buffer += _PACK_U32.pack(len(encoded))
            buffer += encoded
            return
        if value_type is bytes:
            buffer.append(_T_BYTES)
            buffer += _PACK_U32.pack(len(value))
            buffer += value
            return
        if self._write_backref(value):
            return
        memo = self._memo
        if value_type is bytearray:
            memo[id(value)] = len(memo)
            buffer.append(_T_BYTEARRAY)
            buffer += _PACK_U32.pack(len(value))
            buffer += value
            return
        if value_type is list:
            if self._compiled and value \
                    and self._write_batched(_T_INTLIST, _T_FLOATLIST, value):
                return
            self._write_sequence(_T_LIST, value)
            return
        if value_type is tuple:
            if self._compiled and value \
                    and self._write_batched(_T_INTTUPLE, _T_FLOATTUPLE, value):
                return
            self._write_sequence(_T_TUPLE, value)
            return
        if value_type is set:
            self._write_sequence(_T_SET, sorted(value, key=_sort_key))
            return
        if value_type is frozenset:
            self._write_sequence(_T_FROZENSET, sorted(value, key=_sort_key))
            return
        if value_type is dict:
            memo[id(value)] = len(memo)
            buffer.append(_T_DICT)
            buffer += _PACK_U32.pack(len(value))
            write = self.write
            for key, item in value.items():
                write(key)
                write(item)
            return
        # Registered classes are the common case on this tail: probe the
        # registry before paying the capability isinstance check.  A
        # registered class that turns out to subclass Capability still
        # crosses by reference — capabilities are never byte-encoded.
        descriptor = self.registry.lookup_class(value_type)
        if descriptor is not None:
            by_reference = descriptor.is_capability
            if by_reference is None:
                by_reference = _resolve_is_capability(descriptor)
            if not by_reference:
                self._write_object(value, descriptor)
                return
        if self._write_capref(value):
            return
        self._write_object(value, None)

    def _write_batched(self, int_tag, float_tag, items):
        """Homogeneous int/float sequences cross as one batched pack
        instead of per-element tag/value pairs.  Returns False (nothing
        written) when the sequence is mixed, holds bools, or an element
        overflows 64 bits — the caller then takes the per-element path."""
        # type(items[0]) pre-filter: mixed sequences usually reveal
        # themselves at element 0, skipping the full scan.
        first = type(items[0])
        if first is int:
            if len(items) > 1 and set(map(type, items)) != _JUST_INT:
                return False
            try:
                # Byte-wide fast path: one C-level conversion when every
                # element is 0..255 (the dominant bulk-payload shape).
                packed = bytes(items)
                tag = _T_INTLIST_U8 if int_tag == _T_INTLIST \
                    else _T_INTTUPLE_U8
            except ValueError:
                try:
                    packed = _batch_struct("q", len(items)).pack(*items)
                except struct.error:
                    return False  # an element overflows 64 bits
                tag = int_tag
        elif first is float:
            if len(items) > 1 and set(map(type, items)) != _JUST_FLOAT:
                return False
            packed = _batch_struct("d", len(items)).pack(*items)
            tag = float_tag
        else:
            return False
        memo = self._memo
        memo[id(items)] = len(memo)
        buffer = self._buffer
        buffer.append(tag)
        buffer += _PACK_U32.pack(len(items))
        buffer += packed
        return True

    def _write_backref(self, value):
        index = self._memo.get(id(value))
        if index is None:
            return False
        self._tag(_T_BACKREF)
        self._u32(index)
        return True

    def _write_sequence(self, tag, items):
        memo = self._memo
        memo[id(items)] = len(memo)
        buffer = self._buffer
        buffer.append(tag)
        buffer += _PACK_U32.pack(len(items))
        write = self.write
        for item in items:
            write(item)

    def _write_capref(self, value):
        global _Capability
        if _Capability is None:
            from .capability import Capability
            _Capability = Capability
        if not isinstance(value, _Capability) \
                and type(value) not in _CAPREF_TYPES:
            return False
        if self.capability_table is None:
            raise NotSerializableError(
                f"{type(value).__qualname__} crosses by reference, not by "
                "bytes: capabilities and sealed regions ride the side "
                "table of an LRMI transfer and cannot be serialized "
                "outside an LRMI call"
            )
        self._tag(_T_CAPREF)
        self._u32(len(self.capability_table))
        self.capability_table.append(value)
        return True

    def _write_object(self, value, descriptor):
        if descriptor is None:
            if isinstance(value, BaseException):
                descriptor = self._exception_fallback(value)
            if descriptor is None:
                raise NotSerializableError(
                    f"{type(value).__qualname__} is not registered as "
                    "serializable (use @serializable or @fast_copy)"
                )
        if self._compiled and descriptor.writer is not None:
            descriptor.writer(self, value)
            return
        if descriptor.rebuild is not None:
            # Constructor-rebuilt classes (sealed carriers): positional
            # reduced values, re-validated by ``rebuild`` on read.
            buffer = self._buffer
            buffer.append(_T_REDUCED)
            buffer += descriptor.encoded_name
            values = descriptor.reduce(value)
            buffer += _PACK_U32.pack(len(values))
            write = self.write
            for item in values:
                write(item)
            return
        memo = self._memo
        if not descriptor.acyclic:
            memo[id(value)] = len(memo)
        buffer = self._buffer
        if descriptor.is_exception:
            buffer.append(_T_EXCEPTION)
            buffer += descriptor.encoded_name
            self.write(tuple(value.args))
            return
        buffer.append(_T_OBJECT)
        buffer += descriptor.encoded_name
        write = self.write
        encoded_fields = descriptor.encoded_fields
        if encoded_fields is not None:
            buffer += _PACK_U32.pack(len(encoded_fields))
            for field, encoded in encoded_fields:
                buffer += encoded
                write(getattr(value, field))
        else:
            state = vars(value)
            buffer += _PACK_U32.pack(len(state))
            for field in sorted(state):
                buffer += _length_prefixed(field)
                write(state[field])

    def _exception_fallback(self, value):
        # Walk up the exception hierarchy for a registered ancestor, so an
        # unregistered subclass still crosses as its nearest known base.
        for ancestor in type(value).__mro__[1:]:
            descriptor = self.registry.lookup_class(ancestor)
            if descriptor is not None and descriptor.is_exception:
                return descriptor
        return None


class ObjectReader:
    """Deserializes bytes produced by :class:`ObjectWriter`.

    ``compiled=False`` disables the registration-time compiled class
    readers (batched sequence tags are always understood — they are part
    of the wire format, whoever wrote them)."""

    def __init__(self, data, registry=None, capability_table=None,
                 compiled=True):
        self.registry = registry or DEFAULT_REGISTRY
        self.capability_table = capability_table or []
        self._compiled = compiled
        self._data = memoryview(data)
        self._offset = 0
        self._memo = []

    def loads(self):
        value = self.read()
        if self._offset != len(self._data):
            raise NotSerializableError("trailing bytes after value")
        return value

    # -- primitives ---------------------------------------------------------
    def _take(self, count):
        end = self._offset + count
        if end > len(self._data):
            raise NotSerializableError("truncated stream")
        chunk = self._data[self._offset:end]
        self._offset = end
        return chunk

    def _u32(self):
        return _PACK_U32.unpack(self._take(4))[0]

    def _raw(self):
        return bytes(self._take(self._u32()))

    # -- main dispatch -----------------------------------------------------------
    def read(self):
        # Hot loop: the tag byte and fixed-size payloads are decoded with
        # a locally tracked offset (one attribute write on exit) instead
        # of per-chunk _take() calls.
        data = self._data
        size = len(data)
        offset = self._offset
        if offset >= size:
            raise NotSerializableError("truncated stream")
        tag = data[offset]
        offset += 1
        if tag == _T_NULL:
            self._offset = offset
            return None
        if tag == _T_TRUE:
            self._offset = offset
            return True
        if tag == _T_FALSE:
            self._offset = offset
            return False
        if tag == _T_INT64:
            end = offset + 8
            if end > size:
                raise NotSerializableError("truncated stream")
            self._offset = end
            return _PACK_I64.unpack(data[offset:end])[0]
        if tag == _T_STR or tag == _T_BYTES:
            end = offset + 4
            if end > size:
                raise NotSerializableError("truncated stream")
            length = _PACK_U32.unpack(data[offset:end])[0]
            offset, end = end, end + length
            if end > size:
                raise NotSerializableError("truncated stream")
            self._offset = end
            if tag == _T_STR:
                return str(data[offset:end], "utf-8")
            return bytes(data[offset:end])
        if tag == _T_FLOAT:
            end = offset + 8
            if end > size:
                raise NotSerializableError("truncated stream")
            self._offset = end
            return _PACK_F64.unpack(data[offset:end])[0]
        if _T_INTLIST <= tag <= _T_FLOATTUPLE:
            end = offset + 4
            if end > size:
                raise NotSerializableError("truncated stream")
            count = _PACK_U32.unpack(data[offset:end])[0]
            payload_end = end + 8 * count
            if payload_end > size:
                raise NotSerializableError("truncated stream")
            kind = "q" if tag <= _T_INTTUPLE else "d"
            unpacked = _batch_struct(kind, count).unpack(data[end:payload_end])
            self._offset = payload_end
            if tag == _T_INTLIST or tag == _T_FLOATLIST:
                value = list(unpacked)
            else:
                value = unpacked
            self._memo.append(value)
            return value
        if tag == _T_INTLIST_U8 or tag == _T_INTTUPLE_U8:
            end = offset + 4
            if end > size:
                raise NotSerializableError("truncated stream")
            count = _PACK_U32.unpack(data[offset:end])[0]
            payload_end = end + count
            if payload_end > size:
                raise NotSerializableError("truncated stream")
            self._offset = payload_end
            if tag == _T_INTLIST_U8:
                value = list(data[end:payload_end])
            else:
                value = tuple(data[end:payload_end])
            self._memo.append(value)
            return value
        self._offset = offset
        if tag == _T_OBJECT:
            return self._read_object()
        if tag == _T_REDUCED:
            return self._read_reduced()
        if tag == _T_BIGINT:
            return int.from_bytes(self._raw(), "big", signed=True)
        if tag == _T_BYTEARRAY:
            value = bytearray(self._raw())
            self._memo.append(value)
            return value
        if tag == _T_LIST:
            return self._read_sequence(list)
        if tag == _T_TUPLE:
            return self._read_sequence(tuple)
        if tag == _T_SET:
            return self._read_sequence(set)
        if tag == _T_FROZENSET:
            return self._read_sequence(frozenset)
        if tag == _T_DICT:
            value = {}
            self._memo.append(value)
            read = self.read
            for _ in range(self._u32()):
                key = read()
                value[key] = read()
            return value
        if tag == _T_BACKREF:
            return self._memo[self._u32()]
        if tag == _T_CAPREF:
            return self.capability_table[self._u32()]
        if tag == _T_EXCEPTION:
            return self._read_exception()
        raise NotSerializableError(f"unknown tag {tag}")

    def _read_sequence(self, factory):
        placeholder = []
        memo = self._memo
        memo.append(placeholder)
        slot = len(memo) - 1
        count = self._u32()
        read = self.read
        append = placeholder.append
        for _ in range(count):
            append(read())
        if factory is list:
            return placeholder
        value = factory(placeholder)
        memo[slot] = value
        return value

    def _read_exception(self):
        encoded = self._raw()
        descriptor = self.registry.lookup_encoded(encoded)
        if descriptor is None:
            name = encoded.decode("utf-8", "replace")
            raise NotSerializableError(f"unknown exception class {name!r}")
        args = None
        slot = len(self._memo)
        self._memo.append(None)
        args = self.read()
        value = descriptor.cls(*args)
        self._memo[slot] = value
        return value

    def _read_reduced(self):
        encoded = bytes(self._take(self._u32()))
        descriptor = self.registry.lookup_encoded(encoded)
        if descriptor is None or descriptor.rebuild is None:
            name = encoded.decode("utf-8", "replace")
            raise NotSerializableError(
                f"no rebuild registration for class {name!r}"
            )
        read = self.read
        values = [read() for _ in range(self._u32())]
        try:
            return descriptor.rebuild(*values)
        except NotSerializableError:
            raise
        except Exception as exc:
            raise NotSerializableError(
                f"rebuilding {descriptor.name} failed: {exc!r}"
            ) from exc

    def _read_object(self):
        # Class names are matched on their raw UTF-8 bytes (no decode on
        # the hot path); the registry keeps the encoded index.
        data = self._data
        size = len(data)
        offset = self._offset
        end = offset + 4
        if end > size:
            raise NotSerializableError("truncated stream")
        length = _PACK_U32.unpack(data[offset:end])[0]
        offset, end = end, end + length
        if end > size:
            raise NotSerializableError("truncated stream")
        encoded = bytes(data[offset:end])
        self._offset = end
        descriptor = self.registry.lookup_encoded(encoded)
        if descriptor is None:
            name = encoded.decode("utf-8", "replace")
            raise NotSerializableError(f"unknown class {name!r}")
        if self._compiled and descriptor.reader is not None:
            return descriptor.reader(self)
        value = descriptor.cls.__new__(descriptor.cls)
        if not descriptor.acyclic:
            self._memo.append(value)
        read = self.read
        raw = self._raw
        for _ in range(self._u32()):
            field = raw().decode("utf-8")
            setattr(value, field, read())
        return value


def _sort_key(value):
    return (type(value).__name__, repr(value))


def dumps(value, registry=None, capability_table=None):
    return ObjectWriter(registry, capability_table).dumps(value)


def loads(data, registry=None, capability_table=None):
    return ObjectReader(data, registry, capability_table).loads()


_copy_observer = None


def set_copy_observer(callback):
    """Install a hook receiving the byte size of every serialized copy
    (used by ``repro.core.accounting``)."""
    global _copy_observer
    _copy_observer = callback


def copy_via_serialization(value, registry=None, capability_table=None):
    """The default LRMI copy: serialize to a byte array, deserialize."""
    table = capability_table if capability_table is not None else []
    data = dumps(value, registry, table)
    if _copy_observer is not None:
        _copy_observer(len(data))
    return loads(data, registry, table)
