"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations


def format_table(title, headers, rows):
    """Render a list-of-lists as an aligned text table."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(
            cell.ljust(widths[index]) if index == 0 else
            cell.rjust(widths[index])
            for index, cell in enumerate(cells)
        )

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    parts = [title, separator, line(columns), separator]
    parts += [line(row) for row in text_rows]
    parts.append(separator)
    return "\n".join(parts)


def _cell(value):
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
