"""Calibrated wall-clock measurement helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class BenchResult:
    ns_per_op: float
    number: int
    rounds: int

    @property
    def us_per_op(self):
        return self.ns_per_op / 1000.0

    def __repr__(self):
        return f"<BenchResult {self.us_per_op:.3f} µs/op>"


def measure(fn, min_time=0.02, rounds=5, number=None):
    """Best-of-``rounds`` timing of ``fn()`` executed ``number`` times.

    ``number`` is auto-calibrated so one round takes at least ``min_time``
    seconds.
    """
    if number is None:
        number = 1
        while True:
            started = time.perf_counter()
            for _ in range(number):
                fn()
            elapsed = time.perf_counter() - started
            if elapsed >= min_time / 4 or number >= 1 << 20:
                break
            number *= 4
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return BenchResult(best / number * 1e9, number, rounds)


def measure_batch(fn, batch, rounds=3):
    """Time ``fn(batch)`` where ``fn`` performs ``batch`` operations
    internally (guest-code loops); returns ns per operation."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn(batch)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return BenchResult(best / batch * 1e9, batch, rounds)
