"""Benchmark fixtures: one builder per paper table.

Each fixture packages the workload (guest classes, domains, capabilities,
servers) plus measurement methods returning µs/op or pages/sec.  Both the
pytest-benchmark suite (``benchmarks/``) and the table runner
(``repro.bench.runner``) build on these.
"""

from __future__ import annotations

import threading
import time

from repro.core import Capability, Domain, Remote, fast_copy, serializable
from repro.jkvm import JKernelVM
from repro.jvm import ClassAssembler, interface
from repro.jvm.classfile import ACC_PUBLIC, ACC_STATIC, CONSTRUCTOR_NAME
from repro.jvm.instructions import (
    ALOAD,
    GOTO,
    ICONST,
    IF_ICMPGE,
    IINC,
    ILOAD,
    INVOKEINTERFACE,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    IRETURN,
    IADD,
    ISTORE,
    MONITORENTER,
    MONITOREXIT,
    POP,
    RETURN,
)

from .timer import measure, measure_batch

_STATIC = ACC_PUBLIC | ACC_STATIC


def _loop_method(ca, name, desc, body_emitter, counter_slot, limit_slot):
    """Emit ``for (i = 0; i < n; i++) { body }`` with n in ``limit_slot``."""
    m = ca.method(name, desc, _STATIC)
    m.emit(ICONST, 0)
    m.emit(ISTORE, counter_slot)
    loop = m.here()
    m.emit(ILOAD, counter_slot)
    m.emit(ILOAD, limit_slot)
    done = m.label()
    m.emit(IF_ICMPGE, done)
    body_emitter(m)
    m.emit(IINC, counter_slot, 1)
    m.emit(GOTO, loop.pc)
    m.mark(done)
    m.emit(RETURN)
    return m


class Table1Fixture:
    """Null-invocation micro-benchmarks on the MiniJVM, per VM profile."""

    def __init__(self, profile):
        self.profile = profile
        self.kernel = JKernelVM(profile=profile)
        vm = self.kernel.vm
        self.vm = vm

        self.server = self.kernel.new_domain("bench-server")
        self.client = self.kernel.new_domain("bench-client")

        remote_iface = interface(
            "bench/INull", [("nullOp", "()V"), ("add3", "(III)I")],
            extends=("jk/Remote",),
        )
        target = ClassAssembler(
            "bench/Target", interfaces=("bench/INull", "jk/Remote")
        )
        with target.method(CONSTRUCTOR_NAME, "()V") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME, "()V")
            m.emit(RETURN)
        with target.method("nullOp", "()V") as m:
            m.emit(RETURN)
        with target.method("add3", "(III)I") as m:
            m.emit(ILOAD, 1)
            m.emit(ILOAD, 2)
            m.emit(IADD)
            m.emit(ILOAD, 3)
            m.emit(IADD)
            m.emit(IRETURN)
        self.server.define([remote_iface, target.build()])
        target_obj = vm.construct(
            self.server.load("bench/Target"), domain_tag=self.server.tag
        )
        self.capability = self.server.create_capability(target_obj)
        self.client.share_from(self.server, "bench/INull")

        # Local (same-domain) classes for the non-LRMI rows.
        local_iface = interface("bench/ILocal", [("nullOp", "()V")])
        local_impl = ClassAssembler(
            "bench/Local", interfaces=("bench/ILocal",)
        )
        with local_impl.method(CONSTRUCTOR_NAME, "()V") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME, "()V")
            m.emit(RETURN)
        with local_impl.method("nullOp", "()V") as m:
            m.emit(RETURN)

        driver = ClassAssembler("bench/Driver")
        # loopEmpty(I)V            -- loop overhead baseline
        _loop_method(driver, "loopEmpty", "(I)V", lambda m: None, 1, 0)
        # loopInvoke(Lbench/Local;I)V   -- regular virtual invocation
        _loop_method(
            driver, "loopInvoke", "(Lbench/Local;I)V",
            lambda m: (
                m.emit(ALOAD, 0),
                m.emit(INVOKEVIRTUAL, "bench/Local", "nullOp", "()V"),
            ),
            2, 1,
        )
        # loopIface(Lbench/ILocal;I)V   -- interface invocation
        _loop_method(
            driver, "loopIface", "(Lbench/ILocal;I)V",
            lambda m: (
                m.emit(ALOAD, 0),
                m.emit(INVOKEINTERFACE, "bench/ILocal", "nullOp", "()V"),
            ),
            2, 1,
        )
        # loopThreadInfo(I)V       -- current-thread lookup
        _loop_method(
            driver, "loopThreadInfo", "(I)V",
            lambda m: (
                m.emit(INVOKESTATIC, "java/lang/Thread", "currentThread",
                       "()Ljava/lang/Thread;"),
                m.emit(POP),
            ),
            1, 0,
        )
        # loopLock(Ljava/lang/Object;I)V -- one acquire/release per round
        _loop_method(
            driver, "loopLock", "(Ljava/lang/Object;I)V",
            lambda m: (
                m.emit(ALOAD, 0),
                m.emit(MONITORENTER),
                m.emit(ALOAD, 0),
                m.emit(MONITOREXIT),
            ),
            2, 1,
        )
        # loopLrmi(Lbench/INull;I)V  -- cross-domain call via capability
        _loop_method(
            driver, "loopLrmi", "(Lbench/INull;I)V",
            lambda m: (
                m.emit(ALOAD, 0),
                m.emit(INVOKEINTERFACE, "bench/INull", "nullOp", "()V"),
            ),
            2, 1,
        )
        # loopLrmi3(Lbench/INull;I)V -- 3-argument LRMI (Table 6 row)
        _loop_method(
            driver, "loopLrmi3", "(Lbench/INull;I)V",
            lambda m: (
                m.emit(ALOAD, 0),
                m.emit(ICONST, 1),
                m.emit(ICONST, 2),
                m.emit(ICONST, 3),
                m.emit(INVOKEINTERFACE, "bench/INull", "add3", "(III)I"),
                m.emit(POP),
            ),
            2, 1,
        )
        self.client.define([local_iface, local_impl.build(), driver.build()])
        self.driver = self.client.load("bench/Driver")
        self.local_obj = vm.construct(
            self.client.load("bench/Local"), domain_tag=self.client.tag
        )
        self.lock_obj = vm.heap.new_object(
            vm.object_class, owner=self.client.tag
        )
        vm.pinned.add(self.lock_obj)

    # -- measurement -------------------------------------------------------
    def _run(self, method, extra_args, batch):
        self.vm.call_static(
            self.driver, method[0], method[1], [*extra_args, batch],
            domain_tag=self.client.tag, max_steps=200_000_000,
        )

    def _per_op(self, method, extra_args, batch=2000, rounds=3):
        timed = measure_batch(
            lambda n: self._run(method, extra_args, n), batch, rounds
        )
        baseline = measure_batch(
            lambda n: self._run(("loopEmpty", "(I)V"), [], n), batch, rounds
        )
        return max(timed.us_per_op - baseline.us_per_op, 0.001)

    def regular_invocation_us(self, batch=2000):
        return self._per_op(("loopInvoke", "(Lbench/Local;I)V"),
                            [self.local_obj], batch)

    def interface_invocation_us(self, batch=2000):
        return self._per_op(("loopIface", "(Lbench/ILocal;I)V"),
                            [self.local_obj], batch)

    def thread_info_us(self, batch=2000):
        return self._per_op(("loopThreadInfo", "(I)V"), [], batch)

    def lock_us(self, batch=2000):
        return self._per_op(("loopLock", "(Ljava/lang/Object;I)V"),
                            [self.lock_obj], batch)

    def lrmi_us(self, batch=500):
        return self._per_op(("loopLrmi", "(Lbench/INull;I)V"),
                            [self.capability], batch)

    def lrmi3_us(self, batch=500):
        return self._per_op(("loopLrmi3", "(Lbench/INull;I)V"),
                            [self.capability], batch)

    def row(self, batch=2000):
        return {
            "Regular method invocation": self.regular_invocation_us(batch),
            "Interface method invocation": self.interface_invocation_us(batch),
            "Thread info lookup": self.thread_info_us(batch),
            "Acquire/release lock": self.lock_us(batch),
            "J-Kernel LRMI": self.lrmi_us(max(batch // 4, 100)),
        }


class Table3Fixture:
    """Double thread switches: host threads (NT-base) vs VM green threads."""

    def __init__(self, profile):
        self.profile = profile

    @staticmethod
    def host_double_switch_us(switches=2000):
        """Ping-pong between two host threads via two events."""
        ping = threading.Event()
        pong = threading.Event()
        rounds = switches // 2

        def other():
            for _ in range(rounds):
                ping.wait()
                ping.clear()
                pong.set()

        worker = threading.Thread(target=other, daemon=True)
        worker.start()
        started = time.perf_counter()
        for _ in range(rounds):
            ping.set()
            pong.wait()
            pong.clear()
        elapsed = time.perf_counter() - started
        worker.join()
        return elapsed / rounds * 1e6  # per double switch

    def vm_double_switch_us(self, switches=4000):
        """Ping-pong between two guest threads via Thread.yield."""
        from repro.jvm import VM, MapResolver

        vm = VM(profile=self.profile)
        ca = ClassAssembler("bench/Yielder", super_name="java/lang/Thread")
        with ca.method(CONSTRUCTOR_NAME, "()V") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESPECIAL, "java/lang/Thread", CONSTRUCTOR_NAME, "()V")
            m.emit(RETURN)
        m = ca.method("run", "()V")
        m.emit(ICONST, 0)
        m.emit("istore", 1)
        loop = m.here()
        m.emit(ILOAD, 1)
        m.emit(ICONST, switches // 2)
        done = m.label()
        m.emit(IF_ICMPGE, done)
        m.emit(INVOKESTATIC, "java/lang/Thread", "yield", "()V")
        m.emit(IINC, 1, 1)
        m.emit(GOTO, loop.pc)
        m.mark(done)
        m.emit(RETURN)
        cf = ca.build()
        loader = vm.new_loader("bench", resolver=MapResolver({cf.name: cf}))
        yielder = loader.load("bench/Yielder")
        first = vm.construct(yielder)
        second = vm.construct(yielder)
        vm.call_virtual(first, "start", "()V")
        vm.call_virtual(second, "start", "()V")
        before = vm.scheduler.context_switches
        started = time.perf_counter()
        vm.scheduler.run(max_steps=200_000_000)
        elapsed = time.perf_counter() - started
        switched = vm.scheduler.context_switches - before
        if switched < 2:
            return 0.0
        return elapsed / (switched / 2) * 1e6


# -- Table 4 payloads ---------------------------------------------------------

@fast_copy(fields=("payload",))
@serializable(fields=("payload",), acyclic=True)
class Chunk:
    """One copyable object carrying a Java-style byte array.

    The payload is a list of per-element integers, not Python ``bytes``:
    the 1997 serializer the paper measures copies array *elements* through
    the stream, so its cost grows with payload size.  Python ``bytes``
    would cross via one memcpy and erase exactly the effect Table 4
    measures (see the substitution note in DESIGN.md); the bytes-payload
    variant is kept for the ablation bench.

    ``acyclic=True``: a payload chunk never participates in wire-level
    sharing, so the compiled serializer skips the back-reference memo for
    it (the serialization-side analogue of the fast-copy non-``cyclic``
    default).

    The payload field is deliberately *not* declared ``list[int]``: the
    declared-batch writer would trust the annotation and skip the
    per-element homogeneity scan, and that scan is part of the
    per-element cost this class exists to measure (the fast-copy path
    pays its per-element cost regardless — it ignores annotations).
    """

    def __init__(self, payload):
        self.payload = payload

    @classmethod
    def of_size(cls, nbytes):
        # Signed values, like Java's byte (-128..127).  This also keeps
        # the payload off the serializer's byte-wide u8 batch tag (which
        # needs 0..255): that tag would cross the whole array in one C
        # call and erase the per-element cost this class exists to
        # measure, exactly like the bytes substitution described above.
        return cls([(index & 0xFF) - 128 for index in range(nbytes)])


@fast_copy(fields=("payload",))
@serializable(fields=("payload",), acyclic=True)
class TypedChunk:
    """Table 6 payload: a byte array whose element type is *declared*,
    the way Java's ``byte[]`` declares it.

    Java's serializer knows a ``byte[]``'s element type statically; the
    ``list[int]`` declaration gives the compiled wire the same
    knowledge, so it batches the array in one C call instead of paying
    a Python-only per-element type scan.  Table 6 compares crossing
    *mechanisms* on this one object: the in-process fast-copy path
    still rebuilds it element by element (it ignores annotations),
    while the wire ships it byte-wide — exactly the marshalling
    difference between the two crossings that the table measures.
    :class:`Chunk` above deliberately stays undeclared because Table 4
    measures the scanned per-element serializer, not the wire.
    """

    payload: list[int]

    def __init__(self, payload):
        self.payload = payload

    @classmethod
    def of_size(cls, nbytes):
        return cls([index & 0xFF for index in range(nbytes)])


@fast_copy(fields=("payload",))
@serializable(fields=("payload",), acyclic=True)
class RawChunk:
    """Ablation variant: payload is immutable Python bytes (memcpy path)."""

    payload: bytes

    def __init__(self, payload):
        self.payload = payload


class _Sink(Remote):
    def take(self, value): ...


class _SinkImpl(_Sink):
    def take(self, value):
        return 0


class Table4Fixture:
    """Argument copying during hosted LRMI: serialization vs fast-copy."""

    SHAPES = {
        "1 x 10 bytes": lambda: Chunk.of_size(10),
        "1 x 100 bytes": lambda: Chunk.of_size(100),
        "10 x 10 bytes": lambda: [Chunk.of_size(10) for _ in range(10)],
        "1 x 1000 bytes": lambda: Chunk.of_size(1000),
    }

    def __init__(self):
        self.domain = Domain(f"table4-{id(self)}")
        impl = _SinkImpl()
        self.serial_cap = self.domain.run(
            lambda: Capability.create(impl, copy="serial")
        )
        self.fast_cap = self.domain.run(
            lambda: Capability.create(impl, copy="fast")
        )

    def copy_us(self, shape, mechanism, min_time=0.02):
        payload = self.SHAPES[shape]()
        capability = self.serial_cap if mechanism == "serial" else self.fast_cap
        result = measure(lambda: capability.take(payload), min_time=min_time)
        return result.us_per_op

    def raw_bytes_us(self, nbytes, mechanism, min_time=0.02):
        """Ablation: the same transfer with a memcpy-able bytes payload."""
        payload = RawChunk(bytes(nbytes))
        capability = self.serial_cap if mechanism == "serial" else self.fast_cap
        result = measure(lambda: capability.take(payload), min_time=min_time)
        return result.us_per_op

    def rows(self):
        table = {}
        for shape in self.SHAPES:
            table[shape] = (
                self.copy_us(shape, "serial"),
                self.copy_us(shape, "fast"),
            )
        return table


# -- Table 5 servers ------------------------------------------------------------

PAGE_SIZES = (10, 100, 1000)


def make_documents():
    return {
        f"/doc{size}": bytes(ord("a") + (i % 26) for i in range(size))
        for size in PAGE_SIZES
        for i in [0]
    }


def build_iis(workers=None):
    from repro.web import NativeHttpServer

    server = (NativeHttpServer(workers=workers) if workers is not None
              else NativeHttpServer())
    for path, body in make_documents().items():
        server.documents.put(path, body)
    return server


def build_iis_jkernel(workers=None):
    from repro.web import JKernelWebServer, Servlet, ServletResponse

    class DocServlet(Servlet):
        """Static-document servlet: builds its (sealed, immutable)
        response once and returns it per request — the servlet-side
        analogue of the native server's file cache."""

        def __init__(self, body):
            self.response = ServletResponse(
                200, {"Content-Type": "text/html"}, body
            )

        def service(self, request):
            return self.response

    server = build_iis(workers)
    jk = JKernelWebServer(server=server, mount="/servlet")
    for path, body in make_documents().items():
        jk.install_servlet(path, lambda body=body: DocServlet(body))
    return jk


def build_jws(profile="sunvm"):
    from repro.web import JWSServer

    return JWSServer(make_documents(), profile=profile)


#: WebStone-era browser request headers: the paper's Table 5 clients are
#: "eight multithreaded clients" driving the servers the way period HTTP
#: benchmarks did, so the load generator sends realistic request weight
#: (the server parses all of it on every request).
BROWSER_HEADERS = {
    "Host": "bench.local",
    "User-Agent": "Mozilla/4.0 (compatible; WebStone; Table5 harness)",
    "Accept": "text/html, image/gif, image/jpeg, */*",
    "Accept-Language": "en",
    "Connection": "keep-alive",
}


class _XSink(Remote):
    """Remote interface for the Table 6 crossing-cost comparison."""

    def nop(self): ...
    def take(self, value): ...
    def take_region(self, region): ...


class _XSinkImpl(_XSink):
    def nop(self):
        return None

    def take(self, value):
        return 0

    def take_region(self, region):
        # A validated header read, no byte copy: the grant-model claim
        # is that the BYTES need not cross again, so the benchmark
        # measures grant + attach + validate, not a hidden memcpy.
        return len(region) if region.revoked is False else -1


def _xsink_setup():
    """Runs in the forked domain host: the out-of-process twin of the
    in-process Table 6 target."""
    domain = Domain("table6-xproc")
    cap = domain.run(lambda: Capability.create(_XSinkImpl(), label="xsink"))
    return {"sink": cap}


class Table6Fixture:
    """Crossing-cost comparison: in-process LRMI vs cross-process LRMI
    vs prefork HTTP throughput (the Table 6 claim, measured).

    The paper argues the J-Kernel's language-enforced crossings beat
    OS-process alternatives by orders of magnitude; this fixture
    measures that against our own out-of-process tier: the same
    capability call (null and 1000-byte payload) through the in-process
    compiled stub and through the cross-process marshalling proxy, plus
    the serving-layer consequence — pages/second of the prefork tier at
    1, 2 and 4 worker processes.
    """

    def __init__(self):
        self.domain = Domain(f"table6-{id(self)}")
        impl = _XSinkImpl()
        self.inproc_cap = self.domain.run(
            lambda: Capability.create(impl, label="sink")
        )
        from repro.ipc import DomainHostProcess, connect

        self.host = DomainHostProcess(_xsink_setup, name="table6").start()
        self.client = connect(self.host)
        self.xproc_cap = self.client.lookup("sink")
        # Warm both paths: stub bound-method cache, proxy connection,
        # the host's compiled dispatch bindings, and the bulk-payload
        # wire (frame buffers and, above the shm threshold, the ring
        # announcement handshake) — so the measured rounds see the
        # steady state, not first-call setup.
        warm_chunk = TypedChunk.of_size(1000)
        for _ in range(100):
            self.inproc_cap.nop()
            self.xproc_cap.nop()
        for _ in range(20):
            self.inproc_cap.take(warm_chunk)
            self.xproc_cap.take(warm_chunk)
        # Sealed-region leg: one 64KiB region sealed ONCE, granted per
        # call — steady state is a cached host-side attachment, so the
        # measured cost is the grant descriptor + header validation.
        from repro.core.regions import seal

        self._region_64k = seal(b"\xa5" * 65536)
        for _ in range(20):
            self.xproc_cap.take_region(self._region_64k)

    def close(self):
        self.client.close()
        self.host.stop()
        self.domain.terminate()
        self._region_64k.revoke()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- crossing costs ----------------------------------------------------
    def inproc_null_us(self, min_time=0.05):
        return measure(self.inproc_cap.nop, min_time=min_time).us_per_op

    def xproc_null_us(self, min_time=0.05):
        return measure(self.xproc_cap.nop, min_time=min_time).us_per_op

    def inproc_1000b_us(self, min_time=0.05):
        payload = TypedChunk.of_size(1000)
        return measure(
            lambda: self.inproc_cap.take(payload), min_time=min_time
        ).us_per_op

    def xproc_1000b_us(self, min_time=0.05):
        payload = TypedChunk.of_size(1000)
        return measure(
            lambda: self.xproc_cap.take(payload), min_time=min_time
        ).us_per_op

    def xproc_sealed_64k_us(self, min_time=0.05):
        """A 64KiB sealed region granted cross-process per call: the
        bytes cross zero times (one seal at fixture setup), only the
        generation-checked grant descriptor rides the wire."""
        region = self._region_64k
        return measure(
            lambda: self.xproc_cap.take_region(region), min_time=min_time
        ).us_per_op

    def inproc_fastcopy_64k_us(self, min_time=0.05):
        """In-process fast-copy cost for the same 64KiB of structured
        payload (the Table 4 machinery the grant model is gated
        against): a declared-field carrier deep-copied across the
        in-process boundary per call."""
        payload = TypedChunk.of_size(65536)
        return measure(
            lambda: self.inproc_cap.take(payload), min_time=min_time
        ).us_per_op

    # -- prefork serving ---------------------------------------------------
    @staticmethod
    def _prefork_app():
        """Runs in each prefork child: exactly the Table 5 J-Kernel
        configuration (same documents, same servlets), sized to one
        event loop per process — so the prefork numbers compare
        apples-to-apples against `http_pages_per_sec_jk_*`."""
        return build_iis_jkernel(workers=1)

    @staticmethod
    def prefork_pages_per_sec(workers, clients=4, requests_per_client=150,
                              reuse_port=None):
        """Pages/second of the J-Kernel servlet path served by a prefork
        fleet of ``workers`` processes."""
        from repro.web import PreforkServer, measure_throughput

        master = PreforkServer(Table6Fixture._prefork_app,
                               workers=workers, reuse_port=reuse_port)
        master.start()
        try:
            return measure_throughput(
                "127.0.0.1", master.port, "/servlet/doc100",
                clients, requests_per_client, warmup=8,
                headers=BROWSER_HEADERS,
            )
        finally:
            master.stop()

    def measure(self, prefork_workers=(1, 2, 4)):
        """The full Table 6 shape for the snapshot."""
        inproc_null = self.inproc_null_us()
        xproc_null = self.xproc_null_us()
        inproc_1000 = self.inproc_1000b_us()
        xproc_1000 = self.xproc_1000b_us()
        sealed_64k = self.xproc_sealed_64k_us()
        fastcopy_64k = self.inproc_fastcopy_64k_us()
        prefork = {
            workers: self.prefork_pages_per_sec(workers)
            for workers in prefork_workers
        }
        return {
            "inproc_null_us": inproc_null,
            "xproc_null_us": xproc_null,
            "inproc_1000b_us": inproc_1000,
            "xproc_1000b_us": xproc_1000,
            "xproc_sealed_64k_us": sealed_64k,
            "inproc_fastcopy_64k_us": fastcopy_64k,
            "prefork_pages_per_sec": prefork,
            "xproc_over_inproc_null": xproc_null / max(inproc_null, 1e-9),
            "xproc_over_inproc_1000b": xproc_1000 / max(inproc_1000, 1e-9),
            "sealed_64k_over_fastcopy": sealed_64k / max(fastcopy_64k, 1e-9),
        }


class Table5Fixture:
    """Socket-level Table 5 load harness.

    Builds the native server (documents + response cache), the J-Kernel
    configuration (same native server, per-servlet domains behind the
    LRMI fast path) and the interpreted JWS, then measures pages/second
    with concurrent keep-alive clients sending browser-shaped requests.

    Native and J-Kernel throughput are sampled in *interleaved pairs*
    and the reported shape ratio is the median of per-pair ratios: the
    two columns see the same machine mood seconds apart, so host-speed
    drift (CPU quota, syscall cost) cancels out of the ratio even when
    it moves the absolute numbers.
    """

    def __init__(self, clients=8, requests_per_client=120, jws_requests=25,
                 pairs=3, warmup=8):
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.jws_requests = jws_requests
        self.pairs = pairs
        self.warmup = warmup
        self.jk = build_iis_jkernel()
        self.native = self.jk.server  # one server, two request paths
        self.jws = build_jws()

    def start(self):
        self.native.start()
        self.jws.start()
        return self

    def close(self):
        self.jk.stop()
        self.jws.stop()

    def _sample(self, port, path, requests):
        from repro.web import measure_throughput

        return measure_throughput(
            "127.0.0.1", port, path, self.clients, requests,
            warmup=self.warmup, headers=BROWSER_HEADERS,
        )

    def measure(self):
        """Pages/second per page size and the derived shape ratios."""
        import statistics

        native = {}
        jkernel = {}
        jws = {}
        ratios = []
        for size in PAGE_SIZES:
            doc = f"/doc{size}"
            native_samples = []
            jk_samples = []
            for pair in range(self.pairs):
                # Alternate which column goes first so a monotone host
                # speed drift within a pair cannot bias the ratio.
                columns = [
                    (native_samples, doc),
                    (jk_samples, "/servlet" + doc),
                ]
                if pair % 2:
                    columns.reverse()
                for samples, path in columns:
                    samples.append(self._sample(
                        self.native.port, path, self.requests_per_client))
            native[size] = statistics.median(native_samples)
            jkernel[size] = statistics.median(jk_samples)
            ratios.extend(
                jk / max(n, 1e-9)
                for n, jk in zip(native_samples, jk_samples)
            )
            jws[size] = self._sample(self.jws.port, doc, self.jws_requests)
        jk_over_native = statistics.median(ratios)
        iis_over_jws = statistics.median(
            native[size] / max(jws[size], 1e-9) for size in PAGE_SIZES
        )
        return {
            "native": native,
            "jws": jws,
            "jkernel": jkernel,
            "jk_over_native": jk_over_native,
            "iis_over_jws": iis_over_jws,
        }
