"""Regenerate every table of the paper's evaluation.

Usage::

    python -m repro.bench.runner            # all tables
    python -m repro.bench.runner --table 4  # one table
    python -m repro.bench.runner --quick    # smaller batches

Each function returns ``(headers, rows)`` where rows interleave measured
values with the paper's reported numbers, and prints nothing itself —
printing happens in :func:`main` via ``repro.bench.table``.
"""

from __future__ import annotations

import argparse
import time

from . import paper
from .table import format_table
from .timer import measure
from .workloads import (
    Table1Fixture,
    Table3Fixture,
    Table4Fixture,
    build_iis,
    build_iis_jkernel,
    build_jws,
    PAGE_SIZES,
)


def table1(quick=False):
    """Null method invocation costs on both VM profiles."""
    batch = 600 if quick else 2000
    headers = ["operation", "msvm (µs)", "sunvm (µs)",
               "paper MS-VM", "paper Sun-VM"]
    measured = {}
    for profile in ("msvm", "sunvm"):
        fixture = Table1Fixture(profile)
        measured[profile] = fixture.row(batch=batch)
    rows = []
    for name, (paper_ms, paper_sun) in paper.TABLE1["rows"].items():
        rows.append([
            name,
            measured["msvm"][name],
            measured["sunvm"][name],
            paper_ms,
            paper_sun,
        ])
    return headers, rows


def table2(quick=False):
    """Local RPC costs: NT-RPC, COM out-of-proc, COM in-proc."""
    from repro.ipc import (
        IN_PROC,
        OUT_OF_PROC,
        ComInterface,
        ComRegistry,
        RpcClient,
        create_instance,
        null_server,
    )

    calls = 100 if quick else 300
    headers = ["mechanism", "measured (µs)", "paper (µs)"]

    with null_server() as server:
        with RpcClient(server.path) as client:
            client.call("null")  # warm up
            result = measure(lambda: client.call("null"),
                             number=calls, rounds=3)
            ntrpc_us = result.us_per_op

    registry = ComRegistry()
    iface = ComInterface("INull", ["null_op"])

    class NullComponent:
        def null_op(self):
            return 0

    registry.register_class("CLSID_Null", NullComponent, iface)

    in_proc = create_instance(registry, "CLSID_Null", IN_PROC)
    bound = in_proc.method("null_op")
    in_us = measure(bound).us_per_op

    out_proc = create_instance(registry, "CLSID_Null", OUT_OF_PROC)
    bound_out = out_proc.method("null_op")
    bound_out()  # warm up
    out_us = measure(bound_out, number=calls, rounds=3).us_per_op
    out_proc._com_host.stop()

    rows = [
        ["NT-RPC", ntrpc_us, paper.TABLE2["rows"]["NT-RPC"]],
        ["COM out-of-proc", out_us, paper.TABLE2["rows"]["COM out-of-proc"]],
        ["COM in-proc", in_us, paper.TABLE2["rows"]["COM in-proc"]],
    ]
    return headers, rows


def table3(quick=False):
    """Double thread switch: host threads vs VM threads per profile."""
    switches = 400 if quick else 2000
    headers = ["system", "measured (µs)", "paper (µs)"]
    host_us = Table3Fixture.host_double_switch_us(switches)
    msvm_us = Table3Fixture("msvm").vm_double_switch_us(switches)
    sunvm_us = Table3Fixture("sunvm").vm_double_switch_us(switches)
    rows = [
        ["NT-base (host threads)", host_us, paper.TABLE3["rows"]["NT-base"]],
        ["MS-VM (green threads)", msvm_us, paper.TABLE3["rows"]["MS-VM"]],
        ["Sun-VM (green threads)", sunvm_us, paper.TABLE3["rows"]["Sun-VM"]],
    ]
    return headers, rows


def table4(quick=False):
    """Argument copying: serialization vs fast-copy per payload shape."""
    headers = ["shape", "serialization (µs)", "fast-copy (µs)",
               "paper ser (MS)", "paper fast (MS)"]
    fixture = Table4Fixture()
    rows = []
    for shape, reference in paper.TABLE4["rows"].items():
        serial_us = fixture.copy_us(shape, "serial",
                                    min_time=0.01 if quick else 0.05)
        fast_us = fixture.copy_us(shape, "fast",
                                  min_time=0.01 if quick else 0.05)
        rows.append([shape, serial_us, fast_us, reference[0], reference[1]])
    return headers, rows


def table5(quick=False):
    """HTTP throughput for IIS / JWS / IIS+J-Kernel at three page sizes."""
    from repro.web import measure_throughput

    clients = 4 if quick else 8
    requests = 25 if quick else 60
    jws_requests = max(requests // 3, 10)
    headers = ["page size", "IIS (pages/s)", "JWS (pages/s)",
               "IIS+J-K (pages/s)", "paper IIS", "paper JWS", "paper IIS+J-K"]

    iis = build_iis().start()
    jk = build_iis_jkernel().start()
    jws = build_jws().start()
    time.sleep(0.05)
    rows = []
    try:
        for size in PAGE_SIZES:
            path = f"/doc{size}"
            iis_tput = measure_throughput(
                "127.0.0.1", iis.port, path, clients, requests
            )
            jws_tput = measure_throughput(
                "127.0.0.1", jws.port, path, clients, jws_requests
            )
            jk_tput = measure_throughput(
                "127.0.0.1", jk.server.port, "/servlet" + path, clients,
                requests,
            )
            reference = paper.TABLE5["rows"][f"{size} bytes"]
            rows.append([
                f"{size} bytes", iis_tput, jws_tput, jk_tput,
                float(reference[0]), float(reference[1]), float(reference[2]),
            ])
    finally:
        iis.stop()
        jk.stop()
        jws.stop()
    return headers, rows


def table6(quick=False):
    """Kernel comparison: measured 3-arg LRMI vs reported microkernel IPC."""
    headers = ["system", "operation", "platform", "time (µs)"]
    fixture = Table1Fixture("msvm")
    lrmi3 = fixture.lrmi3_us(batch=200 if quick else 500)
    rows = []
    for name, entry in paper.TABLE6["rows"].items():
        if name == "J-Kernel":
            rows.append([
                "J-Kernel (this repro)", entry["operation"],
                "measured here", lrmi3,
            ])
            rows.append([
                "J-Kernel (paper)", entry["operation"], entry["platform"],
                entry["time_us"],
            ])
        else:
            rows.append([
                f"{name} (paper)", entry["operation"], entry["platform"],
                entry["time_us"],
            ])
    return headers, rows


TABLES = {
    1: ("Table 1: cost of null method invocations", table1),
    2: ("Table 2: local RPC costs", table2),
    3: ("Table 3: double thread switch", table3),
    4: ("Table 4: argument copying", table4),
    5: ("Table 5: HTTP server throughput", table5),
    6: ("Table 6: comparison with selected kernels", table6),
}


def run_table(number, quick=False):
    title, builder = TABLES[number]
    headers, rows = builder(quick=quick)
    return format_table(title, headers, rows)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation tables."
    )
    parser.add_argument("--table", type=int, choices=sorted(TABLES),
                        help="only this table")
    parser.add_argument("--quick", action="store_true",
                        help="smaller batches (CI-friendly)")
    options = parser.parse_args(argv)
    numbers = [options.table] if options.table else sorted(TABLES)
    for number in numbers:
        print(run_table(number, quick=options.quick))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
