"""Measurement harness: timers, the paper's reported numbers, workload
fixtures and the table runner (``python -m repro.bench.runner``)."""

from . import paper
from .table import format_table
from .timer import BenchResult, measure, measure_batch
from .workloads import (
    BROWSER_HEADERS,
    Chunk,
    Table1Fixture,
    Table3Fixture,
    Table4Fixture,
    Table5Fixture,
    Table6Fixture,
    TypedChunk,
    build_iis,
    build_iis_jkernel,
    build_jws,
    make_documents,
    PAGE_SIZES,
)

__all__ = [
    "BROWSER_HEADERS",
    "BenchResult",
    "Chunk",
    "PAGE_SIZES",
    "Table1Fixture",
    "Table3Fixture",
    "Table4Fixture",
    "Table5Fixture",
    "Table6Fixture",
    "TypedChunk",
    "build_iis",
    "build_iis_jkernel",
    "build_jws",
    "format_table",
    "make_documents",
    "measure",
    "measure_batch",
    "paper",
]
