"""The paper's reported numbers, as data.

Source: Hawblitzel et al., "Implementing Multiple Protection Domains in
Java", USENIX 1998 (draft 12/23/97).  Hardware: 200 MHz Pentium Pro,
Windows NT 4.0; MS-VM = Microsoft VM, Sun-VM = Sun VM + Symantec JIT.

Absolute numbers are not reproducible on modern hardware with a Python
substrate; EXPERIMENTS.md compares *shapes* (ratios, orderings,
crossovers) against these reference values.
"""

# Table 1: cost of null method invocations (µs).
TABLE1 = {
    "title": "Cost of null method invocations (µs)",
    "columns": ("MS-VM", "Sun-VM"),
    "rows": {
        "Regular method invocation": (0.04, 0.03),
        "Interface method invocation": (0.54, 0.05),
        "Thread info lookup": (0.55, 0.29),
        "Acquire/release lock": (0.20, 1.91),
        "J-Kernel LRMI": (2.22, 5.41),
    },
}

# Table 2: local RPC costs using standard NT mechanisms (µs).
TABLE2 = {
    "title": "Local RPC costs using standard NT mechanisms (µs)",
    "rows": {
        "NT-RPC": 109.0,
        "COM out-of-proc": 99.0,
        "COM in-proc": 0.03,
    },
}

# Table 3: cost of a double thread switch (µs).
TABLE3 = {
    "title": "Cost of a double thread switch using regular threads (µs)",
    "rows": {
        "NT-base": 8.6,
        "MS-VM": 9.8,
        "Sun-VM": 10.2,
    },
}

# Table 4: cost of argument copying (µs); rows are payload shapes,
# values are (MS serialization, MS fast-copy, Sun serialization,
# Sun fast-copy).
TABLE4 = {
    "title": "Cost of argument copying (µs)",
    "columns": (
        "MS serialization", "MS fast-copy",
        "Sun serialization", "Sun fast-copy",
    ),
    "rows": {
        "1 x 10 bytes": (104.0, 4.8, 331.0, 13.7),
        "1 x 100 bytes": (158.0, 7.7, 509.0, 18.5),
        "10 x 10 bytes": (193.0, 23.3, 521.0, 79.3),
        "1 x 1000 bytes": (633.0, 19.2, 2105.0, 66.7),
    },
}

# Table 5: HTTP server throughput (pages/second).
TABLE5 = {
    "title": "HTTP server throughput (pages/second)",
    "columns": ("IIS", "JWS", "IIS+J-Kernel"),
    "rows": {
        "10 bytes": (801, 122, 662),
        "100 bytes": (790, 121, 640),
        "1000 bytes": (759, 96, 616),
    },
}

# Table 6: comparison with selected kernels (µs).
TABLE6 = {
    "title": "Comparison with selected kernels (µs)",
    "rows": {
        "L4": {
            "operation": "Round-trip IPC", "platform": "P5-133",
            "time_us": 1.82,
        },
        "Exokernel": {
            "operation": "Protected control transfer (r/t)",
            "platform": "DEC-5000", "time_us": 2.40,
        },
        "Eros": {
            "operation": "Round-trip IPC", "platform": "P5-120",
            "time_us": 4.90,
        },
        "J-Kernel": {
            "operation": "Method invocation with 3 args",
            "platform": "P5-133", "time_us": 3.77,
        },
    },
}

# Derived reference shapes checked in EXPERIMENTS.md.
SHAPES = {
    # LRMI is 50x-100x a regular invocation ("The J-Kernel null LRMI takes
    # 50x to 100x longer than a regular method invocation").
    "lrmi_vs_regular": (50, 100),
    # Interface dispatch is ~10x pricier on MS-VM, near parity on Sun-VM.
    "iface_ratio_msvm": 0.54 / 0.04,
    "iface_ratio_sunvm": 0.05 / 0.03,
    # Locks dominate on Sun-VM (1.91 vs 0.20).
    "lock_ratio_sun_over_ms": 1.91 / 0.20,
    # Out-of-proc RPC is >1000x in-proc COM.
    "outproc_vs_inproc_min": 1000,
    # Fast copy is >10x faster than serialization for large arguments.
    "fastcopy_speedup_1000B_min": 10,
    # J-Kernel costs IIS about 20% of its throughput.
    "jk_over_iis": 662 / 801,
    # JWS is several-fold slower than IIS (no JIT).
    "iis_over_jws_min": 5,
}
