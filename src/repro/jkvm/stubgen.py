"""LRMI stub bytecode generation (paper §3.1).

For each target class the kernel generates a stub class whose methods are
real MiniJVM bytecode performing the cross-domain calling convention:

1. revocation check (``target`` field null → throw ``jk/RevokedException``),
2. segment switch (``jk/Kernel.enterSegment`` — thread-info lookup plus the
   two lock pairs, through the VM profile's monitor implementation),
3. per-argument copy for mutable reference arguments
   (``jk/Kernel.copyValue``); primitives and provably-immutable ``String``
   arguments pass directly,
4. ``INVOKEVIRTUAL`` on the target,
5. result copy (reference results),
6. segment restore (``jk/Kernel.exitSegment``) — guaranteed by an
   exception handler wrapping the call, so a callee throw still restores
   the caller's segment before propagating.

The generated classfile goes through the same structural check and
bytecode verifier as user code: the kernel trusts nothing it generates.
"""

from __future__ import annotations

from repro.jvm.asm import ClassAssembler
from repro.jvm.classfile import ACC_PRIVATE, ACC_PUBLIC, CONSTRUCTOR_NAME
from repro.jvm.errors import VMError
from repro.jvm.instructions import (
    ALOAD,
    ARETURN,
    ATHROW,
    CHECKCAST,
    DLOAD,
    DRETURN,
    DUP,
    GETFIELD,
    ILOAD,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    IFNONNULL,
    IRETURN,
    NEW,
    POP,
    PUTFIELD,
    RETURN,
)
from repro.jvm.values import (
    is_reference_descriptor,
    parse_method_descriptor,
)

CAPABILITY = "jk/Capability"
KERNEL = "jk/Kernel"
REMOTE = "jk/Remote"
REVOKED = "jk/RevokedException"

TARGET_FIELD = "target"
DOMAIN_FIELD = "domainHandle"

#: Reference descriptors whose values are provably immutable, so the stub
#: may pass them across domains by reference without a ``copyValue`` call.
#: Sound because the loader rejects subclasses of final classes: a slot
#: verified as ``String`` can only ever hold exactly a ``java/lang/String``
#: (or null), and those are immutable by construction.  The copy native
#: would share them anyway; skipping it removes a native round-trip per
#: argument.
_IMMUTABLE_REF_DESCS = frozenset(("Ljava/lang/String;",))


def remote_interfaces_of(rtclass, remote_class):
    """All interfaces of ``rtclass`` that extend ``jk/Remote``."""
    found = []
    for iface in rtclass.all_interfaces:
        if iface is remote_class:
            continue
        if remote_class in iface.all_interfaces:
            found.append(iface)
    return sorted(found, key=lambda iface: iface.name)


def remote_method_table(interfaces):
    """Union of method signatures declared across the remote interfaces."""
    table = {}
    for iface in interfaces:
        for key, method in iface.declared.items():
            table.setdefault(key, method)
        for parent in iface.all_interfaces:
            for key, method in parent.declared.items():
                table.setdefault(key, method)
    return table


def stub_name_for(target_class):
    return "jk/stubs/" + target_class.name.replace("/", "_") + "$Stub"


def generate_stub_classfile(target_class, remote_class):
    """Build the stub classfile for one target class."""
    interfaces = remote_interfaces_of(target_class, remote_class)
    if not interfaces:
        raise VMError(
            f"{target_class.name} implements no interface extending {REMOTE}"
        )
    methods = remote_method_table(interfaces)
    if not methods:
        raise VMError(
            f"{target_class.name}'s remote interfaces declare no methods"
        )

    ca = ClassAssembler(
        stub_name_for(target_class),
        super_name=CAPABILITY,
        interfaces=tuple(iface.name for iface in interfaces),
        source=f"<stub for {target_class.name}>",
    )
    ca.field(TARGET_FIELD, "Ljava/lang/Object;", ACC_PRIVATE)
    ca.field(DOMAIN_FIELD, "Ljava/lang/Object;", ACC_PRIVATE)

    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, CAPABILITY, CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)

    for (name, desc), _declaration in sorted(methods.items()):
        _emit_stub_method(ca, target_class, name, desc)
    return ca.build()


def _emit_stub_method(ca, target_class, name, desc):
    args, ret = parse_method_descriptor(desc)
    stub_name = stub_name_for(target_class)
    m = ca.method(name, desc, ACC_PUBLIC)

    # 1. revocation check
    m.emit(ALOAD, 0)
    m.emit(GETFIELD, stub_name, TARGET_FIELD)
    m.emit(DUP)
    live = m.label("live")
    m.emit(IFNONNULL, live)
    m.emit(POP)
    m.emit(NEW, REVOKED)
    m.emit(DUP)
    m.emit(INVOKESPECIAL, REVOKED, CONSTRUCTOR_NAME, "()V")
    m.emit(ATHROW)
    m.mark(live)
    m.emit(CHECKCAST, target_class.name)  # stack: [target:T]

    # 2. segment switch (checks domain termination too)
    m.emit(ALOAD, 0)
    m.emit(GETFIELD, stub_name, DOMAIN_FIELD)
    m.emit(INVOKESTATIC, KERNEL, "enterSegment", "(Ljava/lang/Object;)V")

    protected_start = m.here()

    # 3. arguments: copy mutable references; pass primitives and provably
    #    immutable references (String) directly
    slot = 1
    for arg_desc in args:
        if arg_desc in _IMMUTABLE_REF_DESCS:
            m.emit(ALOAD, slot)
        elif is_reference_descriptor(arg_desc):
            m.emit(ALOAD, slot)
            m.emit(INVOKESTATIC, KERNEL, "copyValue",
                   "(Ljava/lang/Object;)Ljava/lang/Object;")
            m.emit(CHECKCAST, _cast_operand(arg_desc))
        elif arg_desc == "D":
            m.emit(DLOAD, slot)
        else:
            m.emit(ILOAD, slot)
        slot += 1

    # 4. the call
    m.emit(INVOKEVIRTUAL, target_class.name, name, desc)

    # 5. result copy (immutable reference results pass as-is)
    if is_reference_descriptor(ret) and ret not in _IMMUTABLE_REF_DESCS:
        m.emit(INVOKESTATIC, KERNEL, "copyValue",
               "(Ljava/lang/Object;)Ljava/lang/Object;")
        m.emit(CHECKCAST, _cast_operand(ret))

    protected_end = m.here()

    # 6. segment restore + return
    m.emit(INVOKESTATIC, KERNEL, "exitSegment", "()V")
    if ret == "V":
        m.emit(RETURN)
    elif ret == "D":
        m.emit(DRETURN)
    elif is_reference_descriptor(ret):
        m.emit(ARETURN)
    else:
        m.emit(IRETURN)

    # exception path: restore the segment, rethrow
    handler = m.here()
    m.emit(INVOKESTATIC, KERNEL, "exitSegment", "()V")
    m.emit(ATHROW)
    m.handler(protected_start, protected_end, handler, None)


def _cast_operand(desc):
    """CHECKCAST operand for a reference descriptor."""
    if desc.startswith("["):
        return desc
    return desc[1:-1]
