"""VM-level argument copying for cross-domain calls.

The ``jk/Kernel.copyValue`` native: deep-copies a guest object graph into
the callee domain, applying the LRMI calling convention — capabilities
(instances of ``jk/Capability``) pass by reference, strings are immutable
and pass as-is, everything else is copied field by field.  New objects are
charged to the current thread's domain tag, so copies land on the
receiving domain's heap account.
"""

from __future__ import annotations

from repro.jvm.interp import GuestUnwind
from repro.jvm.values import JArray, JObject

ILLEGAL_ARGUMENT = "java/lang/IllegalArgumentException"


def copy_value(vm, jkernel, thread, value, memo=None):
    """Deep copy one guest value per the calling convention."""
    if value is None or isinstance(value, (int, float)):
        return value
    if memo is None:
        memo = {}
    return _copy(vm, jkernel, thread, value, memo)


def _copy(vm, jkernel, thread, value, memo):
    hit = memo.get(id(value))
    if hit is not None:
        return hit
    owner = thread.domain_tag
    if isinstance(value, JArray):
        copy = vm.heap.new_array(value.jclass, len(value.elems), owner=owner)
        memo[id(value)] = copy
        if value.jclass.element_class is None:
            copy.elems[:] = value.elems
        else:
            copy.elems[:] = [
                None if elem is None else _copy(vm, jkernel, thread, elem, memo)
                for elem in value.elems
            ]
        return copy
    if isinstance(value, JObject):
        if value.jclass is vm.string_class:
            return value  # immutable: sharing is unobservable
        if value.jclass.is_assignable_to(jkernel.capability_class):
            return value  # capabilities pass by reference
        if value.native is not None:
            raise GuestUnwind(
                vm.make_throwable(
                    ILLEGAL_ARGUMENT,
                    f"native-backed {value.jclass.name} cannot cross domains",
                    owner=owner,
                )
            )
        copy = vm.heap.new_object(value.jclass, owner=owner)
        memo[id(value)] = copy
        copy.fields[:] = [
            field if field is None or isinstance(field, (int, float))
            else _copy(vm, jkernel, thread, field, memo)
            for field in value.fields
        ]
        return copy
    raise GuestUnwind(
        vm.make_throwable(
            ILLEGAL_ARGUMENT, f"uncopyable host value {type(value).__name__}",
            owner=owner,
        )
    )
