"""VM-level argument copying for cross-domain calls.

The ``jk/Kernel.copyValue`` native: deep-copies a guest object graph into
the callee domain, applying the LRMI calling convention — capabilities
(instances of ``jk/Capability``) pass by reference, strings are immutable
and pass as-is, everything else is copied field by field.  New objects are
charged to the current thread's domain tag, so copies land on the
receiving domain's heap account.

The copier is type-dispatched (exact ``JObject``/``JArray`` checks, no
isinstance chains) and caches a *copy plan* on each :class:`RuntimeClass`
the first time one of its instances crosses: strings and capability
classes resolve to "share", other classes to the tuple of their
reference-typed field slots.  Primitive-typed slots can never hold
references, so a copy is one bulk ``fields[:]`` move plus per-slot
recursion only over the cached reference slots.  The back-reference memo
dict is allocated lazily — a leaf object (no reference slots) or a
primitive array costs no hash-table work at all; the memo appears only
once the graph recurses, which is when a second reference first becomes
possible.
"""

from __future__ import annotations

from repro.jvm.interp import GuestUnwind
from repro.jvm.values import JArray, JObject, is_reference_descriptor

ILLEGAL_ARGUMENT = "java/lang/IllegalArgumentException"

#: copy_plan kinds cached on RuntimeClass.
_SHARE = "share"
_COPY = "copy"


def _object_plan(vm, jkernel, jclass):
    """Compute and cache the copy plan for one guest class."""
    if jclass is vm.string_class:
        plan = (_SHARE, None)  # immutable: sharing is unobservable
    elif jclass.is_assignable_to(jkernel.capability_class):
        plan = (_SHARE, None)  # capabilities pass by reference
    else:
        plan = (_COPY, tuple(
            index
            for index, field_def in enumerate(jclass.instance_field_defs)
            if is_reference_descriptor(field_def.desc)
        ))
    jclass.copy_plan = plan
    return plan


def copy_value(vm, jkernel, thread, value, memo=None):
    """Deep copy one guest value per the calling convention."""
    value_type = type(value)
    if value is None or value_type is int or value_type is float:
        return value
    return _copy_ref(vm, jkernel, thread, value, memo)


def _copy_ref(vm, jkernel, thread, value, memo):
    """Recurse into one non-null reference slot/element."""
    if type(value) is JObject:
        return _copy_object(vm, jkernel, thread, value, memo)
    if type(value) is JArray:
        return _copy_array(vm, jkernel, thread, value, memo)
    raise GuestUnwind(
        vm.make_throwable(
            ILLEGAL_ARGUMENT,
            f"uncopyable host value {type(value).__name__}",
            owner=thread.domain_tag,
        )
    )


def _copy_object(vm, jkernel, thread, value, memo):
    jclass = value.jclass
    plan = jclass.copy_plan
    if plan is None:
        plan = _object_plan(vm, jkernel, jclass)
    kind, ref_slots = plan
    if kind is _SHARE:
        return value
    if value.native is not None:
        raise GuestUnwind(
            vm.make_throwable(
                ILLEGAL_ARGUMENT,
                f"native-backed {jclass.name} cannot cross domains",
                owner=thread.domain_tag,
            )
        )
    if memo is not None:
        hit = memo.get(id(value))
        if hit is not None:
            return hit
    copy = vm.heap.new_object(jclass, owner=thread.domain_tag)
    fields = value.fields
    copy.fields[:] = fields  # primitives move in bulk; refs fixed up below
    if ref_slots:
        if memo is None:
            memo = {}
        memo[id(value)] = copy
        copy_fields = copy.fields
        for index in ref_slots:
            field = fields[index]
            if field is not None:
                copy_fields[index] = _copy_ref(
                    vm, jkernel, thread, field, memo
                )
    elif memo is not None:
        memo[id(value)] = copy
    return copy


def _copy_array(vm, jkernel, thread, value, memo):
    if memo is not None:
        hit = memo.get(id(value))
        if hit is not None:
            return hit
    jclass = value.jclass
    elems = value.elems
    copy = vm.heap.new_array(jclass, len(elems), owner=thread.domain_tag)
    if jclass.element_class is None:
        copy.elems[:] = elems  # primitive elements: one bulk move
        if memo is not None:
            memo[id(value)] = copy
        return copy
    if memo is None:
        memo = {}
    memo[id(value)] = copy
    copy.elems[:] = [
        None if elem is None
        else _copy_ref(vm, jkernel, thread, elem, memo)
        for elem in elems
    ]
    return copy
