"""J-Kernel on the MiniJVM (the enforced path).

See ``repro.core`` for the hosted implementation of the same architecture;
this package runs the protection machinery on verified bytecode with
per-domain class loaders, and is the substrate for the Table 1 LRMI
measurements.
"""

from .kernel import JKernelVM, VMDomain
from .stubgen import (
    CAPABILITY,
    KERNEL,
    REMOTE,
    REVOKED,
    generate_stub_classfile,
    remote_interfaces_of,
    stub_name_for,
)

__all__ = [
    "CAPABILITY",
    "JKernelVM",
    "KERNEL",
    "REMOTE",
    "REVOKED",
    "VMDomain",
    "generate_stub_classfile",
    "remote_interfaces_of",
    "stub_name_for",
]
