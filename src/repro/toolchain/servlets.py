"""The CS314 course servlets (paper §4).

"The course staff wrote compiler, assembler, and linker components in
Java, which students used for course homeworks and projects … implemented
the components as servlets running in an extensible web server."

Each component is a servlet suitable for one J-Kernel domain.  They
communicate in portable form (text and plain dicts), so requests and
results cross domains under the LRMI calling convention.  A crash or
replacement of one component does not disturb the others: exactly the
failure-isolation story that motivated the J-Kernel.
"""

from __future__ import annotations

from repro.jvm import VM, MapResolver
from repro.jvm.classfile import ClassFile, ExceptionHandler, FieldDef, MethodDef
from repro.web.servlet import Servlet, ServletResponse, error_response

from .asmtext import AsmError, assemble_many
from .codegen import JrCompileError, compile_source
from .lexer import JrSyntaxError
from .linker import LinkError, Linker


# -- portable classfile form (crosses domains as plain data) -----------------

def classfile_to_portable(cf):
    return {
        "name": cf.name,
        "super_name": cf.super_name,
        "interfaces": list(cf.interfaces),
        "flags": cf.flags,
        "fields": [[f.name, f.desc, f.flags] for f in cf.fields],
        "methods": [
            {
                "name": m.name,
                "desc": m.desc,
                "flags": m.flags,
                "max_stack": m.max_stack,
                "max_locals": m.max_locals,
                "code": [list(instr) for instr in m.code],
                "handlers": [
                    [h.start_pc, h.end_pc, h.handler_pc, h.catch_type]
                    for h in m.handlers
                ],
            }
            for m in cf.methods
        ],
    }


def portable_to_classfile(data):
    return ClassFile(
        name=data["name"],
        super_name=data["super_name"],
        interfaces=tuple(data["interfaces"]),
        flags=data["flags"],
        fields=tuple(FieldDef(*f) for f in data["fields"]),
        methods=tuple(
            MethodDef(
                name=m["name"],
                desc=m["desc"],
                flags=m["flags"],
                max_stack=m["max_stack"],
                max_locals=m["max_locals"],
                code=tuple(tuple(instr) for instr in m["code"]),
                handlers=tuple(
                    ExceptionHandler(*h) for h in m["handlers"]
                ),
            )
            for m in data["methods"]
        ),
        source="<linked>",
    )


# -- the components, as plain services --------------------------------------

class JrCompiler:
    """Jr source -> assembly text."""

    def compile(self, source, module="main"):
        return compile_source(source, module=module)


class JrAssembler:
    """Assembly text -> portable classfiles."""

    def assemble(self, asm_text):
        return [classfile_to_portable(cf) for cf in assemble_many(asm_text)]


class JrLinker:
    """Portable classfiles -> link-checked portable image."""

    def link(self, portable_classfiles):
        classfiles = [portable_to_classfile(d) for d in portable_classfiles]
        image = Linker().link(classfiles)
        return {
            "classes": [classfile_to_portable(cf) for cf in image.classfiles],
            "entry_points": dict(image.entry_points),
        }


class JrRunner:
    """Load a linked image into a fresh MiniJVM and run ``module.main``."""

    def run(self, linked_image, entry_class, args=(), profile="sunvm",
            max_steps=5_000_000):
        vm = VM(profile=profile)
        classfiles = [
            portable_to_classfile(d) for d in linked_image["classes"]
        ]
        loader = vm.new_loader(
            "jr-program",
            resolver=MapResolver({cf.name: cf for cf in classfiles}),
        )
        for cf in classfiles:
            loader.load(cf.name)
        entry = linked_image["entry_points"].get(entry_class)
        if entry is None:
            raise LinkError([f"{entry_class}.main"])
        result = vm.call_static(
            loader.load(entry_class), entry[0], entry[1], list(args),
            max_steps=max_steps,
        )
        printed = [text for _, text in vm.output]
        return {"result": result, "output": printed}


# -- servlet wrappers (one J-Kernel domain each) ------------------------------

class CompilerServlet(Servlet):
    """POST Jr source, receive assembly text."""

    def __init__(self):
        self._compiler = JrCompiler()

    def service(self, request):
        module = request.headers.get("x-module", "main")
        try:
            asm_text = self._compiler.compile(
                request.body.decode("utf-8"), module=module
            )
        except (JrSyntaxError, JrCompileError) as exc:
            return error_response(400, f"compile error: {exc}")
        return ServletResponse(200, {"Content-Type": "text/x-asm"},
                               asm_text.encode("utf-8"))


class AssemblerServlet(Servlet):
    """POST assembly text, receive a portable classfile report."""

    def __init__(self):
        self._assembler = JrAssembler()

    def service(self, request):
        try:
            portables = self._assembler.assemble(
                request.body.decode("utf-8")
            )
        except Exception as exc:  # AsmError, ClassFormatError
            return error_response(400, f"assemble error: {exc}")
        names = ",".join(d["name"] for d in portables)
        return ServletResponse(
            200, {"Content-Type": "text/plain", "X-Classes": names},
            repr(portables).encode("utf-8"),
        )


class PipelineServlet(Servlet):
    """One-shot: POST Jr source, runs compile->assemble->link->execute."""

    def __init__(self, profile="sunvm"):
        self._compiler = JrCompiler()
        self._assembler = JrAssembler()
        self._linker = JrLinker()
        self._runner = JrRunner()
        self._profile = profile

    def service(self, request):
        module = request.headers.get("x-module", "main")
        try:
            asm_text = self._compiler.compile(
                request.body.decode("utf-8"), module=module
            )
            portables = self._assembler.assemble(asm_text)
            image = self._linker.link(portables)
            outcome = self._runner.run(
                image, f"jr/{module}", profile=self._profile
            )
        except (JrSyntaxError, JrCompileError, AsmError, LinkError) as exc:
            return error_response(400, f"{type(exc).__name__}: {exc}")
        body = "\n".join(
            [*outcome["output"], f"=> {outcome['result']}"]
        )
        return ServletResponse(200, {"Content-Type": "text/plain"},
                               body.encode("utf-8"))
