"""Jr AST -> MiniJVM assembly text.

Each Jr module compiles to one class ``jr/<module>``; every function
becomes a public static method ``(I...I)I``.  ``print`` lowers to
``System.printInt``; cross-module calls lower to ``invokestatic`` on the
target module class (resolved by the linker).
"""

from __future__ import annotations

from . import astnodes as ast
from .lexer import JrSyntaxError


class JrCompileError(Exception):
    def __init__(self, message, line=0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


def module_class(module):
    return f"jr/{module}"


class _FunctionCompiler:
    def __init__(self, program, function):
        self.program = program
        self.function = function
        self.lines = []
        self.locals = {name: index for index, name in
                       enumerate(function.params)}
        self.next_label = 0
        self.known = {f.name: len(f.params) for f in program.functions}

    def emit(self, *parts):
        self.lines.append("    " + " ".join(str(p) for p in parts))

    def label(self):
        name = f"L{self.next_label}"
        self.next_label += 1
        return name

    def mark(self, name):
        self.lines.append(f"{name}:")

    def slot(self, name, line, declare=False):
        if declare:
            if name in self.locals:
                raise JrCompileError(f"variable {name!r} already declared",
                                     line)
            self.locals[name] = len(self.locals)
        index = self.locals.get(name)
        if index is None:
            raise JrCompileError(f"undeclared variable {name!r}", line)
        return index

    # -- statements ------------------------------------------------------
    def compile_body(self, body):
        for statement in body:
            self.statement(statement)

    def statement(self, node):
        if isinstance(node, ast.VarDecl):
            self.expression(node.value)
            self.emit("istore", self.slot(node.name, node.line,
                                          declare=True))
        elif isinstance(node, ast.Assign):
            self.expression(node.value)
            self.emit("istore", self.slot(node.name, node.line))
        elif isinstance(node, ast.If):
            else_label = self.label()
            end_label = self.label()
            self.expression(node.condition)
            self.emit("ifeq", else_label)
            self.compile_body(node.then_body)
            self.emit("goto", end_label)
            self.mark(else_label)
            self.compile_body(node.else_body)
            self.mark(end_label)
        elif isinstance(node, ast.While):
            top = self.label()
            end = self.label()
            self.mark(top)
            self.expression(node.condition)
            self.emit("ifeq", end)
            self.compile_body(node.body)
            self.emit("goto", top)
            self.mark(end)
        elif isinstance(node, ast.Return):
            if node.value is None:
                self.emit("iconst", 0)
            else:
                self.expression(node.value)
            self.emit("ireturn")
        elif isinstance(node, ast.Print):
            self.expression(node.value)
            self.emit("invokestatic", "java/lang/System", "printInt", "(I)V")
        elif isinstance(node, ast.ExprStmt):
            self.expression(node.value)
            self.emit("pop")
        else:  # pragma: no cover
            raise JrCompileError(f"unknown statement {node!r}")

    # -- expressions -----------------------------------------------------------
    _COMPARE = {
        "==": "if_icmpeq", "!=": "if_icmpne", "<": "if_icmplt",
        "<=": "if_icmple", ">": "if_icmpgt", ">=": "if_icmpge",
    }
    _ARITH = {"+": "iadd", "-": "isub", "*": "imul", "/": "idiv",
              "%": "irem"}

    def expression(self, node):
        if isinstance(node, ast.IntLiteral):
            self.emit("iconst", node.value)
        elif isinstance(node, ast.Name):
            self.emit("iload", self.slot(node.name, node.line))
        elif isinstance(node, ast.Unary):
            self.expression(node.operand)
            if node.op == "-":
                self.emit("ineg")
            else:  # '!' : 0 -> 1, nonzero -> 0
                true_label = self.label()
                end = self.label()
                self.emit("ifeq", true_label)
                self.emit("iconst", 0)
                self.emit("goto", end)
                self.mark(true_label)
                self.emit("iconst", 1)
                self.mark(end)
        elif isinstance(node, ast.Binary):
            self.binary(node)
        elif isinstance(node, ast.Call):
            self.call(node)
        else:  # pragma: no cover
            raise JrCompileError(f"unknown expression {node!r}")

    def binary(self, node):
        if node.op in self._ARITH:
            self.expression(node.left)
            self.expression(node.right)
            self.emit(self._ARITH[node.op])
            return
        if node.op in self._COMPARE:
            true_label = self.label()
            end = self.label()
            self.expression(node.left)
            self.expression(node.right)
            self.emit(self._COMPARE[node.op], true_label)
            self.emit("iconst", 0)
            self.emit("goto", end)
            self.mark(true_label)
            self.emit("iconst", 1)
            self.mark(end)
            return
        if node.op in ("&&", "||"):
            # short-circuit: a && b, a || b, producing 0/1
            end = self.label()
            short = self.label()
            self.expression(node.left)
            if node.op == "&&":
                self.emit("ifeq", short)  # left false -> 0
            else:
                self.emit("ifne", short)  # left true -> 1
            self.expression(node.right)
            other = self.label()
            self.emit("ifeq", other)
            self.emit("iconst", 1)
            self.emit("goto", end)
            self.mark(other)
            self.emit("iconst", 0)
            self.emit("goto", end)
            self.mark(short)
            self.emit("iconst", 0 if node.op == "&&" else 1)
            self.mark(end)
            return
        raise JrCompileError(f"unknown operator {node.op!r}", node.line)

    def call(self, node):
        if node.module is None:
            arity = self.known.get(node.name)
            if arity is None:
                raise JrCompileError(f"unknown function {node.name!r}",
                                     node.line)
            if arity != len(node.args):
                raise JrCompileError(
                    f"{node.name} expects {arity} args, got "
                    f"{len(node.args)}", node.line,
                )
            target = module_class(self.program.module)
        else:
            target = module_class(node.module)
        for arg in node.args:
            self.expression(arg)
        descriptor = "(" + "I" * len(node.args) + ")I"
        self.emit("invokestatic", target, node.name, descriptor)

    def compile(self):
        header = (
            f".method {self.function.name} "
            f"({'I' * len(self.function.params)})I static"
        )
        self.compile_body(self.function.body)
        # implicit `return 0` for functions that fall off the end
        self.emit("iconst", 0)
        self.emit("ireturn")
        return [header, *self.lines, ".end"]


def compile_program(program):
    """Compile a parsed Program to assembly text."""
    lines = [f".class {module_class(program.module)}"]
    for function in program.functions:
        lines.extend(_FunctionCompiler(program, function).compile())
    return "\n".join(lines) + "\n"


def compile_source(source, module="main"):
    """Front door: Jr source -> assembly text."""
    from .parser import parse

    return compile_program(parse(source, module=module))
