"""Tokenizer for the Jr language."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    {"func", "var", "if", "else", "while", "return", "print"}
)

_TWO_CHAR = ("==", "!=", "<=", ">=", "&&", "||")
_ONE_CHAR = "+-*/%<>=!(){},;."


class JrSyntaxError(Exception):
    def __init__(self, message, line):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # 'int' | 'name' | 'kw' | 'op' | 'eof'
    text: str
    line: int


def tokenize(source):
    tokens = []
    line = 1
    index = 0
    length = len(source)
    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            continue
        if ch == "#" or source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if ch.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            tokens.append(Token("int", source[start:index], line))
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (
                source[index].isalnum() or source[index] == "_"
            ):
                index += 1
            text = source[start:index]
            kind = "kw" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line))
            continue
        two = source[index:index + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("op", two, line))
            index += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token("op", ch, line))
            index += 1
            continue
        raise JrSyntaxError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
