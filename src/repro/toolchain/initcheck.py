"""Secure object initialization: the uninitialized-``this`` escape pass.

After "Enforcing Secure Object Initialization in Java": a constructor may
use ``this`` freely *after* delegating to another constructor
(``invokespecial <init>`` on it), but before that point the object is a
shell — fields hold defaults, invariants do not hold — and letting the
reference *escape* (into a field, a static, an array, another method, a
return value or a thrown object) hands other code, possibly in another
protection domain, a partially-initialized object.  The stock JVM rules
around ``uninitializedThis`` leave known holes (exception handlers,
finalizers); this pass closes the escape route at the loader instead:
:func:`check_initialization` runs a small worklist dataflow over every
``<init>`` method and rejects the class if any path lets the
uninitialized receiver out.  ``VMDomain.define`` applies it to every
classfile before the namespace sees the class.

The abstract domain is deliberately tiny — each stack slot / local is
either U (possibly the uninitialized ``this``) or O (anything else);
merges are pessimistic (U wins).  Escape points rejected while a value
is U:

* ``putfield`` / ``putstatic`` / ``aastore`` with a U *value* operand;
* any invocation with U among its arguments, or as the receiver of a
  non-``<init>`` call (virtual dispatch on a shell object);
* ``areturn`` / ``athrow`` of U;
* ``monitorenter`` / ``monitorexit`` on U (publishes identity);
* falling off the constructor (``return``) while ``this`` is still U —
  the object would be observable forever uninitialized.

Delegation (``invokespecial <init>`` with a U receiver) is the one
operation that *consumes* U: afterwards every copy of it (stack and
locals both) becomes O.
"""

from __future__ import annotations

from repro.jvm import instructions as ins
from repro.jvm.classfile import CONSTRUCTOR_NAME
from repro.jvm.errors import VerifyError
from repro.jvm.values import parse_method_descriptor

__all__ = ["InitEscapeError", "check_initialization"]

# Abstract values: U = possibly the uninitialized `this`, O = other.
_U = True
_O = False


class InitEscapeError(VerifyError):
    """A constructor lets uninitialized ``this`` escape."""


# Fixed (pop, push) stack effects for the opcodes with no special
# U-tracking semantics; pushes are always O.  One slot per value (the
# MiniJVM operand stack is untyped-width, like the verifier's).
_SIMPLE_EFFECTS = {
    ins.NOP: (0, 0),
    ins.ICONST: (0, 1),
    ins.DCONST: (0, 1),
    ins.LDC_STR: (0, 1),
    ins.ACONST_NULL: (0, 1),
    ins.ILOAD: (0, 1),
    ins.DLOAD: (0, 1),
    ins.IINC: (0, 0),
    ins.IADD: (2, 1), ins.ISUB: (2, 1), ins.IMUL: (2, 1),
    ins.IDIV: (2, 1), ins.IREM: (2, 1), ins.INEG: (1, 1),
    ins.ISHL: (2, 1), ins.ISHR: (2, 1),
    ins.IAND: (2, 1), ins.IOR: (2, 1), ins.IXOR: (2, 1),
    ins.DADD: (2, 1), ins.DSUB: (2, 1), ins.DMUL: (2, 1),
    ins.DDIV: (2, 1), ins.DNEG: (1, 1), ins.DCMP: (2, 1),
    ins.I2D: (1, 1), ins.D2I: (1, 1),
    ins.NEW: (0, 1),
    ins.GETSTATIC: (0, 1),
    ins.INSTANCEOF: (1, 1),
    ins.NEWARRAY: (1, 1),
    ins.ARRAYLENGTH: (1, 1),
    ins.BALOAD: (2, 1), ins.IALOAD: (2, 1), ins.DALOAD: (2, 1),
    ins.AALOAD: (2, 1),
    ins.BASTORE: (3, 0), ins.IASTORE: (3, 0), ins.DASTORE: (3, 0),
    ins.IRETURN: (1, 0), ins.DRETURN: (1, 0),
    ins.GOTO: (0, 0),
    ins.IFEQ: (1, 0), ins.IFNE: (1, 0), ins.IFLT: (1, 0),
    ins.IFLE: (1, 0), ins.IFGT: (1, 0), ins.IFGE: (1, 0),
    ins.IFNULL: (1, 0), ins.IFNONNULL: (1, 0),
    ins.IF_ICMPEQ: (2, 0), ins.IF_ICMPNE: (2, 0), ins.IF_ICMPLT: (2, 0),
    ins.IF_ICMPLE: (2, 0), ins.IF_ICMPGT: (2, 0), ins.IF_ICMPGE: (2, 0),
    ins.IF_ACMPEQ: (2, 0), ins.IF_ACMPNE: (2, 0),
    ins.ISTORE: (1, 0), ins.DSTORE: (1, 0),
}


def check_initialization(classfile):
    """Reject ``classfile`` if any of its constructors can leak the
    uninitialized ``this``; no-op for interfaces and init-free classes.
    Raises :class:`InitEscapeError`."""
    if classfile.is_interface:
        return
    for method in classfile.methods:
        if method.name != CONSTRUCTOR_NAME:
            continue
        if method.is_native or method.is_abstract or not method.code:
            continue
        _InitChecker(classfile, method).run()


class _InitChecker:
    def __init__(self, classfile, method):
        self.classfile = classfile
        self.method = method
        self.code = method.code
        self.pc = 0

    def fail(self, message):
        raise InitEscapeError(
            message,
            class_name=self.classfile.name,
            method=CONSTRUCTOR_NAME,
            pc=self.pc,
        )

    def run(self):
        method = self.method
        args, _ret = parse_method_descriptor(method.desc)
        locals_init = [_U] + [_O] * (max(method.max_locals, len(args) + 1) - 1)
        states = {0: (tuple(locals_init), ())}
        handler_index = {}
        for handler in method.handlers:
            for pc in range(handler.start_pc, handler.end_pc):
                handler_index.setdefault(pc, []).append(handler.handler_pc)
        worklist = [0]
        while worklist:
            pc = worklist.pop()
            self.pc = pc
            locals_, stack = states[pc]
            for successor, state in self._step(pc, list(locals_), list(stack)):
                if self._merge(states, successor, state):
                    worklist.append(successor)
            # Any pc covered by a handler may transfer there with the
            # current locals and a one-slot stack (the thrown object —
            # never U: athrow of U is rejected at the throw site).
            for handler_pc in handler_index.get(pc, ()):
                state = (locals_, (_O,))
                if self._merge(states, handler_pc, state):
                    worklist.append(handler_pc)

    @staticmethod
    def _merge(states, pc, state):
        """Merge ``state`` into ``states[pc]`` (U wins); True if changed."""
        locals_, stack = state
        locals_ = tuple(locals_)
        stack = tuple(stack)
        known = states.get(pc)
        if known is None:
            states[pc] = (locals_, stack)
            return True
        known_locals, known_stack = known
        if len(known_stack) != len(stack):
            raise InitEscapeError(
                "inconsistent stack depth at join",
                class_name=None, method=CONSTRUCTOR_NAME, pc=pc,
            )
        merged_locals = tuple(
            a or b for a, b in zip(known_locals, locals_)
        )
        merged_stack = tuple(a or b for a, b in zip(known_stack, stack))
        if merged_locals == known_locals and merged_stack == known_stack:
            return False
        states[pc] = (merged_locals, merged_stack)
        return True

    def _pop(self, stack, count):
        if len(stack) < count:
            self.fail("operand stack underflow")
        taken = stack[len(stack) - count:]
        del stack[len(stack) - count:]
        return taken

    def _step(self, pc, locals_, stack):
        """Simulate one instruction; yields ``(successor_pc, state)``."""
        instr = self.code[pc]
        opcode = instr[0]

        simple = _SIMPLE_EFFECTS.get(opcode)
        if simple is not None:
            pops, pushes = simple
            self._pop(stack, pops)
            stack.extend([_O] * pushes)
            if opcode in (ins.ISTORE, ins.DSTORE):
                locals_[instr[1]] = _O
        elif opcode == ins.ALOAD:
            stack.append(locals_[instr[1]])
        elif opcode == ins.ASTORE:
            locals_[instr[1]] = self._pop(stack, 1)[0]
        elif opcode == ins.POP:
            self._pop(stack, 1)
        elif opcode == ins.DUP:
            if not stack:
                self.fail("dup on empty stack")
            stack.append(stack[-1])
        elif opcode == ins.DUP_X1:
            two = self._pop(stack, 2)
            stack.extend((two[1], two[0], two[1]))
        elif opcode == ins.SWAP:
            two = self._pop(stack, 2)
            stack.extend((two[1], two[0]))
        elif opcode == ins.CHECKCAST:
            pass  # value (and its U-ness) flows through
        elif opcode == ins.GETFIELD:
            receiver = self._pop(stack, 1)[0]
            if receiver is _U:
                self.fail("getfield on uninitialized this")
            stack.append(_O)
        elif opcode == ins.PUTFIELD:
            receiver, value = self._pop(stack, 2)
            if value is _U:
                self.fail("uninitialized this stored into a field")
            if receiver is _U:
                self.fail("putfield on uninitialized this")
        elif opcode == ins.PUTSTATIC:
            if self._pop(stack, 1)[0] is _U:
                self.fail("uninitialized this stored into a static")
        elif opcode == ins.AASTORE:
            _array, _idx, value = self._pop(stack, 3)
            if value is _U:
                self.fail("uninitialized this stored into an array")
        elif opcode == ins.ARETURN:
            if self._pop(stack, 1)[0] is _U:
                self.fail("uninitialized this returned")
        elif opcode == ins.ATHROW:
            if self._pop(stack, 1)[0] is _U:
                self.fail("uninitialized this thrown")
            return  # no fall-through; handler edges added by the driver
        elif opcode in (ins.MONITORENTER, ins.MONITOREXIT):
            if self._pop(stack, 1)[0] is _U:
                self.fail("monitor operation on uninitialized this")
        elif opcode in (ins.INVOKEVIRTUAL, ins.INVOKEINTERFACE,
                        ins.INVOKESTATIC, ins.INVOKESPECIAL):
            _owner, name, desc = instr[1], instr[2], instr[3]
            arg_descs, ret = parse_method_descriptor(desc)
            values = self._pop(stack, len(arg_descs))
            if any(value is _U for value in values):
                self.fail("uninitialized this passed as an argument")
            if opcode != ins.INVOKESTATIC:
                receiver = self._pop(stack, 1)[0]
                if receiver is _U:
                    if opcode == ins.INVOKESPECIAL \
                            and name == CONSTRUCTOR_NAME:
                        # Delegation initializes: every copy of U in the
                        # frame becomes a normal reference.
                        locals_[:] = [_O for _ in locals_]
                        stack[:] = [_O for _ in stack]
                    else:
                        self.fail(
                            "method invoked on uninitialized this"
                        )
            if ret != "V":
                stack.append(_O)
        elif opcode == ins.RETURN:
            if _U in locals_ or _U in stack:
                self.fail(
                    "constructor returns without initializing this"
                )
            return
        else:
            self.fail(f"initcheck: unhandled opcode {opcode!r}")

        if opcode in ins.BRANCH_OPCODES:
            yield instr[1], (locals_, stack)
        if opcode not in ins.TERMINAL_OPCODES:
            if pc + 1 >= len(self.code):
                self.fail("control falls off the end of the constructor")
            yield pc + 1, (locals_, stack)
        elif opcode == ins.GOTO:
            pass  # target already yielded above
        elif opcode in (ins.IRETURN, ins.DRETURN):
            if _U in locals_ or _U in stack:
                self.fail(
                    "constructor returns without initializing this"
                )
