"""AST for the Jr language (the CS314 course language).

Jr is a deliberately small integer language — the shape of homework
compilers: functions over 32-bit ints, arithmetic, comparisons, ``if``/
``while``, ``print`` and calls (including cross-module ``file.fn(...)``
calls, which the linker resolves).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Program:
    functions: tuple
    module: str = "main"


@dataclass(frozen=True)
class Function:
    name: str
    params: tuple
    body: tuple
    line: int = 0


# -- statements ---------------------------------------------------------

@dataclass(frozen=True)
class VarDecl:
    name: str
    value: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Assign:
    name: str
    value: "Expr"
    line: int = 0


@dataclass(frozen=True)
class If:
    condition: "Expr"
    then_body: tuple
    else_body: tuple = ()
    line: int = 0


@dataclass(frozen=True)
class While:
    condition: "Expr"
    body: tuple
    line: int = 0


@dataclass(frozen=True)
class Return:
    value: "Expr | None" = None
    line: int = 0


@dataclass(frozen=True)
class Print:
    value: "Expr"
    line: int = 0


@dataclass(frozen=True)
class ExprStmt:
    value: "Expr"
    line: int = 0


# -- expressions -----------------------------------------------------------

@dataclass(frozen=True)
class IntLiteral:
    value: int
    line: int = 0


@dataclass(frozen=True)
class Name:
    name: str
    line: int = 0


@dataclass(frozen=True)
class Unary:
    op: str  # '-' | '!'
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Binary:
    op: str  # + - * / % == != < <= > >= && ||
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Call:
    module: str | None  # None = same module
    name: str
    args: tuple
    line: int = 0


Expr = (IntLiteral, Name, Unary, Binary, Call)
Stmt = (VarDecl, Assign, If, While, Return, Print, ExprStmt)
