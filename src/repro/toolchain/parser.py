"""Recursive-descent parser for Jr."""

from __future__ import annotations

from . import astnodes as ast
from .lexer import JrSyntaxError, tokenize


class Parser:
    def __init__(self, tokens, module="main"):
        self.tokens = tokens
        self.index = 0
        self.module = module

    # -- token plumbing ----------------------------------------------------
    @property
    def current(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def check(self, kind, text=None):
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise JrSyntaxError(
                f"expected {want!r}, found {self.current.text!r}",
                self.current.line,
            )
        return token

    # -- grammar --------------------------------------------------------------
    def parse_program(self):
        functions = []
        while not self.check("eof"):
            functions.append(self.parse_function())
        seen = set()
        for function in functions:
            if function.name in seen:
                raise JrSyntaxError(
                    f"duplicate function {function.name!r}", function.line
                )
            seen.add(function.name)
        return ast.Program(tuple(functions), module=self.module)

    def parse_function(self):
        start = self.expect("kw", "func")
        name = self.expect("name").text
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            params.append(self.expect("name").text)
            while self.accept("op", ","):
                params.append(self.expect("name").text)
        self.expect("op", ")")
        if len(set(params)) != len(params):
            raise JrSyntaxError(f"duplicate parameter in {name}", start.line)
        body = self.parse_block()
        return ast.Function(name, tuple(params), body, line=start.line)

    def parse_block(self):
        self.expect("op", "{")
        statements = []
        while not self.check("op", "}"):
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return tuple(statements)

    def parse_statement(self):
        token = self.current
        if self.accept("kw", "var"):
            name = self.expect("name").text
            self.expect("op", "=")
            value = self.parse_expression()
            self.expect("op", ";")
            return ast.VarDecl(name, value, line=token.line)
        if self.accept("kw", "if"):
            self.expect("op", "(")
            condition = self.parse_expression()
            self.expect("op", ")")
            then_body = self.parse_block()
            else_body = ()
            if self.accept("kw", "else"):
                if self.check("kw", "if"):
                    else_body = (self.parse_statement(),)
                else:
                    else_body = self.parse_block()
            return ast.If(condition, then_body, else_body, line=token.line)
        if self.accept("kw", "while"):
            self.expect("op", "(")
            condition = self.parse_expression()
            self.expect("op", ")")
            body = self.parse_block()
            return ast.While(condition, body, line=token.line)
        if self.accept("kw", "return"):
            value = None
            if not self.check("op", ";"):
                value = self.parse_expression()
            self.expect("op", ";")
            return ast.Return(value, line=token.line)
        if self.accept("kw", "print"):
            value = self.parse_expression()
            self.expect("op", ";")
            return ast.Print(value, line=token.line)
        if (
            self.check("name")
            and self.tokens[self.index + 1].kind == "op"
            and self.tokens[self.index + 1].text == "="
        ):
            name = self.advance().text
            self.advance()  # '='
            value = self.parse_expression()
            self.expect("op", ";")
            return ast.Assign(name, value, line=token.line)
        value = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(value, line=token.line)

    # expression precedence: || < && < comparison < additive < term < unary
    def parse_expression(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.check("op", "||"):
            line = self.advance().line
            left = ast.Binary("||", left, self.parse_and(), line=line)
        return left

    def parse_and(self):
        left = self.parse_comparison()
        while self.check("op", "&&"):
            line = self.advance().line
            left = ast.Binary("&&", left, self.parse_comparison(), line=line)
        return left

    def parse_comparison(self):
        left = self.parse_additive()
        while self.current.kind == "op" and self.current.text in (
            "==", "!=", "<", "<=", ">", ">=",
        ):
            op = self.advance()
            left = ast.Binary(op.text, left, self.parse_additive(),
                              line=op.line)
        return left

    def parse_additive(self):
        left = self.parse_term()
        while self.current.kind == "op" and self.current.text in "+-":
            op = self.advance()
            left = ast.Binary(op.text, left, self.parse_term(), line=op.line)
        return left

    def parse_term(self):
        left = self.parse_unary()
        while self.current.kind == "op" and self.current.text in "*/%":
            op = self.advance()
            left = ast.Binary(op.text, left, self.parse_unary(), line=op.line)
        return left

    def parse_unary(self):
        if self.check("op", "-"):
            token = self.advance()
            return ast.Unary("-", self.parse_unary(), line=token.line)
        if self.check("op", "!"):
            token = self.advance()
            return ast.Unary("!", self.parse_unary(), line=token.line)
        return self.parse_primary()

    def parse_primary(self):
        token = self.current
        if token.kind == "int":
            self.advance()
            value = int(token.text)
            if value > 2**31 - 1:
                raise JrSyntaxError("integer literal out of range",
                                    token.line)
            return ast.IntLiteral(value, line=token.line)
        if self.accept("op", "("):
            inner = self.parse_expression()
            self.expect("op", ")")
            return inner
        if token.kind == "name":
            self.advance()
            if self.accept("op", "."):
                member = self.expect("name").text
                args = self.parse_args(token.line)
                return ast.Call(token.text, member, args, line=token.line)
            if self.check("op", "("):
                args = self.parse_args(token.line)
                return ast.Call(None, token.text, args, line=token.line)
            return ast.Name(token.text, line=token.line)
        raise JrSyntaxError(f"unexpected token {token.text!r}", token.line)

    def parse_args(self, line):
        self.expect("op", "(")
        args = []
        if not self.check("op", ")"):
            args.append(self.parse_expression())
            while self.accept("op", ","):
                args.append(self.parse_expression())
        self.expect("op", ")")
        return tuple(args)


def parse(source, module="main"):
    """Parse Jr source text into a Program."""
    return Parser(tokenize(source), module=module).parse_program()
