"""The CS314 linker: resolve symbolic references across object modules.

Input: a set of classfiles (from the assembler) plus the names the runtime
environment provides (``java/lang/*`` by default).  The linker walks every
symbolic reference — superclasses, interfaces, field/method descriptors and
every instruction operand — and reports undefined classes and members
before anything is loaded into a VM.  Output: a :class:`LinkedImage` whose
classfiles can be handed to a loader together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jvm.instructions import (
    CHECKCAST,
    GETFIELD,
    GETSTATIC,
    INSTANCEOF,
    INVOKEINTERFACE,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    NEW,
    PUTFIELD,
    PUTSTATIC,
)
from repro.jvm.values import parse_method_descriptor

DEFAULT_PROVIDED = (
    "java/lang/Object",
    "java/lang/String",
    "java/lang/StringBuilder",
    "java/lang/System",
    "java/lang/Thread",
    "java/lang/Throwable",
)


class LinkError(Exception):
    def __init__(self, undefined):
        self.undefined = sorted(undefined)
        super().__init__(
            "undefined symbols: " + ", ".join(self.undefined)
        )


@dataclass
class LinkedImage:
    classfiles: tuple
    entry_points: dict = field(default_factory=dict)

    def load_into(self, loader):
        """Define all linked classes in a loader (or a VMDomain)."""
        if hasattr(loader, "define_all"):
            return loader.define_all(list(self.classfiles))
        return loader.define(list(self.classfiles))


_FIELD_OPS = frozenset({GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC})
_METHOD_OPS = frozenset(
    {INVOKEVIRTUAL, INVOKEINTERFACE, INVOKESTATIC, INVOKESPECIAL}
)
_TYPE_OPS = frozenset({NEW, CHECKCAST, INSTANCEOF})


def _named_classes_of_descriptor(desc):
    names = []
    if desc.startswith("("):
        args, ret = parse_method_descriptor(desc)
        parts = [*args, ret]
    else:
        parts = [desc]
    for part in parts:
        while part.startswith("["):
            part = part[1:]
        if part.startswith("L") and part.endswith(";"):
            names.append(part[1:-1])
    return names


def _corelib_members():
    """Exact member knowledge for the environment-provided core classes,
    derived from the same classfiles the VM bootstraps from."""
    from repro.jvm.corelib import core_classfiles

    known = {}
    for cf in core_classfiles():
        known[cf.name] = {
            "methods": {m.key for m in cf.methods},
            "fields": {f.name for f in cf.fields},
            "super": cf.super_name,
        }
    return known


class Linker:
    def __init__(self, provided=DEFAULT_PROVIDED, provided_prefixes=("jk/",)):
        self.provided = set(provided)
        self.provided_prefixes = tuple(provided_prefixes)
        self.known_members = _corelib_members()

    def _is_provided(self, name):
        if name in self.provided or name in self.known_members:
            return True
        return any(name.startswith(p) for p in self.provided_prefixes)

    def link(self, classfiles):
        """Check all cross-references; returns a LinkedImage or raises
        :class:`LinkError` listing every undefined symbol."""
        by_name = {cf.name: cf for cf in classfiles}
        undefined = set()

        def check_class(name):
            if name in by_name or self._is_provided(name):
                return True
            undefined.add(name)
            return False

        def find_method(class_name, method_name, desc):
            cursor = class_name
            while cursor is not None:
                if cursor in by_name:
                    cf = by_name[cursor]
                    if cf.method(method_name, desc) is not None:
                        return True
                    for iface in cf.interfaces:
                        if iface in by_name and by_name[iface].method(
                            method_name, desc
                        ):
                            return True
                    cursor = cf.super_name
                elif cursor in self.known_members:
                    known = self.known_members[cursor]
                    if (method_name, desc) in known["methods"]:
                        return True
                    cursor = known["super"]
                elif self._is_provided(cursor):
                    return True  # opaque provided class: trust it
                else:
                    return False  # missing class; already reported
            return False

        def find_field(class_name, field_name):
            cursor = class_name
            while cursor is not None:
                if cursor in by_name:
                    cf = by_name[cursor]
                    if any(f.name == field_name for f in cf.fields):
                        return True
                    cursor = cf.super_name
                elif cursor in self.known_members:
                    known = self.known_members[cursor]
                    if field_name in known["fields"]:
                        return True
                    cursor = known["super"]
                elif self._is_provided(cursor):
                    return True
                else:
                    return False
            return False

        for cf in classfiles:
            if cf.super_name is not None:
                check_class(cf.super_name)
            for iface in cf.interfaces:
                check_class(iface)
            for field_def in cf.fields:
                for name in _named_classes_of_descriptor(field_def.desc):
                    check_class(name)
            for method in cf.methods:
                for name in _named_classes_of_descriptor(method.desc):
                    check_class(name)
                for instr in method.code:
                    opcode = instr[0]
                    if opcode in _TYPE_OPS:
                        target = instr[1]
                        if not target.startswith("["):
                            check_class(target)
                    elif opcode in _FIELD_OPS:
                        if check_class(instr[1]) and not self._is_provided(
                            instr[1]
                        ):
                            if not find_field(instr[1], instr[2]):
                                undefined.add(f"{instr[1]}.{instr[2]}")
                    elif opcode in _METHOD_OPS:
                        for name in _named_classes_of_descriptor(instr[3]):
                            check_class(name)
                        if check_class(instr[1]) and not self._is_provided(
                            instr[1]
                        ):
                            if not find_method(instr[1], instr[2], instr[3]):
                                undefined.add(
                                    f"{instr[1]}.{instr[2]}{instr[3]}"
                                )
        if undefined:
            raise LinkError(undefined)
        entry_points = {}
        for cf in classfiles:
            for method in cf.methods:
                if method.is_static and method.name == "main":
                    entry_points[cf.name] = (method.name, method.desc)
        return LinkedImage(tuple(classfiles), entry_points)


def link(classfiles, provided=DEFAULT_PROVIDED):
    return Linker(provided=provided).link(classfiles)
