"""Text assembler: ``.class``/``.method`` assembly text -> ClassFile.

The CS314 "assembler" component.  Format::

    .class jr/fib
    .field counter I static        # optional fields
    .method fib (I)I static
        iload 0
        iconst 2
        if_icmplt L0
        ...
    L0:
        iconst 1
        ireturn
    .end

Branch targets are named labels (``Lx:`` lines, forward references fine);
operands are integers, floats, names, or double-quoted strings (for
``ldc_str``).  Comments start with ``#`` or ``;``.
"""

from __future__ import annotations

from repro.jvm.asm import ClassAssembler
from repro.jvm.classfile import ACC_PRIVATE, ACC_PUBLIC, ACC_STATIC
from repro.jvm.instructions import BRANCH_OPCODES, OPERAND_SHAPES


class AsmError(Exception):
    def __init__(self, message, line_number):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _flags(words, line_number):
    flags = ACC_PUBLIC
    for word in words:
        if word == "static":
            flags |= ACC_STATIC
        elif word == "private":
            flags = (flags & ~ACC_PUBLIC) | ACC_PRIVATE
        elif word == "public":
            flags |= ACC_PUBLIC
        else:
            raise AsmError(f"unknown modifier {word!r}", line_number)
    return flags


def _split_operands(text, line_number):
    """Split an operand string, honouring double-quoted strings."""
    operands = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch in " \t":
            index += 1
            continue
        if ch == '"':
            end = text.find('"', index + 1)
            if end < 0:
                raise AsmError("unterminated string", line_number)
            operands.append(("str", text[index + 1:end]))
            index = end + 1
            continue
        end = index
        while end < length and text[end] not in " \t":
            end += 1
        operands.append(("word", text[index:end]))
        index = end
    return operands


def _strip_comment(line):
    """Drop ``#`` comments anywhere and ``;`` comments only at a token
    boundary — ``;`` is also the class-descriptor terminator."""
    line = line.split("#", 1)[0]
    for index, ch in enumerate(line):
        if ch == ";" and (index == 0 or line[index - 1] in " \t"):
            return line[:index]
    return line


class _MethodState:
    def __init__(self, assembler):
        self.assembler = assembler
        self.labels = {}  # name -> Label (bound or forward)
        self.bound = set()

    def label_for(self, name):
        label = self.labels.get(name)
        if label is None:
            label = self.labels[name] = self.assembler.label(name)
        return label

    def bind(self, name, line_number):
        if name in self.bound:
            raise AsmError(f"label {name!r} defined twice", line_number)
        self.bound.add(name)
        self.assembler.mark(self.label_for(name))

    def finish(self, line_number):
        unbound = sorted(set(self.labels) - self.bound)
        if unbound:
            raise AsmError(f"undefined labels: {', '.join(unbound)}",
                           line_number)

    def convert(self, op_kind, raw, line_number):
        kind, text = raw
        if kind == "str":
            return text
        if op_kind == "target":
            return self.label_for(text)
        if op_kind in ("int", "index"):
            try:
                return int(text, 0)
            except ValueError:
                raise AsmError(f"expected integer, found {text!r}",
                               line_number) from None
        if op_kind == "float":
            return float(text)
        return text  # unquoted name for a "str"-kind operand


def assemble_many(source):
    """Assemble a file that may contain several ``.class`` units."""
    classfiles = []
    assembler = None
    state = None
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith(".class"):
            if state is not None:
                raise AsmError(".class inside .method", line_number)
            if assembler is not None:
                classfiles.append(assembler.build())
            words = line.split()
            if len(words) < 2:
                raise AsmError(".class needs a name", line_number)
            name = words[1]
            super_name = "java/lang/Object"
            interfaces = ()
            rest = words[2:]
            while rest:
                if rest[0] == "extends" and len(rest) >= 2:
                    super_name = rest[1]
                    rest = rest[2:]
                elif rest[0] == "implements" and len(rest) >= 2:
                    interfaces = tuple(rest[1].split(","))
                    rest = rest[2:]
                else:
                    raise AsmError(f"bad .class clause {rest[0]!r}",
                                   line_number)
            assembler = ClassAssembler(name, super_name=super_name,
                                       interfaces=interfaces,
                                       source="<asm>")
            continue
        if assembler is None:
            raise AsmError("directive before .class", line_number)
        if line.startswith(".field"):
            if state is not None:
                raise AsmError(".field inside .method", line_number)
            words = line.split()
            if len(words) < 3:
                raise AsmError(".field needs name and descriptor",
                               line_number)
            assembler.field(words[1], words[2],
                            _flags(words[3:], line_number))
            continue
        if line.startswith(".method"):
            if state is not None:
                raise AsmError("nested .method", line_number)
            words = line.split()
            if len(words) < 3:
                raise AsmError(".method needs name and descriptor",
                               line_number)
            method = assembler.method(words[1], words[2],
                                      _flags(words[3:], line_number))
            state = _MethodState(method)
            continue
        if line == ".end":
            if state is None:
                raise AsmError(".end outside method", line_number)
            state.finish(line_number)
            state = None
            continue
        if state is None:
            raise AsmError(f"instruction outside .method: {line!r}",
                           line_number)
        if line.endswith(":") and " " not in line:
            state.bind(line[:-1], line_number)
            continue
        words = line.split(None, 1)
        opcode = words[0]
        shape = OPERAND_SHAPES.get(opcode)
        if shape is None:
            raise AsmError(f"unknown opcode {opcode!r}", line_number)
        raw_operands = (
            _split_operands(words[1], line_number) if len(words) > 1 else []
        )
        if len(raw_operands) != len(shape):
            raise AsmError(
                f"{opcode} expects {len(shape)} operands, got "
                f"{len(raw_operands)}", line_number,
            )
        operands = [
            state.convert(kind, raw, line_number)
            for kind, raw in zip(shape, raw_operands)
        ]
        state.assembler.emit(opcode, *operands)
    if state is not None:
        raise AsmError("missing .end", 0)
    if assembler is not None:
        classfiles.append(assembler.build())
    return classfiles


def assemble_text(source):
    """Assemble one ``.class`` unit; returns a ClassFile."""
    classes = assemble_many(source)
    if len(classes) != 1:
        raise AsmError(
            f"expected exactly one .class, found {len(classes)}", 0
        )
    return classes[0]
