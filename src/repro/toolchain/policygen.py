"""Static least-privilege policy generation (paper §3 follow-on).

Before an untrusted servlet is installed, the marketplace wants to know
what it is going to ask for — so the operator grants exactly that and
nothing more.  Two generators, one per servlet flavour:

* :func:`generate_policy` walks *verified MiniJVM bytecode* and collects
  every permission the code can demand at run time: explicit
  ``jk/Kernel.checkPermission`` call sites (whose argument must be a
  string *constant* — a permission computed at run time cannot be
  audited statically and is rejected), plus any invocation listed in the
  caller-supplied ``guard_table`` mapping known guarded kernel/library
  entry points to the permissions their guards demand.

* :func:`propose_policy_source` walks the Python AST of an uploaded
  source servlet and proposes the union of the guards on the
  capabilities the installer is about to grant it — only those the
  source actually references.  ``install_source(policy="generate")``
  uses this to make least privilege the default instead of a chore.

Both return a :class:`~repro.core.policy.PermissionSet` ready to pass to
``Domain.set_policy`` / ``install_servlet(policy=...)``.  The proposal
is an upper bound on *useful* permissions, not a sandbox by itself — the
policy layer enforces at run time whatever set the operator finally
grants.
"""

from __future__ import annotations

import ast

from repro.core.errors import JKernelError
from repro.core.policy import Permission, PermissionSet
from repro.jvm import instructions as ins

__all__ = [
    "CHECK_PERMISSION_DESC",
    "KERNEL_CLASS",
    "PolicyGenError",
    "generate_policy",
    "propose_policy_source",
]

#: The guest-visible kernel class and the checkPermission signature the
#: generator recognises (mirrors ``repro.jkvm.kernel``).
KERNEL_CLASS = "jk/Kernel"
CHECK_PERMISSION_DESC = "(Ljava/lang/String;)V"


class PolicyGenError(JKernelError):
    """Static policy generation failed (non-constant permission, bad
    guard-table entry) — the servlet cannot be auto-audited."""


def _normalize_guard_table(guard_table):
    """Validate and index {(class, method[, desc]): permission(s)}."""
    table = {}
    for key, value in (guard_table or {}).items():
        if not isinstance(key, tuple) or len(key) not in (2, 3):
            raise PolicyGenError(
                f"guard_table key {key!r} is not (class, method[, desc])"
            )
        if isinstance(value, (str, Permission)):
            value = (value,)
        table[key] = tuple(Permission.parse(p) for p in value)
    return table


def generate_policy(classfiles, guard_table=None):
    """Propose the least-privilege :class:`PermissionSet` for verified
    bytecode: every ``jk/Kernel.checkPermission`` constant plus every
    ``guard_table`` hit.  Raises :class:`PolicyGenError` when a
    checkPermission argument is not a string constant (the preceding
    instruction must be ``LDC_STR`` — anything else means the permission
    is computed and the class cannot be statically audited)."""
    table = _normalize_guard_table(guard_table)
    permissions = []
    for classfile in classfiles:
        for method in classfile.methods:
            if not method.code:
                continue
            for index, instr in enumerate(method.code):
                opcode = instr[0]
                if opcode not in (ins.INVOKESTATIC, ins.INVOKEVIRTUAL,
                                  ins.INVOKEINTERFACE, ins.INVOKESPECIAL):
                    continue
                owner, name, desc = instr[1], instr[2], instr[3]
                if (opcode == ins.INVOKESTATIC
                        and owner == KERNEL_CLASS
                        and name == "checkPermission"
                        and desc == CHECK_PERMISSION_DESC):
                    prev = method.code[index - 1] if index else None
                    if prev is None or prev[0] != ins.LDC_STR:
                        raise PolicyGenError(
                            "checkPermission argument is not a string "
                            f"constant in {classfile.name}.{method.name} "
                            f"at pc {index} — computed permissions defeat "
                            "static audit"
                        )
                    permissions.append(Permission.parse(prev[1]))
                    continue
                hit = (table.get((owner, name, desc))
                       or table.get((owner, name)))
                if hit:
                    permissions.extend(hit)
    return PermissionSet(permissions)


def _guard_of(value):
    """The parsed guard Permission of a granted capability, or None."""
    guard = getattr(value, "_jk_guard", None)
    return guard if isinstance(guard, Permission) else None


def propose_policy_source(source, grants, filename="<servlet>"):
    """Propose a :class:`PermissionSet` for an uploaded *source* servlet:
    the guards of exactly those granted capabilities the source
    references by name.  A grant the code never mentions contributes
    nothing — install it anyway and the proposal stays least-privilege.
    Raises :class:`PolicyGenError` on unparseable source."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise PolicyGenError(f"cannot parse servlet source: {exc}") from exc
    referenced = {
        node.id for node in ast.walk(tree) if isinstance(node, ast.Name)
    }
    permissions = []
    for name, value in (grants or {}).items():
        if name not in referenced:
            continue
        guard = _guard_of(value)
        if guard is not None:
            permissions.append(guard)
    return PermissionSet(permissions)
