"""The CS314 toolchain: the Jr language compiler, the MiniJVM text
assembler, the linker, and their servlet wrappers (paper §4)."""

from .asmtext import AsmError, assemble_many, assemble_text
from .codegen import JrCompileError, compile_program, compile_source
from .initcheck import InitEscapeError, check_initialization
from .lexer import JrSyntaxError, tokenize
from .linker import DEFAULT_PROVIDED, LinkedImage, Linker, LinkError, link
from .parser import parse
from .policygen import PolicyGenError, generate_policy, propose_policy_source
from .servlets import (
    AssemblerServlet,
    CompilerServlet,
    JrAssembler,
    JrCompiler,
    JrLinker,
    JrRunner,
    PipelineServlet,
    classfile_to_portable,
    portable_to_classfile,
)

__all__ = [
    "AsmError",
    "AssemblerServlet",
    "CompilerServlet",
    "DEFAULT_PROVIDED",
    "InitEscapeError",
    "JrAssembler",
    "JrCompileError",
    "JrCompiler",
    "JrLinker",
    "JrRunner",
    "JrSyntaxError",
    "LinkError",
    "LinkedImage",
    "Linker",
    "PipelineServlet",
    "PolicyGenError",
    "assemble_many",
    "assemble_text",
    "check_initialization",
    "classfile_to_portable",
    "compile_program",
    "compile_source",
    "generate_policy",
    "link",
    "parse",
    "portable_to_classfile",
    "propose_policy_source",
    "tokenize",
]
