"""Test-support subsystems that ship with the package (fault injection
lives here so forked workers and domain hosts — which inherit the
parent's Python state, not the test process's imports — carry the same
chaos configuration across ``fork``)."""
