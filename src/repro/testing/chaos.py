"""Fault injection for the ipc/prefork layers (the chaos harness).

The robustness claim of the fleet control plane is *totality*: under
any injected fault, a client observes a typed error or a successfully
retried call within its deadline — never a hang, never a silently
wrong answer.  This module is how the claim is exercised:

* **crash-at-point** — named crash points in the prefork worker loop
  and the LRMI host dispatch path ``os._exit`` the process mid-
  operation (after a configurable number of passes), reproducing a
  worker dying between parse and flush or a host dying mid-call;
* **wire-delay** — every framed send sleeps first, driving calls past
  their deadlines;
* **partial-write** — a framed send emits only a prefix of the frame
  and drops the connection, desynchronizing the peer's stream;
* **socket-drop** — a framed send closes the socket instead;
* **partition** — both directions between a named endpoint pair are
  refused at the calling edge (the ntrpc transport carries endpoint
  names), healable at runtime via :meth:`ChaosConfig.heal`;
* **heartbeat-loss** — pings between an endpoint pair are dropped
  while data calls still flow, the failure mode that distinguishes
  liveness probing from reachability.

Faults install via hook variables *inside* the target modules
(``repro.ipc.wire._chaos``, ``repro.ipc.lrmi._chaos``,
``repro.ipc.ntrpc._chaos``, ``repro.web.prefork._chaos``,
``repro.fleet.host._chaos``): production code pays one ``is not
None`` check when chaos is off, and the testing package is never
imported outside tests unless a knob is set.  Because installation
mutates interpreter state, forked children (prefork workers, domain
hosts) inherit the active configuration — crash points fire in the
right process, selected by ``scope``.  Partitions and heartbeat loss
are evaluated in the *calling* process (the coordinator side), so
:meth:`ChaosConfig.partition` / :meth:`ChaosConfig.heal` take effect
immediately without cross-process propagation.

Env control (the CI matrix): every knob has a ``JK_CHAOS_*`` variable,
read by :func:`install_from_env` —

============================  =======================================
``JK_CHAOS_CRASH_AT``         comma-separated crash-point names
``JK_CHAOS_CRASH_AFTER``      passes through a crash point before
                              crashing (default 0: first hit)
``JK_CHAOS_WIRE_DELAY_S``     seconds to sleep before each framed send
``JK_CHAOS_PARTIAL_WRITE``    probability [0,1] a send truncates
``JK_CHAOS_DROP_RATE``        probability [0,1] a send drops the socket
``JK_CHAOS_SEED``             RNG seed (default 0: deterministic)
``JK_CHAOS_SCOPE``            ``any`` | ``child`` | ``parent``
``JK_CHAOS_PARTITION``        endpoint pairs to partition, e.g.
                              ``coordinator|h1,h2|h3``
``JK_CHAOS_HEARTBEAT_LOSS``   endpoint pairs whose pings are dropped
============================  =======================================
"""

from __future__ import annotations

import os
import random
import threading
import time


class ChaosError(OSError):
    """The injected failure surfaced to the faulting layer (an OSError,
    so every wire consumer maps it to its usual typed error)."""


#: Exit status of a crash-point kill (mirrors SIGKILL's 128+9 so
#: supervisors treat it exactly like a real kill).
CRASH_STATUS = 137

#: Crash points wired into the production layers.
KNOWN_POINTS = (
    "prefork.worker.message",   # worker control loop, pre-dispatch
    "prefork.worker.stats",     # worker about to answer a STATS poll
    "lrmi.host.dispatch",       # domain host mid-call, pre-reply
    "wire.send",                # either peer, just before a framed send
    "fleet.host.invoke",        # fleet host mid-invoke, pre-reply
    "regions.seal",             # region segment created, nothing granted
)


def _pair(a, b):
    """Canonical unordered endpoint pair (partitions are symmetric)."""
    return frozenset((a, b))


class ChaosConfig:
    """One installed fault configuration (see module docstring)."""

    def __init__(self, crash_at=(), crash_after=0, wire_delay_s=0.0,
                 partial_write=0.0, drop_rate=0.0, seed=0, scope="any",
                 partitions=(), heartbeat_loss=()):
        if scope not in ("any", "child", "parent"):
            raise ValueError(f"unknown scope {scope!r}")
        self.crash_at = frozenset(crash_at)
        self.crash_after = crash_after
        self.wire_delay_s = wire_delay_s
        self.partial_write = partial_write
        self.drop_rate = drop_rate
        self.scope = scope
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._install_pid = os.getpid()
        self._crash_passes = {}
        self._partitions = {_pair(a, b) for a, b in partitions}
        self._heartbeat_loss = {_pair(a, b) for a, b in heartbeat_loss}
        self.injected = {"crash": 0, "delay": 0, "partial": 0, "drop": 0,
                        "partition": 0, "heartbeat": 0}

    # -- scope -------------------------------------------------------------
    def _applies(self):
        if self.scope == "any":
            return True
        is_child = os.getpid() != self._install_pid
        return is_child if self.scope == "child" else not is_child

    def _note(self, fault):
        with self._lock:
            self.injected[fault] += 1

    # -- crash points ------------------------------------------------------
    def crash_point(self, name):
        """``os._exit`` here when the point is armed and its pass budget
        is spent.  Called from the production layers via their hook."""
        if name not in self.crash_at or not self._applies():
            return
        with self._lock:
            passes = self._crash_passes.get(name, 0)
            self._crash_passes[name] = passes + 1
            if passes < self.crash_after:
                return
            self.injected["crash"] += 1
        os._exit(CRASH_STATUS)

    # -- partitions and heartbeat loss ------------------------------------
    def partition(self, a, b):
        """Drop both directions between endpoints ``a`` and ``b`` (the
        calling edge refuses the dial/send with a typed error)."""
        with self._lock:
            self._partitions.add(_pair(a, b))

    def heal(self, a, b):
        """Heal the partition between ``a`` and ``b``."""
        with self._lock:
            self._partitions.discard(_pair(a, b))

    def heal_all(self):
        with self._lock:
            self._partitions.clear()
            self._heartbeat_loss.clear()

    def partitioned(self, a, b):
        """True when the pair is partitioned (noted as an injection)."""
        with self._lock:
            cut = _pair(a, b) in self._partitions
            if cut:
                self.injected["partition"] += 1
        return cut

    def lose_heartbeats(self, a, b):
        """Drop pings between ``a`` and ``b`` while data calls flow —
        the probe-vs-reachability split a partition cannot model."""
        with self._lock:
            self._heartbeat_loss.add(_pair(a, b))

    def restore_heartbeats(self, a, b):
        with self._lock:
            self._heartbeat_loss.discard(_pair(a, b))

    def heartbeat_lost(self, a, b):
        with self._lock:
            lost = _pair(a, b) in self._heartbeat_loss
            if lost:
                self.injected["heartbeat"] += 1
        return lost

    # -- wire faults -------------------------------------------------------
    def before_send(self, sock, data):
        """Apply send-side faults; returns the data to actually send.

        Raises :class:`ChaosError` after dropping/truncating so the
        caller's error path runs exactly as it would for a real network
        failure.
        """
        if not self._applies():
            return data
        self.crash_point("wire.send")
        if self.wire_delay_s > 0.0:
            self._note("delay")
            time.sleep(self.wire_delay_s)
        roll = None
        if self.drop_rate > 0.0 or self.partial_write > 0.0:
            with self._lock:
                roll = self._rng.random()
        if roll is not None and roll < self.drop_rate:
            self._note("drop")
            try:
                sock.close()
            except OSError:
                pass
            raise ChaosError("chaos: socket dropped")
        if roll is not None and roll < self.drop_rate + self.partial_write:
            self._note("partial")
            try:
                sock.sendall(data[: max(1, len(data) // 2)])
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
            raise ChaosError("chaos: partial write")
        return data


def _target_modules():
    from repro.core import regions
    from repro.fleet import host as fleet_host
    from repro.ipc import lrmi, ntrpc, wire
    from repro.web import prefork

    return (wire, lrmi, ntrpc, prefork, fleet_host, regions)


def install(config):
    """Arm the hooks in every target layer; returns the config."""
    for module in _target_modules():
        module._chaos = config
    return config


def uninstall():
    for module in _target_modules():
        module._chaos = None


def active():
    from repro.ipc import wire

    return wire._chaos


def install_from_env(environ=None):
    """Install from ``JK_CHAOS_*`` variables; returns the config, or
    None when no knob is set (and installs nothing)."""
    env = os.environ if environ is None else environ
    crash_at = tuple(
        point.strip()
        for point in env.get("JK_CHAOS_CRASH_AT", "").split(",")
        if point.strip()
    )

    def pairs(name):
        return tuple(
            tuple(part.strip() for part in entry.split("|", 1))
            for entry in env.get(name, "").split(",")
            if "|" in entry
        )

    partitions = pairs("JK_CHAOS_PARTITION")
    heartbeat_loss = pairs("JK_CHAOS_HEARTBEAT_LOSS")
    config = ChaosConfig(
        crash_at=crash_at,
        crash_after=int(env.get("JK_CHAOS_CRASH_AFTER", "0")),
        wire_delay_s=float(env.get("JK_CHAOS_WIRE_DELAY_S", "0")),
        partial_write=float(env.get("JK_CHAOS_PARTIAL_WRITE", "0")),
        drop_rate=float(env.get("JK_CHAOS_DROP_RATE", "0")),
        seed=int(env.get("JK_CHAOS_SEED", "0")),
        scope=env.get("JK_CHAOS_SCOPE", "any"),
        partitions=partitions,
        heartbeat_loss=heartbeat_loss,
    )
    if (not crash_at and config.wire_delay_s == 0.0
            and config.partial_write == 0.0 and config.drop_rate == 0.0
            and not partitions and not heartbeat_loss):
        return None
    return install(config)
