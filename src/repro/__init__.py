"""repro — a reproduction of "Implementing Multiple Protection Domains in
Java" (Hawblitzel et al., USENIX 1998): the J-Kernel.

Public API highlights (see README.md):

* ``repro.core`` — domains, capabilities, LRMI (the hosted J-Kernel);
* ``repro.jvm`` — the MiniJVM substrate (verifier, loaders, threads, GC);
* ``repro.jkvm`` — the J-Kernel on the MiniJVM (enforced path);
* ``repro.web`` — the extensible HTTP server of §4;
* ``repro.toolchain`` — the CS314 Jr compiler / assembler / linker;
* ``repro.ipc`` — the Table 2 OS IPC baselines;
* ``repro.bench`` — regenerates every table of the evaluation.
"""

from .core import (
    Capability,
    Domain,
    DomainTerminatedException,
    JKernelError,
    Remote,
    RemoteException,
    Repository,
    RevokedException,
    fast_copy,
    get_repository,
    serializable,
    share_class,
)

__version__ = "0.1.0"

__all__ = [
    "Capability",
    "Domain",
    "DomainTerminatedException",
    "JKernelError",
    "Remote",
    "RemoteException",
    "Repository",
    "RevokedException",
    "__version__",
    "fast_copy",
    "get_repository",
    "serializable",
    "share_class",
]
