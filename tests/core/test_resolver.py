"""Per-domain restricted namespaces for loaded code."""

import pytest

from repro.core import Domain, SAFE_BUILTINS


class TestRestrictedNamespace:
    def test_safe_builtins_available(self):
        domain = Domain("res1")
        module = domain.load_module(
            "m",
            "values = sorted([3, 1, 2])\n"
            "total = sum(values)\n"
            "kind = type(total).__name__\n",
        )
        assert module.values == [1, 2, 3]
        assert module.total == 6
        assert module.kind == "int"

    def test_open_absent(self):
        domain = Domain("res2")
        with pytest.raises(NameError):
            domain.load_module("m", "open('/etc/passwd')\n")

    def test_import_absent(self):
        domain = Domain("res3")
        with pytest.raises(ImportError):
            domain.load_module("m", "import os\n")

    def test_eval_exec_absent(self):
        domain = Domain("res4")
        with pytest.raises(NameError):
            domain.load_module("m", "eval('1+1')\n")
        with pytest.raises(NameError):
            domain.load_module("m2", "exec('x = 1')\n")

    def test_dunder_import_absent(self):
        domain = Domain("res5")
        with pytest.raises((NameError, ImportError, KeyError)):
            domain.load_module("m", "__import__('os')\n")

    def test_safe_builtins_is_readonly_mapping(self):
        with pytest.raises(TypeError):
            SAFE_BUILTINS["open"] = open


class TestGrants:
    def test_granted_names_visible(self):
        domain = Domain("res6")
        domain.resolver.grant("MAGIC", 99)
        module = domain.load_module("m", "x = MAGIC + 1\n")
        assert module.x == 100

    def test_ungranted_names_invisible(self):
        domain_a = Domain("res7a")
        domain_b = Domain("res7b")
        domain_a.resolver.grant("SECRET", "a-only")
        domain_a.load_module("m", "got = SECRET\n")
        with pytest.raises(NameError):
            domain_b.load_module("m", "got = SECRET\n")

    def test_deny_removes_grant(self):
        domain = Domain("res8")
        domain.resolver.grant("TEMP", 1)
        domain.resolver.deny("TEMP")
        with pytest.raises(NameError):
            domain.load_module("m", "x = TEMP\n")

    def test_grant_many_and_listing(self):
        domain = Domain("res9")
        domain.resolver.grant_many({"A": 1, "B": 2})
        assert domain.resolver.granted_names() == ["A", "B"]
        assert domain.resolver.granted("A") == 1


class TestPerDomainSystem:
    def test_println_goes_to_domain_output(self):
        domain = Domain("res10")
        domain.load_module("m", "println('hello from inside')\n")
        assert domain.output == ["hello from inside"]

    def test_println_isolated_between_domains(self):
        domain_a = Domain("res11a")
        domain_b = Domain("res11b")
        domain_a.load_module("m", "println('a')\n")
        domain_b.load_module("m", "println('b')\n")
        assert domain_a.output == ["a"]
        assert domain_b.output == ["b"]

    def test_module_name_and_domain_visible(self):
        domain = Domain("res12")
        module = domain.load_module("mod", "name = __name__\nd = __domain__\n")
        assert module.name == "mod"
        assert module.d == "res12"

    def test_code_runs_inside_domain_context(self):
        from repro.core import Capability, Remote

        class WhoAmI(Remote):
            def who(self): ...

        class WhoAmIImpl(WhoAmI):
            def who(self):
                return Domain.current().name

        server = Domain("res13-server")
        cap = server.run(lambda: Capability.create(WhoAmIImpl()))
        client = Domain("res13-client")
        client.resolver.grant("service", cap)
        module = client.load_module("m", "result = service.who()\n")
        assert module.result == "res13-server"
