"""The compiled LRMI fast path: cached bound stubs under revocation,
segment pooling across nested/recursive/threaded calls, and stop/suspend
delivery to pooled (reused) segments."""

import gc
import threading
import time
import weakref

import pytest

from repro.core import (
    Capability,
    Domain,
    Remote,
    RemoteException,
    RevokedException,
    SegmentStoppedException,
    checkpoint,
    current_handle,
    current_segment,
)
from repro.core import segments as segments_mod


class Probe(Remote):
    def observe(self): ...
    def echo(self, value): ...
    def recurse(self, depth): ...
    def stash_handle(self): ...
    def suicide(self): ...


class ProbeImpl(Probe):
    def __init__(self):
        self.segments_seen = []
        self.states_seen = []
        self.leaked_handle = None
        self.self_cap = None

    def observe(self):
        segment = current_segment()
        self.segments_seen.append(segment)
        self.states_seen.append(segment.state)
        return len(self.segments_seen)

    def echo(self, value):
        return value

    def recurse(self, depth):
        self.segments_seen.append(current_segment())
        if depth <= 0:
            return [seg.segment_id for seg in self.segments_seen]
        return self.self_cap.recurse(depth - 1)

    def stash_handle(self):
        self.leaked_handle = current_handle()
        return True

    def suicide(self):
        current_handle().stop()
        checkpoint()
        return "unreachable"


@pytest.fixture()
def domain():
    return Domain("fastpath")


@pytest.fixture()
def impl():
    return ProbeImpl()


@pytest.fixture()
def cap(domain, impl):
    return domain.run(lambda: Capability.create(impl))


class TestCachedBoundStubs:
    def test_bound_method_cached_after_first_call(self, cap):
        assert not any(k.startswith("_jkb_") for k in cap.__dict__)
        cap.echo(1)
        assert "_jkb_echo" in cap.__dict__

    def test_revocation_observed_mid_loop(self, cap):
        """A loop holding the stub (with its warm bound-method cache) sees
        revocation on the very next call."""
        completed = 0
        with pytest.raises(RevokedException):
            for index in range(100):
                cap.echo(index)
                completed += 1
                if index == 41:
                    cap.revoke()
        assert completed == 42

    def test_revoke_drops_cache_and_target(self, domain):
        target = ProbeImpl()
        cap = domain.run(lambda: Capability.create(target))
        cap.echo(1)  # warm the bound-method cache
        assert "_jkb_echo" in cap.__dict__
        ref = weakref.ref(target)
        del target
        cap.revoke()
        assert "_jkb_echo" not in cap.__dict__
        gc.collect()
        assert ref() is None  # cache cleared: target collectible

    def test_concurrent_revoke_during_loop(self, cap):
        """Revocation from another thread lands within the loop."""
        stop_worker = threading.Event()

        def revoker():
            time.sleep(0.01)
            cap.revoke()
            stop_worker.set()

        worker = threading.Thread(target=revoker)
        worker.start()
        with pytest.raises(RevokedException):
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                cap.echo(1)
        worker.join()
        assert stop_worker.is_set()


class TestSegmentPooling:
    def test_sequential_calls_reuse_pooled_segment(self, cap, impl):
        cap.observe()
        cap.observe()
        first, second = impl.segments_seen
        assert first is second  # same pooled ThreadSegment object
        assert first.state is not None

    def test_reused_segment_gets_fresh_incarnation(self, cap, impl):
        cap.stash_handle()
        stale = impl.leaked_handle
        assert not stale.alive
        cap.observe()
        # the reused segment ran under a fresh state list (incarnation),
        # which was live during the call and is not the stale handle's
        reused_state = impl.states_seen[-1]
        assert stale._state is not reused_state
        assert reused_state[0] is None  # no stop leaked into the reuse

    def test_nested_lrmi_uses_distinct_segments(self, domain):
        inner_impl = ProbeImpl()
        inner = domain.run(lambda: Capability.create(inner_impl))
        outer_domain = Domain("fastpath-outer")

        class Outer(Remote):
            def via(self): ...

        class OuterImpl(Outer):
            def via(self):
                mine = current_segment()
                inner.observe()
                # both segments are live right now: they must be distinct
                return mine is inner_impl.segments_seen[-1]

        outer = outer_domain.run(lambda: Capability.create(OuterImpl()))
        assert outer.via() is False

    def test_recursive_lrmi_stack_depth(self, domain, impl):
        cap = domain.run(lambda: Capability.create(impl))
        impl.self_cap = cap
        ids = cap.recurse(5)
        assert len(ids) == 6
        # every recursion level held its own live segment: six distinct
        # concurrently-live segment objects despite the pool
        assert len(set(ids)) == 6

    def test_pool_refills_after_recursion(self, domain, impl):
        cap = domain.run(lambda: Capability.create(impl))
        impl.self_cap = cap
        cap.recurse(4)
        pool = segments_mod._pool()
        assert len(pool) >= 5  # all five nested segments retired home

    def test_pools_are_per_thread(self, domain):
        seen = {}

        def worker(key):
            impl = ProbeImpl()
            cap = domain.run(lambda: Capability.create(impl))
            cap.observe()
            cap.observe()
            seen[key] = impl.segments_seen

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # reuse within each thread, no sharing across threads
        assert seen[0][0] is seen[0][1]
        assert seen[1][0] is seen[1][1]
        assert seen[0][0] is not seen[1][0]


class TestStopSuspendOnPooledSegments:
    def test_stop_delivered_to_reused_segment(self, cap, impl):
        cap.observe()  # first incarnation, retired to the pool
        with pytest.raises(RemoteException):
            cap.suicide()  # second incarnation reuses the pooled segment
        # and the capability still works afterwards
        assert cap.echo("ok") == "ok"

    def test_stale_handle_cannot_stop_reuse(self, cap, impl):
        cap.stash_handle()
        stale = impl.leaked_handle
        stale.stop()  # aimed at a retired incarnation
        stale.suspend()
        # the pooled segment is reused cleanly: no stop/suspend leaks in
        assert cap.echo("clean") == "clean"
        assert cap.echo("again") == "again"

    def test_suspend_resume_on_reused_segment(self, domain):
        """A worker whose root segment came from the pool still honours
        suspend/resume/stop through fresh handles."""
        # Prime this test's concern on the worker thread itself: the spawn
        # below pushes a root segment from that thread's pool.
        stages = []
        handle_box = {}

        def worker():
            # retire one segment into this thread's pool first
            probe = Domain("fastpath-prime")
            with probe.context():
                pass
            handle_box["handle"] = current_handle()
            while True:
                checkpoint()
                stages.append("tick")
                time.sleep(0.002)

        thread = domain.spawn(worker)
        deadline = time.monotonic() + 2.0
        while "handle" not in handle_box and time.monotonic() < deadline:
            time.sleep(0.005)
        handle = handle_box["handle"]
        deadline = time.monotonic() + 2.0
        while not stages and time.monotonic() < deadline:
            time.sleep(0.005)
        handle.suspend()
        time.sleep(0.05)
        suspended_count = len(stages)
        time.sleep(0.1)
        assert len(stages) <= suspended_count + 1  # no progress suspended
        handle.resume()
        time.sleep(0.1)
        assert len(stages) > suspended_count + 1  # progress resumed
        handle.stop()
        thread.join(2.0)
        assert not thread.is_alive()

    def test_terminate_stops_pooled_reused_segment(self, domain):
        victim = Domain("fastpath-victim")
        entered = threading.Event()

        class Spin(Remote):
            def poke(self): ...
            def spin(self): ...

        class SpinImpl(Spin):
            def poke(self):
                return None

            def spin(self):
                entered.set()
                while True:
                    checkpoint()
                    time.sleep(0.001)

        cap = victim.run(lambda: Capability.create(SpinImpl()))
        failures = []

        def caller():
            cap.poke()  # retires one segment into this thread's pool
            try:
                cap.spin()  # reuses it
            except (RemoteException, SegmentStoppedException) as exc:
                failures.append(exc)

        thread = threading.Thread(target=caller)
        thread.start()
        assert entered.wait(2.0)
        victim.terminate()
        thread.join(2.0)
        assert not thread.is_alive()
        assert failures  # the spin died with a kernel exception


class TestTerminationVsPooling:
    def test_deliver_stop_pins_the_snapshotted_incarnation(self):
        """A terminate() that fires after its segment retired and was
        re-armed for another domain must not stop the reuse."""
        from repro.core.errors import DomainTerminatedException
        from repro.core.segments import deliver_stop, pop, push

        domain_a = Domain("pin-a")
        domain_b = Domain("pin-b")
        segment = push(domain_a)
        pinned_state = segment.state  # what terminate() snapshots
        pop()  # retires into this thread's pool
        reused = push(domain_b)
        try:
            assert reused is segment  # pooled object reused
            # late delivery aimed at the old incarnation
            deliver_stop(segment, pinned_state,
                         DomainTerminatedException("domain 'pin-a'"))
            # the live incarnation in domain B is untouched
            assert segment.state[0] is None
            checkpoint()  # does not raise
        finally:
            pop()

    def test_terminate_after_return_does_not_poison_pool(self, domain):
        impl = ProbeImpl()
        cap = domain.run(lambda: Capability.create(impl))
        cap.observe()  # segment retired into the pool
        other = Domain("fastpath-other")
        other_impl = ProbeImpl()
        other_cap = other.run(lambda: Capability.create(other_impl))
        domain.terminate()  # after the call returned: nothing to stop
        assert other_cap.observe() == 1  # pool reuse in another domain works


class TestFastPathSemantics:
    def test_keyword_calling_still_works(self, cap):
        assert cap.echo(value=7) == 7

    def test_immutable_args_pass_through_uncopied(self, cap):
        text = "immutable strings cross as-is"
        assert cap.echo(text) is text

    def test_mutable_args_still_deep_copied(self, domain):
        captured = {}

        class Sink(Remote):
            def take(self, value): ...

        class SinkImpl(Sink):
            def take(self, value):
                captured["value"] = value
                return True

        cap = domain.run(lambda: Capability.create(SinkImpl()))
        payload = [1, [2]]
        cap.take(payload)
        assert captured["value"] == payload
        assert captured["value"] is not payload
        assert captured["value"][1] is not payload[1]

    def test_lrmi_counter_preinitialized(self, domain, cap):
        assert domain.stats["lrmi_calls_in"] == 0
        cap.echo(1)
        cap.echo(2)
        assert domain.stats["lrmi_calls_in"] == 2


class TestDictFieldAliasing:
    """The inlined dict-field copy must not bypass the transfer memo:
    an all-immutable dict shared inside one transferred graph stays
    shared in the copy, exactly as the general container path does."""

    def test_shared_dict_field_aliasing_preserved(self):
        from repro.core import fast_copy, transfer

        @fast_copy(fields=("tag", "mapping"))
        class Holder:
            tag: str
            mapping: dict

            def __init__(self, tag, mapping):
                self.tag = tag
                self.mapping = mapping

        shared = {"a": "1"}
        one, two = Holder("one", shared), Holder("two", shared)
        copied = transfer([one, two])
        assert copied[0].mapping == shared
        assert copied[0].mapping is not shared
        assert copied[0].mapping is copied[1].mapping  # aliasing kept

    def test_top_level_dict_field_still_fast_copied(self):
        from repro.core import fast_copy, transfer

        @fast_copy(fields=("mapping",))
        class Bag:
            mapping: dict

            def __init__(self, mapping):
                self.mapping = mapping

        bag = Bag({"k": "v"})
        copied = transfer(bag)
        assert copied.mapping == {"k": "v"}
        assert copied.mapping is not bag.mapping
